//! Loopback integration test of the serving layer: the full protocol, end to
//! end, through `service::client` against a running `service::server` —
//! ≥2 shards, ≥4 worker threads, real TCP.

use wolves::core::correct::Strategy;
use wolves::moml::write_text_format;
use wolves::service::{
    serve, validate_throughput, BatchConfig, MutateOp, ServerConfig, ServiceClient, ServiceError,
    WatchEvent, WatchMode,
};

#[test]
fn full_protocol_round_trip_over_loopback() {
    let server = serve(&ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        shards: 2,
        workers: 4,
        ..ServerConfig::default()
    })
    .expect("bind a loopback server");
    let addr = server.local_addr();
    let mut client = ServiceClient::connect(addr).expect("connect to the server");

    // register the Figure 1 fixture through the wire format
    let fixture = wolves::repo::figure1();
    let payload = write_text_format(&fixture.spec, Some(&fixture.view));
    let id = client.register_text(&payload).expect("register figure 1");

    // the paper's verdict: composite 16 is unsound
    let verdict = client.validate(id, None).expect("validate");
    assert!(!verdict.sound);
    assert!(!verdict.cached);
    assert_eq!(verdict.version, 0);
    assert_eq!(verdict.unsound, vec!["Curate & align (16)".to_owned()]);

    // a repeated Validate is served from the shard's verdict cache, and the
    // hit counter observably increases
    let hits_before = client.stats().expect("stats").validate_hits();
    let verdict = client.validate(id, None).expect("re-validate");
    assert!(verdict.cached);
    let hits_after = client.stats().expect("stats").validate_hits();
    assert!(
        hits_after > hits_before,
        "cache hits must increase: {hits_before} -> {hits_after}"
    );

    // strong correction appends a sound view version and becomes current
    let corrected = client.correct(id, Strategy::Strong).expect("correct");
    assert_eq!(corrected.version, 1);
    assert_eq!(corrected.composites_before, 7);
    assert_eq!(corrected.composites_after, 8);
    let verdict = client.validate(id, None).expect("validate corrected");
    assert!(verdict.sound);
    assert_eq!(verdict.version, 1);

    // provenance through the corrected view is exact: 'Format alignment'
    // depends on the sequence branch, not on 'Curate annotations'
    let provenance = client
        .provenance(id, "Format alignment")
        .expect("provenance");
    assert!(provenance.contains(&"Create alignment".to_owned()));
    assert!(provenance.contains(&"Extract sequences".to_owned()));
    assert!(provenance.contains(&"Select entries from DB".to_owned()));
    assert!(!provenance.contains(&"Curate annotations".to_owned()));

    // the correction fed the estimation registry (visible in stats)
    let stats = client.stats().expect("stats");
    assert_eq!(stats.registry_samples, 1);
    assert_eq!(stats.shards.len(), 2);

    // mutation epochs over the wire: an edit inside one composite keeps the
    // other cached verdicts alive (visible through `retained` and the
    // composite hit counters), and the view still validates sound
    let composite_hits_before = client.stats().expect("stats").composite_hits();
    let mutated = client
        .mutate(
            id,
            MutateOp::AddEdge {
                from: "Check additional annotations".to_owned(),
                to: "Build phylo tree".to_owned(),
            },
        )
        .expect("mutate");
    assert_eq!(mutated.class, "monotone-safe");
    assert_eq!(mutated.invalidated, 1, "only the endpoint composite drops");
    assert_eq!(mutated.retained, 7, "the other cached verdicts survive");
    let verdict = client.validate(id, None).expect("validate after mutate");
    assert!(verdict.sound);
    assert!(!verdict.cached, "one composite had to be recomputed");
    let composite_hits_after = client.stats().expect("stats").composite_hits();
    assert_eq!(
        composite_hits_after - composite_hits_before,
        7,
        "seven of eight composite verdicts served from the surviving cache"
    );

    // server-side errors arrive as their typed variants, not broken streams
    let err = client
        .provenance(id, "No such task")
        .expect_err("unknown task");
    assert!(matches!(err, ServiceError::UnknownTask(_)), "got {err:?}");
    let err = client
        .mutate(
            id,
            MutateOp::RemoveEdge {
                from: "Display tree".to_owned(),
                to: "Select entries from DB".to_owned(),
            },
        )
        .expect_err("no such dependency");
    assert!(matches!(err, ServiceError::Mutation(_)), "got {err:?}");

    client.shutdown().expect("shutdown");
    server.join();
}

#[test]
fn watch_streams_cdc_events_over_the_wire() {
    let server = serve(&ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        shards: 2,
        workers: 4,
        ..ServerConfig::default()
    })
    .expect("bind a loopback server");
    let addr = server.local_addr();
    let mut editor = ServiceClient::connect(addr).expect("connect the editor");

    let fixture = wolves::repo::figure1();
    let payload = write_text_format(&fixture.spec, Some(&fixture.view));
    let id = editor.register_text(&payload).expect("register figure 1");

    // watching an unknown workflow is a typed remote error, and the client
    // survives it
    let watcher = ServiceClient::connect(addr).expect("connect the watcher");
    let err = watcher
        .watch(wolves::service::WorkflowId(999), WatchMode::Tail)
        .expect_err("unknown workflow");
    assert!(
        matches!(err, ServiceError::UnknownWorkflow(_)),
        "got {err:?}"
    );

    // resync mode hands over the export payload atomically with the cut;
    // the ack arriving means the server registered the subscription, so
    // everything the editor commits from here on is delivered
    let watcher = ServiceClient::connect(addr).expect("reconnect the watcher");
    let mut stream = watcher.watch(id, WatchMode::Resync).expect("watch");
    assert_eq!(stream.ack().workflow, id);
    assert_eq!(stream.ack().seq, 0);
    assert_eq!(
        stream.ack().payload.as_deref().expect("resync payload"),
        editor.export(id).expect("export")
    );

    let op = MutateOp::AddEdge {
        from: "Check additional annotations".to_owned(),
        to: "Build phylo tree".to_owned(),
    };
    editor.mutate(id, op.clone()).expect("mutate");
    editor.correct(id, Strategy::Strong).expect("correct");

    match stream.next_event().expect("first event") {
        WatchEvent::Mutated {
            workflow,
            seq,
            op: streamed,
            outcome,
            deltas,
        } => {
            assert_eq!(workflow, id);
            assert_eq!(seq, 1);
            assert_eq!(streamed, op);
            assert_eq!(outcome.epoch, 1);
            assert!(!deltas.is_empty(), "the typed spec deltas ride along");
        }
        other => panic!("expected the mutation event, got {other:?}"),
    }
    match stream.next_event().expect("second event") {
        WatchEvent::Corrected { seq, version, .. } => {
            assert_eq!(seq, 2);
            assert_eq!(version, 1);
        }
        other => panic!("expected the correction event, got {other:?}"),
    }

    // a clean unsubscribe returns the connection to request mode: the same
    // socket serves plain requests again
    let mut watcher = stream.stop().expect("stop the stream");
    let verdict = watcher.validate(id, None).expect("validate after unwatch");
    assert_eq!(verdict.epoch, 1);
    assert_eq!(server.store().stats().active_watchers(), 0);

    editor.shutdown().expect("shutdown");
    server.join();
}

#[test]
fn concurrent_clients_share_the_verdict_cache() {
    let server = serve(&ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        shards: 4,
        workers: 4,
        ..ServerConfig::default()
    })
    .expect("bind a loopback server");
    let store = server.store();
    let ids: Vec<_> = (0..6)
        .map(|_| {
            let fixture = wolves::repo::figure1();
            store.register(fixture.spec, Some(fixture.view))
        })
        .collect();

    let report = validate_throughput(
        server.local_addr(),
        &ids,
        BatchConfig {
            clients: 8,
            requests_per_client: 30,
            pipeline: 1,
        },
    )
    .expect("throughput batch");
    assert_eq!(report.completed, 240);
    assert_eq!(report.errors, 0);

    // composite-granular counters are deterministic even with racing
    // clients: exactly one compute per (workflow, composite) — the
    // OnceLock'd cells make every racer block and count as a hit
    let stats = store.stats();
    assert_eq!(stats.composite_misses(), 6 * 7);
    assert_eq!(stats.composite_hits(), 240 * 7 - 6 * 7);
    assert!(stats.validate_misses() >= 6);
    assert_eq!(stats.validate_hits() + stats.validate_misses(), 240);
    assert_eq!(stats.workflows(), 6);
    server.shutdown();
}

#[test]
fn idle_clients_cannot_pin_the_worker_pool() {
    // regression: without read timeouts on accepted sockets, a client that
    // connected and then sent nothing pinned a worker thread forever — with
    // a single worker the whole server stopped answering
    let server = serve(&ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        shards: 1,
        workers: 1,
        read_timeout_ms: 150,
        ..ServerConfig::default()
    })
    .expect("bind a loopback server");
    let addr = server.local_addr();

    // the silent connection grabs the only worker and never speaks
    let silent = std::net::TcpStream::connect(addr).expect("connect silently");

    // the real client queued behind it is served once the read timeout
    // reclaims the worker (well inside this client's own 10s budget)
    let fixture = wolves::repo::figure1();
    let payload = write_text_format(&fixture.spec, Some(&fixture.view));
    let mut client = ServiceClient::connect_with(addr, Some(std::time::Duration::from_secs(10)))
        .expect("connect the real client");
    let id = client
        .register_text(&payload)
        .expect("served despite the idle connection");
    assert!(!client.validate(id, None).expect("validate").sound);

    drop(silent);
    client.shutdown().expect("shutdown");
    server.join();
}
