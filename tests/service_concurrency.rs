//! Concurrency harness pinning the lock-free epoch-snapshot read path and
//! the watch CDC subscriptions: readers validating during a writer mutation
//! burst stay fast (no blocking behind the mutator or its WAL appends) and
//! observe only monotone, untorn epochs; watchers see gap-free sequence
//! numbers from their subscription cut; slow consumers are dropped, never
//! waited for; and replaying a watch stream from sequence zero rebuilds a
//! bit-identical replica.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use wolves::service::storage::{
    AppendOutcome, ShardJournal, SnapshotEntry, StorageBackend, WalRecord,
};
use wolves::service::{
    MutateOp, ServiceError, WatchMode, WatchSubscription, WorkflowId, WorkflowStore,
};

/// A durable-looking backend whose appends sleep: if readers serialised
/// behind mutators (the pre-snapshot design held the shard lock across the
/// WAL append), every validate issued during a mutation would stall for the
/// full append delay.
#[derive(Debug)]
struct SlowBackend {
    shards: usize,
    delay: Duration,
}

impl StorageBackend for SlowBackend {
    fn durable(&self) -> bool {
        true
    }

    fn shard_count(&self) -> usize {
        self.shards
    }

    fn append(&self, _shard: usize, _record: &WalRecord) -> Result<AppendOutcome, ServiceError> {
        std::thread::sleep(self.delay);
        Ok(AppendOutcome::default())
    }

    fn write_snapshot(
        &self,
        _shard: usize,
        _entries: &[SnapshotEntry],
    ) -> Result<(), ServiceError> {
        Ok(())
    }

    fn take_journal(&self) -> Result<Vec<ShardJournal>, ServiceError> {
        Ok((0..self.shards).map(|_| ShardJournal::default()).collect())
    }

    fn sync(&self) -> Result<(), ServiceError> {
        Ok(())
    }
}

/// Alternately wires and unwires an edge between two Figure 1 tasks that
/// live in different composites — every application succeeds and bumps the
/// epoch.
fn toggle_edge(index: usize) -> MutateOp {
    let from = "Check additional annotations".to_owned();
    let to = "Build phylo tree".to_owned();
    if index % 2 == 0 {
        MutateOp::AddEdge { from, to }
    } else {
        MutateOp::RemoveEdge { from, to }
    }
}

fn p99(mut samples: Vec<Duration>) -> Duration {
    samples.sort();
    let index = ((samples.len() as f64) * 0.99) as usize;
    samples[index.min(samples.len() - 1)]
}

#[test]
fn readers_never_block_behind_a_mutation_burst_or_its_wal() {
    const MUTATIONS: usize = 12;
    const READERS: usize = 4;
    let delay = Duration::from_millis(25);
    let backend = Arc::new(SlowBackend { shards: 2, delay });
    let (store, _) = WorkflowStore::open(backend).expect("open on the slow backend");
    let store = Arc::new(store);
    let fixture = wolves::repo::figure1();
    let id = store
        .try_register(fixture.spec, Some(fixture.view))
        .expect("register");

    let done = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let store = Arc::clone(&store);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut latencies = Vec::new();
                let mut epochs = Vec::new();
                loop {
                    // sample the flag before validating: the last recorded
                    // validate provably starts after the final commit
                    let finished = done.load(Ordering::SeqCst);
                    let start = Instant::now();
                    let verdict = store.validate(id, None).expect("validate under write");
                    latencies.push(start.elapsed());
                    epochs.push(verdict.epoch);
                    if finished {
                        return (latencies, epochs);
                    }
                }
            })
        })
        .collect();

    // the writer burst: every mutation commits through a 25 ms WAL append
    let burst = Instant::now();
    for index in 0..MUTATIONS {
        let mutated = store.mutate(id, toggle_edge(index)).expect("mutate");
        assert_eq!(mutated.epoch, index as u64 + 1);
    }
    let burst_elapsed = burst.elapsed();
    done.store(true, Ordering::SeqCst);
    assert!(
        burst_elapsed >= delay * (MUTATIONS as u32),
        "the harness is broken: {MUTATIONS} appends finished in {burst_elapsed:?}"
    );

    for reader in readers {
        let (latencies, epochs) = reader.join().expect("reader thread");
        assert!(
            latencies.len() >= 100,
            "reader starved: only {} validations during the burst",
            latencies.len()
        );
        // readers overlap ~300 ms of WAL-stalled mutations; a reader that
        // ever waited behind one would show the 25 ms append in its tail
        let p99 = p99(latencies);
        assert!(
            p99 < delay,
            "reader p99 {p99:?} reaches the WAL append delay {delay:?}: \
             reads are blocking behind the mutator"
        );
        // snapshots are published atomically: epochs only move forward and
        // land on the final value
        assert!(
            epochs.windows(2).all(|pair| pair[0] <= pair[1]),
            "reader observed a torn or reordered epoch sequence"
        );
        assert_eq!(*epochs.last().expect("observations"), MUTATIONS as u64);
    }

    let stats = store.stats();
    assert_eq!(
        stats.snapshot_publishes(),
        1 + MUTATIONS as u64,
        "one publish per registration and mutation"
    );
}

/// Drains a subscription until `last_seq` is seen, returning every received
/// sequence number in order.
fn drain_until(subscription: &WatchSubscription, last_seq: u64) -> Vec<u64> {
    let mut seqs = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(10);
    while seqs.last().copied().unwrap_or(subscription.seq()) < last_seq {
        match subscription.recv_timeout(Duration::from_millis(250)) {
            Ok(Some(event)) => seqs.push(event.seq()),
            Ok(None) => assert!(
                Instant::now() < deadline,
                "watcher stalled before seq {last_seq}: got {seqs:?}"
            ),
            Err(err) => panic!("watcher lost its stream: {err}"),
        }
    }
    seqs
}

#[test]
fn watchers_see_gap_free_sequences_from_their_subscription_cut() {
    const MUTATIONS: usize = 30;
    let store = Arc::new(WorkflowStore::new(2));
    let fixture = wolves::repo::figure1();
    let id = store
        .try_register(fixture.spec, Some(fixture.view))
        .expect("register");

    // three watchers subscribed before the burst...
    let early: Vec<_> = (0..3)
        .map(|_| store.watch(id, WatchMode::Tail).expect("watch"))
        .collect();

    let writer = {
        let store = Arc::clone(&store);
        std::thread::spawn(move || {
            for index in 0..MUTATIONS {
                store.mutate(id, toggle_edge(index)).expect("mutate");
            }
        })
    };

    // ...and two racing the burst: wherever their registration lands, the
    // cut is atomic — the first delivered event is exactly cut + 1
    let mid: Vec<_> = (0..2)
        .map(|index| {
            std::thread::sleep(Duration::from_millis(1 + 4 * index));
            store.watch(id, WatchMode::Tail).expect("watch mid-burst")
        })
        .collect();

    writer.join().expect("writer thread");
    for subscription in early.iter().chain(mid.iter()) {
        let base = subscription.seq();
        let seqs = drain_until(subscription, MUTATIONS as u64);
        let expected: Vec<u64> = (base + 1..=MUTATIONS as u64).collect();
        assert_eq!(
            seqs, expected,
            "watcher from seq {base} saw a gap or replayed history"
        );
    }
    assert_eq!(store.stats().active_watchers(), 5);
    assert_eq!(store.stats().dropped_watchers(), 0);
}

#[test]
fn a_stalled_consumer_is_dropped_with_an_explicit_lag_signal() {
    let store = WorkflowStore::new(2);
    let fixture = wolves::repo::figure1();
    let id = store
        .try_register(fixture.spec, Some(fixture.view))
        .expect("register");

    // a two-event queue that nobody drains
    let stalled = store
        .watch_with_capacity(id, WatchMode::Tail, 2)
        .expect("watch");
    assert_eq!(store.stats().active_watchers(), 1);

    let burst = Instant::now();
    for index in 0..10 {
        store.mutate(id, toggle_edge(index)).expect("mutate");
    }
    assert!(
        burst.elapsed() < Duration::from_secs(2),
        "mutators waited on a stalled subscriber"
    );

    // the subscriber was dropped at the third undeliverable event, counted,
    // and deregistered — mutations never waited
    let stats = store.stats();
    assert_eq!(stats.dropped_watchers(), 1);
    assert_eq!(stats.active_watchers(), 0);

    // the two buffered events still drain in order, then the drop surfaces
    // as an explicit lag error, not a silent end
    let first = stalled.recv_timeout(Duration::from_millis(100));
    let second = stalled.recv_timeout(Duration::from_millis(100));
    assert!(matches!(first, Ok(Some(ref event)) if event.seq() == 1));
    assert!(matches!(second, Ok(Some(ref event)) if event.seq() == 2));
    let lagged = stalled.recv_timeout(Duration::from_millis(100));
    assert!(
        matches!(lagged, Err(ServiceError::Lagged)),
        "expected the explicit lag signal, got {lagged:?}"
    );

    // the documented recovery: resubscribe in resync mode — the payload is
    // the workflow's current export, consistent with the acked cut
    let resynced = store.watch(id, WatchMode::Resync).expect("resync");
    assert_eq!(resynced.seq(), 10);
    assert_eq!(
        resynced.payload().expect("resync payload"),
        store.export(id).expect("export")
    );
    store.unwatch(&resynced);
    assert_eq!(store.stats().active_watchers(), 0);
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    /// A model-driven random edit, as in `persist_recovery`: ops reference
    /// tasks by position in the insertion-order model so every generated
    /// script is replayable.
    #[derive(Debug, Clone)]
    enum Op {
        AddTask(usize),
        AddEdge(usize, usize),
        RemoveEdge(usize, usize),
        RemoveTask(usize),
        Correct,
    }

    fn apply(store: &WorkflowStore, id: WorkflowId, names: &mut Vec<String>, op: &Op) {
        let outcome = match op {
            Op::AddTask(counter) => {
                let name = format!("task-{counter}");
                let result = store.mutate(id, MutateOp::AddTask { name: name.clone() });
                if result.is_ok() {
                    names.push(name);
                }
                result.map(|_| ())
            }
            Op::AddEdge(from, to) if names.len() >= 2 => {
                let from = names[from % names.len()].clone();
                let to = names[to % names.len()].clone();
                store.mutate(id, MutateOp::AddEdge { from, to }).map(|_| ())
            }
            Op::RemoveEdge(from, to) if names.len() >= 2 => {
                let from = names[from % names.len()].clone();
                let to = names[to % names.len()].clone();
                store
                    .mutate(id, MutateOp::RemoveEdge { from, to })
                    .map(|_| ())
            }
            Op::RemoveTask(pick) if !names.is_empty() => {
                let index = pick % names.len();
                let name = names[index].clone();
                let result = store.mutate(id, MutateOp::RemoveTask { name });
                if result.is_ok() {
                    names.remove(index);
                }
                result.map(|_| ())
            }
            Op::Correct => store
                .correct(id, wolves::core::correct::Strategy::Strong)
                .map(|_| ()),
            _ => Ok(()),
        };
        // model-invalid picks may fail; failed edits commit nothing and
        // fan out nothing, so the replica never hears about them
        let _ = outcome;
    }

    fn op_strategy() -> impl Strategy<Value = Vec<Op>> {
        proptest::collection::vec((0u8..5, 0usize..16, 0usize..16), 4..24).prop_map(|raw| {
            let mut counter = 0usize;
            raw.into_iter()
                .map(|(kind, a, b)| match kind {
                    0 | 1 => {
                        counter += 1;
                        Op::AddTask(counter)
                    }
                    2 => Op::AddEdge(a, b),
                    3 => Op::RemoveEdge(a, b),
                    4 if a % 3 == 0 => Op::Correct,
                    _ => Op::RemoveTask(a),
                })
                .collect()
        })
    }

    /// Drains everything the subscription will ever deliver once the writer
    /// has finished, applying each event to the replica as it arrives.
    fn replay(
        subscription: &WatchSubscription,
        replica: &WorkflowStore,
        writer_done: &AtomicBool,
    ) -> usize {
        let mut applied = 0usize;
        loop {
            match subscription.recv_timeout(Duration::from_millis(50)) {
                Ok(Some(event)) => {
                    replica
                        .apply_watch_event(&event)
                        .unwrap_or_else(|err| panic!("replay diverged: {err}"));
                    applied += 1;
                }
                Ok(None) if writer_done.load(Ordering::SeqCst) => return applied,
                Ok(None) => {}
                Err(err) => panic!("watcher lost its stream: {err}"),
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]

        /// CDC losslessness: for random mutation scripts racing two
        /// watchers, replaying each watcher's event stream from sequence
        /// zero on a fresh registration of the epoch-0 export reproduces
        /// the server's final export exactly — and both watchers agree.
        #[test]
        fn replaying_a_watch_stream_rebuilds_an_identical_replica(script in op_strategy()) {
            let server = Arc::new(WorkflowStore::new(2));
            let fixture = wolves::repo::figure1();
            let id = server
                .try_register(fixture.spec, Some(fixture.view))
                .unwrap();

            // two concurrent subscriptions from sequence zero; resync mode
            // hands over the epoch-0 export atomically with the cut
            let subscriptions: Vec<_> = (0..2)
                .map(|_| server.watch(id, WatchMode::Resync).unwrap())
                .collect();
            let replicas: Vec<_> = subscriptions
                .iter()
                .map(|subscription| {
                    prop_assert_eq!(subscription.seq(), 0);
                    let replica = WorkflowStore::new(2);
                    let replica_id = replica
                        .register_text(subscription.payload().unwrap())
                        .unwrap();
                    prop_assert_eq!(replica_id, id);
                    replica
                })
                .collect();

            // the writer races the replaying watchers
            let writer_done = Arc::new(AtomicBool::new(false));
            let writer = {
                let server = Arc::clone(&server);
                let writer_done = Arc::clone(&writer_done);
                let script = script.clone();
                std::thread::spawn(move || {
                    let mut names: Vec<String> = Vec::new();
                    for op in &script {
                        apply(&server, id, &mut names, op);
                    }
                    writer_done.store(true, Ordering::SeqCst);
                })
            };
            let mut counts = Vec::new();
            for (subscription, replica) in subscriptions.iter().zip(replicas.iter()) {
                counts.push(replay(subscription, replica, &writer_done));
            }
            writer.join().unwrap();

            // every committed change arrived: the replicas reached the
            // server's cursor and answer with the identical export
            let (seq, epoch) = server.cursor(id).unwrap();
            prop_assert_eq!(counts[0], seq as usize);
            prop_assert_eq!(counts[1], seq as usize);
            let truth = server.export(id).unwrap();
            for replica in &replicas {
                prop_assert_eq!(replica.cursor(id).unwrap(), (seq, epoch));
                prop_assert_eq!(&replica.export(id).unwrap(), &truth);
            }
        }
    }
}
