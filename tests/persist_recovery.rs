//! Crash-recovery integration tests of the durable serving layer: a store
//! on the snapshot + write-ahead-log backend, killed mid-stream and
//! restarted, must serve answers identical to the store that never crashed
//! — same verdicts, same provenance, same epochs, same future ids.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use wolves::service::{
    serve_with_store, FileBackend, MutateOp, PersistConfig, ServerConfig, ServiceClient,
    ServiceError, WatchMode, WorkflowId, WorkflowStore,
};

fn temp_root(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "wolves-recovery-{tag}-{}-{unique}",
        std::process::id()
    ))
}

/// A small-segment, batched-fsync config so the tests exercise rotation and
/// the unsynced-tail path, not just the happy append loop.
fn config(root: &Path) -> PersistConfig {
    PersistConfig {
        shards: 2,
        fsync_every: 8,
        segment_bytes: 16 * 1024,
        ..PersistConfig::new(root)
    }
}

fn open_store(root: &Path) -> (WorkflowStore, wolves::service::RecoveryReport) {
    let backend = Arc::new(FileBackend::open(config(root)).expect("open the data dir"));
    WorkflowStore::open(backend).expect("recover the store")
}

/// Captures every externally observable answer of a workflow: per-version
/// verdicts, provenance of every task, the export payload and the epoch
/// (observed through a no-op-free probe: the epoch is part of mutate
/// outcomes, so it is captured by the callers where a mutation happens).
fn observe(store: &WorkflowStore, id: WorkflowId) -> Vec<String> {
    let mut out = Vec::new();
    let export = store.export(id).expect("export");
    let mut version = 0usize;
    while let Ok(verdict) = store.validate(id, Some(version)) {
        out.push(format!(
            "v{version}: sound={} unsound={:?}",
            verdict.sound, verdict.unsound
        ));
        version += 1;
    }
    for line in export.lines() {
        if let Some(task) = line.strip_prefix("task\t") {
            out.push(format!(
                "prov {task}: {:?}",
                store.provenance(id, task).expect("provenance")
            ));
        }
    }
    out.push(format!("stats workflows={}", store.stats().workflows()));
    out.push(export);
    out
}

#[test]
fn killed_server_restarts_with_identical_answers_after_100_mutations() {
    let root = temp_root("server");
    let (store, _) = open_store(&root);
    let server = serve_with_store(
        &ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            shards: 2,
            workers: 2,
            ..ServerConfig::default()
        },
        Arc::new(store),
    )
    .expect("bind the durable server");
    let mut client = ServiceClient::connect(server.local_addr()).expect("connect");

    let fixture = wolves::repo::figure1();
    let id = client
        .register(&fixture.spec, Some(&fixture.view))
        .expect("register");
    client
        .correct(id, wolves::core::correct::Strategy::Strong)
        .expect("correct");

    // drive >100 mutations through the wire: grow a chain of new tasks,
    // each wired beneath the previous one (small enough to stay fast, big
    // enough to force several WAL segment rotations)
    let mut last_epoch = 0;
    for index in 0..55 {
        let name = format!("grown-{index}");
        let added = client
            .mutate(id, MutateOp::AddTask { name: name.clone() })
            .expect("add task");
        let from = if index == 0 {
            "Display tree".to_owned()
        } else {
            format!("grown-{}", index - 1)
        };
        let wired = client
            .mutate(id, MutateOp::AddEdge { from, to: name })
            .expect("add edge");
        assert_eq!(wired.epoch, added.epoch + 1);
        last_epoch = wired.epoch;
    }
    assert!(last_epoch >= 100, "drove {last_epoch} mutations");

    let store = server.store();
    let before = observe(&store, id);

    // kill: abandon the server without any shutdown handshake — worker
    // threads, sockets and unsynced WAL tail are simply dropped on the
    // floor, like SIGKILL would
    drop(client);
    std::mem::forget(server);
    drop(store);

    let (recovered, report) = open_store(&root);
    assert_eq!(report.workflows, 1);
    assert!(
        report.snapshot_entries + report.replayed_records > 0,
        "{report}"
    );
    let server = serve_with_store(
        &ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            shards: 2,
            workers: 2,
            ..ServerConfig::default()
        },
        Arc::new(recovered),
    )
    .expect("bind the restarted server");
    let store = server.store();
    assert_eq!(observe(&store, id), before, "recovered answers diverged");

    // the epoch counter resumes exactly where the killed server stopped
    let mut client = ServiceClient::connect(server.local_addr()).expect("reconnect");
    let mutated = client
        .mutate(
            id,
            MutateOp::AddEdge {
                from: "Display tree".to_owned(),
                to: "grown-5".to_owned(),
            },
        )
        .expect("mutate after recovery");
    assert_eq!(mutated.epoch, last_epoch + 1);

    // export round-trips into a fresh registration (client resync)
    let payload = client.export(id).expect("export");
    let resynced = client.register_text(&payload).expect("re-register");
    assert_ne!(resynced, id);
    let verdict = client.validate(resynced, None).expect("validate resync");
    assert_eq!(verdict.sound, client.validate(id, None).expect("v").sound);

    // a forced snapshot compacts the log: the next restart replays no
    // individual records
    client.snapshot().expect("snapshot");
    client.shutdown().expect("shutdown");
    server.join();
    let (_, report) = open_store(&root);
    assert_eq!(report.replayed_records, 0, "{report}");
    assert_eq!(report.workflows, 2);
    std::fs::remove_dir_all(&root).unwrap();
}

/// Kill -9 in the middle of a group-committed burst: eight threads drive
/// strict (`fsync_every = 1`) mutations whose acknowledgements share leader
/// fsyncs, the process dies without any shutdown handshake, and recovery
/// shows exactly the acked history — an ack absorbed into another waiter's
/// fsync must be just as durable as one that paid for its own.
#[test]
fn group_committed_acks_survive_a_kill_mid_burst() {
    let root = temp_root("group-commit-kill");
    let strict_config = |root: &Path| PersistConfig {
        shards: 2,
        fsync_every: 1,
        ..PersistConfig::new(root)
    };
    let backend = Arc::new(FileBackend::open(strict_config(&root)).expect("open strict"));
    let (store, _) = WorkflowStore::open(backend).expect("open the store");
    const MUTATORS: usize = 8;
    const TOGGLES_PER_BURST: usize = 24; // even: every burst ends edge-removed
    let ids: Vec<WorkflowId> = (0..MUTATORS)
        .map(|_| {
            let fixture = wolves::repo::figure1();
            store
                .try_register(fixture.spec, Some(fixture.view))
                .expect("register durably")
        })
        .collect();

    // bursts of concurrent strict mutations, one workflow per thread, each
    // toggling an edge; every `expect` below is a durable acknowledgement.
    // Repeat until at least one fsync was demonstrably shared, so the
    // recovery check exercises the group-commit path and not merely the
    // one-append-one-fsync one.
    let mut bursts = 0usize;
    loop {
        bursts += 1;
        std::thread::scope(|scope| {
            for id in &ids {
                scope.spawn(|| {
                    for step in 0..TOGGLES_PER_BURST {
                        let op = if step % 2 == 0 {
                            MutateOp::AddEdge {
                                from: "Check additional annotations".to_owned(),
                                to: "Build phylo tree".to_owned(),
                            }
                        } else {
                            MutateOp::RemoveEdge {
                                from: "Check additional annotations".to_owned(),
                                to: "Build phylo tree".to_owned(),
                            }
                        };
                        store.mutate(*id, op).expect("strict mutation acked");
                    }
                });
            }
        });
        let observed = store.backend().observe();
        if observed.group_commit_absorbed > 0 {
            break;
        }
        assert!(
            bursts < 4,
            "8 concurrent strict mutators never shared a leader fsync \
             across {bursts} bursts"
        );
    }

    // the exact observable state every ack promised
    let cursors: Vec<_> = ids
        .iter()
        .map(|id| store.cursor(*id).expect("cursor"))
        .collect();
    let expected = (bursts * TOGGLES_PER_BURST) as u64;
    for cursor in &cursors {
        assert_eq!(*cursor, (expected, expected));
    }
    let before: Vec<_> = ids.iter().map(|id| observe(&store, *id)).collect();

    // kill: no shutdown, no final sync — the store is simply abandoned
    std::mem::forget(store);

    let backend = Arc::new(FileBackend::open(strict_config(&root)).expect("reopen"));
    let (recovered, report) = WorkflowStore::open(backend).expect("recover");
    assert_eq!(report.workflows, MUTATORS);
    assert!(report.replayed_records > 0, "{report}");
    for (index, id) in ids.iter().enumerate() {
        assert_eq!(
            recovered.cursor(*id).expect("recovered cursor"),
            cursors[index],
            "workflow {index}: a group-covered ack was lost"
        );
        assert_eq!(observe(&recovered, *id), before[index]);
    }
    std::fs::remove_dir_all(&root).unwrap();
}

/// The deferred-durability API: a pipelined batch of `mutate_deferred`
/// calls settled by one `await_durability` barrier is exactly as durable
/// as per-op strict waits — every settled mutation survives a kill with
/// no shutdown.
#[test]
fn deferred_barrier_settles_a_whole_batch_durably() {
    use wolves::service::DurabilityBarrier;

    let root = temp_root("deferred-barrier");
    let strict_config = |root: &Path| PersistConfig {
        shards: 2,
        fsync_every: 1,
        ..PersistConfig::new(root)
    };
    let backend = Arc::new(FileBackend::open(strict_config(&root)).expect("open strict"));
    let (store, _) = WorkflowStore::open(backend).expect("open the store");
    let fixture = wolves::repo::figure1();
    let id = store
        .try_register(fixture.spec, Some(fixture.view))
        .expect("register durably");

    const TOGGLES: usize = 10; // even: ends edge-removed
    let mut barrier = DurabilityBarrier::default();
    assert!(barrier.is_empty());
    for step in 0..TOGGLES {
        let op = if step % 2 == 0 {
            MutateOp::AddEdge {
                from: "Check additional annotations".to_owned(),
                to: "Build phylo tree".to_owned(),
            }
        } else {
            MutateOp::RemoveEdge {
                from: "Check additional annotations".to_owned(),
                to: "Build phylo tree".to_owned(),
            }
        };
        let (mutated, ticket) = store.mutate_deferred(id, op, None).expect("apply deferred");
        assert_eq!(mutated.epoch, (step + 1) as u64);
        barrier.fold(ticket);
    }
    assert!(!barrier.is_empty());
    store.await_durability(&barrier).expect("settle the batch");

    let cursor = store.cursor(id).expect("cursor");
    let before = observe(&store, id);
    // kill: no shutdown, no final sync — every settled ack must survive
    std::mem::forget(store);

    let backend = Arc::new(FileBackend::open(strict_config(&root)).expect("reopen"));
    let (recovered, report) = WorkflowStore::open(backend).expect("recover");
    assert_eq!(report.workflows, 1);
    assert_eq!(recovered.cursor(id).expect("recovered cursor"), cursor);
    assert_eq!(observe(&recovered, id), before);
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn torn_final_record_is_discarded_and_the_prefix_recovers() {
    let root = temp_root("torn");
    let (store, _) = open_store(&root);
    let fixture = wolves::repo::figure1();
    let id = store
        .try_register(fixture.spec, Some(fixture.view))
        .expect("register");
    for index in 0..5 {
        store
            .mutate(
                id,
                MutateOp::AddTask {
                    name: format!("extra-{index}"),
                },
            )
            .expect("mutate");
    }
    let before = observe(&store, id);
    drop(store);

    // simulate a crash mid-append: a half-written record at the tail of
    // every shard's active log
    for shard in 0..2 {
        let dir = root.join(format!("shard-{shard}"));
        for entry in std::fs::read_dir(&dir).unwrap() {
            let path = entry.unwrap().path();
            if path.extension().is_some_and(|e| e == "log") {
                use std::io::Write as _;
                let mut file = std::fs::OpenOptions::new().append(true).open(path).unwrap();
                file.write_all(b"rec\tmutate\t1\t99\t2\nmutate\t1\tadd-")
                    .unwrap();
            }
        }
    }

    let (recovered, report) = open_store(&root);
    assert_eq!(report.torn_tails, 2, "{report}");
    assert_eq!(observe(&recovered, id), before);
    // the next mutation continues cleanly past the discarded tail
    recovered
        .mutate(
            id,
            MutateOp::AddTask {
                name: "after-the-tear".to_owned(),
            },
        )
        .expect("mutate after torn recovery");
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn mid_log_corruption_is_refused_not_guessed() {
    let root = temp_root("corrupt");
    let (store, _) = open_store(&root);
    let fixture = wolves::repo::figure1();
    let id = store
        .try_register(fixture.spec, Some(fixture.view))
        .expect("register");
    for index in 0..4 {
        store
            .mutate(
                id,
                MutateOp::AddTask {
                    name: format!("extra-{index}"),
                },
            )
            .expect("mutate");
    }
    drop(store);

    // flip a byte inside the FIRST record of the shard that holds the
    // workflow — later records are intact, so this is not a torn tail
    let mut corrupted = false;
    for shard in 0..2 {
        let path = root.join(format!("shard-{shard}")).join("wal-0.log");
        let content = std::fs::read_to_string(&path).unwrap();
        if content.contains("extra-0") {
            std::fs::write(&path, content.replacen("extra-0", "extra-X", 1)).unwrap();
            corrupted = true;
        }
    }
    assert!(corrupted, "no shard held the mutation records");
    let err = FileBackend::open(config(&root))
        .map(|backend| WorkflowStore::open(Arc::new(backend)).map(|_| ()))
        .and_then(std::convert::identity)
        .unwrap_err();
    assert!(matches!(err, ServiceError::Recovery(_)), "{err}");
    std::fs::remove_dir_all(&root).unwrap();
}

/// Watch events are fanned out only *after* the WAL append: a watcher can
/// never hold an event the log misses, so a kill-after-delivery always
/// recovers every change a subscriber was told about.
#[test]
fn every_delivered_watch_event_survives_a_kill() {
    let root = temp_root("watch-kill");
    let (store, _) = open_store(&root);
    let fixture = wolves::repo::figure1();
    let id = store
        .try_register(fixture.spec, Some(fixture.view))
        .expect("register");

    // subscribe from sequence zero with the consistent export payload
    let subscription = store.watch(id, WatchMode::Resync).expect("watch");
    assert_eq!(subscription.seq(), 0);
    let genesis = subscription.payload().expect("resync payload").to_owned();

    for index in 0..10 {
        let name = format!("watched-{index}");
        store
            .mutate(id, MutateOp::AddTask { name: name.clone() })
            .expect("add task");
        store
            .mutate(
                id,
                MutateOp::AddEdge {
                    from: "Display tree".to_owned(),
                    to: name,
                },
            )
            .expect("add edge");
    }

    // the subscriber drains everything it was promised, then the store is
    // killed without a shutdown handshake (fsync batching leaves a tail
    // the OS, not the process, holds)
    let mut events = Vec::new();
    while events.len() < 20 {
        match subscription
            .recv_timeout(std::time::Duration::from_millis(500))
            .expect("healthy subscription")
        {
            Some(event) => events.push(event),
            None => panic!("watcher starved after {} events", events.len()),
        }
    }
    drop(store);

    // every delivered event is in the recovered log: a replica built from
    // the genesis payload plus the delivered stream matches the recovered
    // store exactly
    let (recovered, report) = open_store(&root);
    assert_eq!(report.workflows, 1);
    let replica = WorkflowStore::new(2);
    let replica_id = replica.register_text(&genesis).expect("replica genesis");
    assert_eq!(replica_id, id);
    for event in &events {
        replica.apply_watch_event(event).expect("replay");
    }
    assert_eq!(
        recovered.cursor(id).expect("cursor"),
        replica.cursor(id).expect("replica cursor"),
        "the recovered store lost a change a watcher was told about"
    );
    assert_eq!(
        recovered.export(id).expect("export"),
        replica.export(id).expect("replica export")
    );
    std::fs::remove_dir_all(&root).unwrap();
}

/// A backend that can be switched to fail every append: a mutation whose
/// WAL append fails (and whose self-heal snapshot also fails) must commit
/// nothing — no state change, no watch event. Watchers never hear about
/// changes that were not made durable.
mod failing {
    use super::*;
    use wolves::service::storage::{
        AppendOutcome, ShardJournal, SnapshotEntry, StorageBackend, WalRecord,
    };

    #[derive(Debug)]
    pub struct FailingBackend {
        shards: usize,
        pub fail: std::sync::atomic::AtomicBool,
    }

    impl FailingBackend {
        pub fn new(shards: usize) -> Self {
            FailingBackend {
                shards,
                fail: std::sync::atomic::AtomicBool::new(false),
            }
        }

        fn check(&self) -> Result<(), ServiceError> {
            if self.fail.load(Ordering::SeqCst) {
                return Err(ServiceError::Persistence("disk full".to_owned()));
            }
            Ok(())
        }
    }

    impl StorageBackend for FailingBackend {
        fn durable(&self) -> bool {
            true
        }

        fn shard_count(&self) -> usize {
            self.shards
        }

        fn append(
            &self,
            _shard: usize,
            _record: &WalRecord,
        ) -> Result<AppendOutcome, ServiceError> {
            self.check().map(|()| AppendOutcome::default())
        }

        fn write_snapshot(
            &self,
            _shard: usize,
            _entries: &[SnapshotEntry],
        ) -> Result<(), ServiceError> {
            self.check()
        }

        fn take_journal(&self) -> Result<Vec<ShardJournal>, ServiceError> {
            Ok((0..self.shards).map(|_| ShardJournal::default()).collect())
        }

        fn sync(&self) -> Result<(), ServiceError> {
            Ok(())
        }
    }
}

#[test]
fn a_failed_append_commits_nothing_and_fans_out_no_ghost_event() {
    let backend = Arc::new(failing::FailingBackend::new(2));
    let handle = Arc::clone(&backend);
    let (store, _) = WorkflowStore::open(backend).expect("open");
    let fixture = wolves::repo::figure1();
    let id = store
        .try_register(fixture.spec, Some(fixture.view))
        .expect("register");
    let subscription = store.watch(id, WatchMode::Tail).expect("watch");
    let before = store.export(id).expect("export");

    handle.fail.store(true, Ordering::SeqCst);
    let err = store
        .mutate(
            id,
            MutateOp::AddTask {
                name: "ghost".to_owned(),
            },
        )
        .expect_err("the append failed");
    // the rescue snapshot fails too, so the shard degrades rather than lying
    assert!(matches!(err, ServiceError::Degraded { .. }), "{err}");

    // nothing happened: no state change, no sequence advance, no event —
    // and reads still serve from the degraded shard
    assert_eq!(store.cursor(id).expect("cursor"), (0, 0));
    assert_eq!(store.export(id).expect("export"), before);
    assert!(
        matches!(
            subscription.recv_timeout(std::time::Duration::from_millis(50)),
            Ok(None)
        ),
        "a watcher heard about a change that was never made durable"
    );

    // the disk recovers; heal re-opens writes and the next mutation
    // commits and is delivered
    handle.fail.store(false, Ordering::SeqCst);
    assert_eq!(store.heal(), (1, 0));
    store
        .mutate(
            id,
            MutateOp::AddTask {
                name: "real".to_owned(),
            },
        )
        .expect("mutate after recovery");
    let event = subscription
        .recv_timeout(std::time::Duration::from_millis(500))
        .expect("healthy subscription")
        .expect("one event");
    assert_eq!(event.seq(), 1);
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    /// A model-driven random edit: ops reference tasks by position in the
    /// insertion-order model so every generated script is replayable.
    #[derive(Debug, Clone)]
    enum Op {
        AddTask(usize),
        AddEdge(usize, usize),
        RemoveEdge(usize, usize),
        RemoveTask(usize),
        Correct,
    }

    /// Applies one op to a store, translating model positions into live
    /// task names. Model-invalid picks (duplicate edges, missing deps) are
    /// allowed to fail — identically on every store.
    fn apply(store: &WorkflowStore, id: WorkflowId, names: &mut Vec<String>, op: &Op) {
        let outcome = match op {
            Op::AddTask(counter) => {
                let name = format!("task-{counter}");
                let result = store.mutate(id, MutateOp::AddTask { name: name.clone() });
                if result.is_ok() {
                    names.push(name);
                }
                result.map(|_| ())
            }
            Op::AddEdge(from, to) if names.len() >= 2 => {
                let from = names[from % names.len()].clone();
                let to = names[to % names.len()].clone();
                store.mutate(id, MutateOp::AddEdge { from, to }).map(|_| ())
            }
            Op::RemoveEdge(from, to) if names.len() >= 2 => {
                let from = names[from % names.len()].clone();
                let to = names[to % names.len()].clone();
                store
                    .mutate(id, MutateOp::RemoveEdge { from, to })
                    .map(|_| ())
            }
            Op::RemoveTask(pick) if !names.is_empty() => {
                let index = pick % names.len();
                let name = names[index].clone();
                let result = store.mutate(id, MutateOp::RemoveTask { name });
                if result.is_ok() {
                    names.remove(index);
                }
                result.map(|_| ())
            }
            Op::Correct => store
                .correct(id, wolves::core::correct::Strategy::Strong)
                .map(|_| ()),
            _ => Ok(()),
        };
        // failures must be deterministic: both the durable and the
        // uninterrupted store see the same model, so a rejected edit is
        // rejected everywhere — nothing to assert per store
        let _ = outcome;
    }

    fn op_strategy() -> impl Strategy<Value = Vec<Op>> {
        proptest::collection::vec((0u8..5, 0usize..16, 0usize..16), 4..28).prop_map(|raw| {
            let mut counter = 0usize;
            raw.into_iter()
                .map(|(kind, a, b)| match kind {
                    0 | 1 => {
                        counter += 1;
                        Op::AddTask(counter)
                    }
                    2 => Op::AddEdge(a, b),
                    3 => Op::RemoveEdge(a, b),
                    4 if a % 3 == 0 => Op::Correct,
                    _ => Op::RemoveTask(a),
                })
                .collect()
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// For random mutation sequences and a random kill point, the
        /// durable store killed and restarted mid-stream ends bit-identical
        /// (observable answers, epochs, future ids) to a store that ran
        /// uninterrupted.
        #[test]
        fn random_scripts_survive_a_mid_stream_kill(
            script in op_strategy(),
            kill_at in 0usize..28,
        ) {
            let root = temp_root("prop");
            let kill_at = kill_at % script.len().max(1);

            let twin = WorkflowStore::new(2);
            let (durable, _) = open_store(&root);
            let fixture = wolves::repo::figure1();
            let id = durable
                .try_register(fixture.spec.clone(), Some(fixture.view.clone()))
                .unwrap();
            let twin_id = twin.try_register(fixture.spec, Some(fixture.view)).unwrap();
            prop_assert_eq!(id, twin_id);

            let mut names: Vec<String> = Vec::new();
            let mut twin_names: Vec<String> = Vec::new();
            for op in &script[..kill_at] {
                apply(&durable, id, &mut names, op);
                apply(&twin, id, &mut twin_names, op);
            }
            // kill the durable store (no shutdown, no final sync)
            drop(durable);
            let (durable, _) = open_store(&root);
            for op in &script[kill_at..] {
                apply(&durable, id, &mut names, op);
                apply(&twin, id, &mut twin_names, op);
            }
            prop_assert_eq!(&names, &twin_names);
            prop_assert_eq!(observe(&durable, id), observe(&twin, id));

            // one more restart: the final state itself recovers
            let after = observe(&durable, id);
            drop(durable);
            let (durable, _) = open_store(&root);
            prop_assert_eq!(observe(&durable, id), after);
            drop(durable);
            std::fs::remove_dir_all(&root).unwrap();
        }
    }
}
