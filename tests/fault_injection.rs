//! Chaos suite of the durable serving layer: scripted storage faults
//! (failed appends, torn writes, failing snapshots, full disks, latency
//! spikes) driven through the [`wolves::service::FaultInjector`] backend.
//!
//! The invariant under test is *acked-or-absent*: every mutation the store
//! acknowledged must survive recovery, every mutation it refused must leave
//! no trace — the recovered store is indistinguishable from a twin store
//! that applied exactly the acked operations and nothing else. On a double
//! storage failure (append *and* rescue snapshot) the shard degrades to
//! read-only instead of lying, keeps serving reads, and `heal` re-opens
//! writes without a restart.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use wolves::service::{
    serve_with_store, FaultInjector, FaultPlan, FileBackend, MutateOp, PersistConfig, Request,
    Response, ServerConfig, ServiceClient, ServiceError, StorageBackend, WorkflowId, WorkflowStore,
};

fn temp_root(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "wolves-chaos-{tag}-{}-{unique}",
        std::process::id()
    ))
}

/// One shard (so the 1-based per-shard append counters of a fault plan are
/// exact), small segments and batched fsyncs — rotation and the unsynced
/// tail stay in play.
fn config(root: &Path) -> PersistConfig {
    PersistConfig {
        shards: 1,
        fsync_every: 4,
        segment_bytes: 8 * 1024,
        ..PersistConfig::new(root)
    }
}

/// Opens the durable store with `plan` scripted into its backend.
fn open_faulted(root: &Path, plan: FaultPlan) -> WorkflowStore {
    let inner: Arc<dyn StorageBackend> =
        Arc::new(FileBackend::open(config(root)).expect("open the data dir"));
    let injector = FaultInjector::with_root(inner, plan, root.to_path_buf());
    WorkflowStore::open(Arc::new(injector))
        .expect("recover through the injector")
        .0
}

/// Reopens the data directory through a clean, fault-free backend — what a
/// restarted server would see after the chaos run.
fn open_clean(root: &Path) -> WorkflowStore {
    WorkflowStore::open(Arc::new(
        FileBackend::open(config(root)).expect("reopen the data dir"),
    ))
    .expect("the chaos run must leave a recoverable directory")
    .0
}

/// Captures every externally observable answer of a workflow: per-version
/// verdicts, provenance of every task, the export payload and the workflow
/// count.
fn observe(store: &WorkflowStore, id: WorkflowId) -> Vec<String> {
    let mut out = Vec::new();
    let export = store.export(id).expect("export");
    let mut version = 0usize;
    while let Ok(verdict) = store.validate(id, Some(version)) {
        out.push(format!(
            "v{version}: sound={} unsound={:?}",
            verdict.sound, verdict.unsound
        ));
        version += 1;
    }
    for line in export.lines() {
        if let Some(task) = line.strip_prefix("task\t") {
            out.push(format!(
                "prov {task}: {:?}",
                store.provenance(id, task).expect("provenance")
            ));
        }
    }
    out.push(format!("stats workflows={}", store.stats().workflows()));
    out.push(export);
    out
}

fn add_task(name: &str) -> MutateOp {
    MutateOp::AddTask {
        name: name.to_owned(),
    }
}

/// The full degraded-mode life cycle over real TCP: a double storage
/// failure degrades the shard, reads and the metrics scrape keep serving,
/// mutations fail fast with the typed error, and a wire-level `heal`
/// re-opens writes without restarting the server.
#[test]
fn a_degraded_server_serves_reads_and_heals_over_the_wire() {
    let root = temp_root("wire-degrade");
    // append 1 is the registration; append 2 (the first mutation) fails,
    // and snapshot 1 (its rescue) fails too — the double failure
    let plan = FaultPlan::parse("append-err=2,snap-err=1").expect("plan");
    let store = open_faulted(&root, plan);
    let server = serve_with_store(
        &ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            shards: 1,
            workers: 2,
            ..ServerConfig::default()
        },
        Arc::new(store),
    )
    .expect("bind the chaos server");
    let mut client = ServiceClient::connect(server.local_addr()).expect("connect");

    let fixture = wolves::repo::figure1();
    let id = client
        .register(&fixture.spec, Some(&fixture.view))
        .expect("registration is append 1 and survives");

    let err = client
        .mutate(id, add_task("ghost"))
        .expect_err("append 2 and rescue snapshot 1 both fail");
    assert!(
        matches!(err, ServiceError::Degraded { shard: 0, .. }),
        "expected the degraded error, got {err:?}"
    );

    // the shard is read-only, not dead: validation still answers, and the
    // degradation is visible to scrapes
    assert!(
        !client
            .validate(id, None)
            .expect("read while degraded")
            .sound
    );
    let metrics = client.metrics().expect("metrics while degraded");
    assert!(
        metrics.contains("wolves_shard_degraded{shard=\"0\"} 1"),
        "degraded gauge missing:\n{metrics}"
    );
    assert!(
        metrics.contains("wolves_errors_total{kind=\"degraded\"}"),
        "error counter missing:\n{metrics}"
    );

    // further mutations fail fast — no second trip through the backend
    let err = client
        .mutate(id, add_task("still-ghost"))
        .expect_err("degraded shards refuse writes");
    assert!(matches!(err, ServiceError::Degraded { .. }), "got {err:?}");

    // heal retries a compacting snapshot (snapshot 2, past the fault
    // window) and re-opens writes — no restart
    assert_eq!(client.heal().expect("heal"), (1, 0));
    let mutated = client
        .mutate(id, add_task("real"))
        .expect("mutate after heal");
    assert_eq!(mutated.epoch, 1);
    let metrics = client.metrics().expect("metrics after heal");
    assert!(
        metrics.contains("wolves_shard_degraded{shard=\"0\"} 0"),
        "gauge must clear after heal:\n{metrics}"
    );

    client.shutdown().expect("shutdown");
    server.join();

    // exactly the acked history recovers: the registration and the
    // post-heal mutation, neither ghost
    let recovered = open_clean(&root);
    assert_eq!(recovered.cursor(id).expect("cursor"), (1, 1));
    let export = recovered.export(id).expect("export");
    assert!(export.contains("task\treal"));
    assert!(!export.contains("ghost"));
    std::fs::remove_dir_all(&root).unwrap();
}

/// Pipelined frames through a faulted server: one write carries five
/// requests, two of which hit scripted storage faults — every failure must
/// land in the slot of the request that caused it, the surviving requests
/// must answer normally, and recovery must show exactly the acked edits.
#[test]
fn pipelined_frames_map_faults_to_the_right_in_flight_request() {
    let root = temp_root("pipeline-faults");
    // append 1 is the registration. In the pipeline below: append 2 (task
    // "early") stalls 30ms but succeeds, append 3 (task "ghost") fails and
    // its rescue snapshot (snapshot 1) fails too — the shard degrades
    // mid-pipeline with later requests still in flight behind it.
    let plan = FaultPlan::parse("slow=2:30,append-err=3,snap-err=1,seed=5").expect("plan");
    let store = open_faulted(&root, plan);
    let server = serve_with_store(
        &ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            shards: 1,
            workers: 2,
            // evented on Linux (the pipelined batch is one dispatched
            // job), thread-pool fallback elsewhere
            evented: cfg!(target_os = "linux"),
            ..ServerConfig::default()
        },
        Arc::new(store),
    )
    .expect("bind the chaos server");
    let mut client = ServiceClient::connect(server.local_addr()).expect("connect");
    let fixture = wolves::repo::figure1();
    let id = client
        .register(&fixture.spec, Some(&fixture.view))
        .expect("registration is append 1");

    let outcomes = client
        .pipeline(&[
            Request::Mutate {
                workflow: id,
                op: add_task("early"),
                expect: None,
            },
            Request::Mutate {
                workflow: id,
                op: add_task("ghost"),
                expect: None,
            },
            Request::Validate {
                workflow: id,
                version: None,
            },
            Request::Mutate {
                workflow: id,
                op: add_task("late-ghost"),
                expect: None,
            },
            Request::Epoch { workflow: id },
        ])
        .expect("the pipeline itself must survive the faults");
    assert_eq!(outcomes.len(), 5);
    // slot 0: the stalled-but-successful append
    match &outcomes[0] {
        Ok(Response::Mutated(mutated)) => assert_eq!(mutated.epoch, 1),
        other => panic!("slot 0 must be the acked mutate, got {other:?}"),
    }
    // slot 1: the double failure lands exactly here
    assert!(
        matches!(outcomes[1], Err(ServiceError::Degraded { shard: 0, .. })),
        "slot 1 must carry the degraded error, got {:?}",
        outcomes[1]
    );
    // slot 2: reads keep serving behind the failed mutate
    match &outcomes[2] {
        Ok(Response::Verdict(verdict)) => assert!(!verdict.sound),
        other => panic!("slot 2 must be the verdict, got {other:?}"),
    }
    // slot 3: the degraded shard refuses the later write, in its own slot
    assert!(
        matches!(outcomes[3], Err(ServiceError::Degraded { .. })),
        "slot 3 must fail fast on the degraded shard, got {:?}",
        outcomes[3]
    );
    // slot 4: the epoch probe sees exactly the one acked mutation
    match &outcomes[4] {
        Ok(Response::Epoch { epoch, .. }) => assert_eq!(*epoch, 1),
        other => panic!("slot 4 must be the epoch, got {other:?}"),
    }

    // the connection is uncorrupted: heal and mutate normally on it
    assert_eq!(client.heal().expect("heal"), (1, 0));
    let mutated = client.mutate(id, add_task("real")).expect("after heal");
    assert_eq!(mutated.epoch, 2);
    client.shutdown().expect("shutdown");
    server.join();

    // exactly the acked history recovers: "early" and "real", no ghosts
    let recovered = open_clean(&root);
    assert_eq!(recovered.cursor(id).expect("cursor"), (2, 2));
    let export = recovered.export(id).expect("export");
    assert!(export.contains("task\tearly"));
    assert!(export.contains("task\treal"));
    assert!(!export.contains("ghost"));
    std::fs::remove_dir_all(&root).unwrap();
}

/// Latency spikes are faults too — but delaying an append must only delay
/// the acknowledgement, never corrupt it.
#[test]
fn latency_spikes_delay_but_never_corrupt_acknowledgements() {
    let root = temp_root("slow");
    // appends 2 and 3 stall for >= 40ms each (plus seeded jitter)
    let plan = FaultPlan::parse("slow=2:40x2,seed=9").expect("plan");
    let store = open_faulted(&root, plan);
    let fixture = wolves::repo::figure1();
    let id = store
        .try_register(fixture.spec, Some(fixture.view))
        .expect("register");

    let started = std::time::Instant::now();
    store
        .mutate(id, add_task("slow-1"))
        .expect("stalled append");
    store
        .mutate(id, add_task("slow-2"))
        .expect("stalled append");
    assert!(
        started.elapsed() >= std::time::Duration::from_millis(80),
        "the scripted stalls must actually delay the acks"
    );
    store.mutate(id, add_task("fast")).expect("past the window");
    assert_eq!(store.cursor(id).expect("cursor"), (3, 3));
    drop(store);

    let recovered = open_clean(&root);
    assert_eq!(recovered.cursor(id).expect("cursor"), (3, 3));
    std::fs::remove_dir_all(&root).unwrap();
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    /// A model-driven random edit; ops reference tasks by position in the
    /// insertion-order model so every generated script is replayable.
    #[derive(Debug, Clone)]
    enum Op {
        AddTask,
        AddEdge(usize, usize),
        RemoveEdge(usize, usize),
        RemoveTask(usize),
        Correct,
    }

    fn op_strategy() -> impl Strategy<Value = Vec<Op>> {
        proptest::collection::vec((0u8..5, 0usize..16, 0usize..16), 4..24).prop_map(|raw| {
            raw.into_iter()
                .map(|(kind, a, b)| match kind {
                    0 | 1 => Op::AddTask,
                    2 => Op::AddEdge(a, b),
                    3 => Op::RemoveEdge(a, b),
                    4 if a % 3 == 0 => Op::Correct,
                    _ => Op::RemoveTask(a),
                })
                .collect()
        })
    }

    /// A random fault plan: optionally a failing-append window, a torn
    /// write, a failing-snapshot window and a disk-full budget, all active
    /// at once. Append 1 (the registration) is always spared so every case
    /// has a workflow to mutate.
    fn plan_strategy() -> impl Strategy<Value = FaultPlan> {
        (
            (0u8..3, 2u64..20, 1u64..4),
            (0u8..2, 2u64..20),
            (0u8..3, 1u64..5, 1u64..3),
            (0u8..2, 3u64..40),
            0u64..1_000_000,
        )
            .prop_map(|(append, torn, snap, full, seed)| {
                use wolves::service::FaultDirective;
                let mut directives = Vec::new();
                if append.0 > 0 {
                    directives.push(FaultDirective::AppendErr {
                        from: append.1,
                        count: append.2,
                    });
                }
                if torn.0 > 0 {
                    directives.push(FaultDirective::Torn { at: torn.1 });
                }
                if snap.0 > 0 {
                    directives.push(FaultDirective::SnapErr {
                        from: snap.1,
                        count: snap.2,
                    });
                }
                if full.0 > 0 {
                    directives.push(FaultDirective::DiskFull {
                        bytes: full.1 * 1024,
                    });
                }
                FaultPlan { seed, directives }
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Random fault plans × random mutation scripts: the store under
        /// faults acks or refuses each edit; a twin in-memory store applies
        /// exactly the acked ones. At every observation point — while the
        /// faulty store is live (possibly degraded), and after recovery
        /// through a clean backend — the two answer identically: acked
        /// mutations survive, refused ones are absent, never a third state.
        #[test]
        fn acked_mutations_survive_and_refused_ones_are_absent(
            script in op_strategy(),
            plan in plan_strategy(),
        ) {
            let root = temp_root("prop");
            let durable = open_faulted(&root, plan);
            let twin = WorkflowStore::new(1);
            let fixture = wolves::repo::figure1();
            let id = match durable.try_register(fixture.spec.clone(), Some(fixture.view.clone())) {
                Ok(id) => id,
                Err(_) => {
                    // the plan starved even the registration (tiny disk
                    // budget): nothing was acked, nothing to check
                    drop(durable);
                    let _ = std::fs::remove_dir_all(&root);
                    return;
                }
            };
            let twin_id = twin
                .try_register(fixture.spec, Some(fixture.view))
                .expect("the twin accepts what the durable store acked");
            prop_assert_eq!(id, twin_id);

            // run the script against the faulty store; echo each op to the
            // twin ONLY if it was acked
            let mut names: Vec<String> = Vec::new();
            let mut counter = 0usize;
            let mut acked = 0usize;
            let mut refused = 0usize;
            for op in &script {
                let concrete = match op {
                    Op::AddTask => {
                        counter += 1;
                        Some(add_task(&format!("task-{counter}")))
                    }
                    Op::AddEdge(from, to) if names.len() >= 2 => Some(MutateOp::AddEdge {
                        from: names[from % names.len()].clone(),
                        to: names[to % names.len()].clone(),
                    }),
                    Op::RemoveEdge(from, to) if names.len() >= 2 => Some(MutateOp::RemoveEdge {
                        from: names[from % names.len()].clone(),
                        to: names[to % names.len()].clone(),
                    }),
                    Op::RemoveTask(pick) if !names.is_empty() => Some(MutateOp::RemoveTask {
                        name: names[pick % names.len()].clone(),
                    }),
                    Op::Correct => None,
                    _ => continue,
                };
                match concrete {
                    Some(mutate_op) => {
                        if durable.mutate(id, mutate_op.clone()).is_ok() {
                            twin.mutate(id, mutate_op.clone())
                                .expect("an acked mutation must apply on the twin");
                            match mutate_op {
                                MutateOp::AddTask { name } => names.push(name),
                                MutateOp::RemoveTask { name } => {
                                    names.retain(|n| n != &name);
                                }
                                _ => {}
                            }
                            acked += 1;
                        } else {
                            refused += 1;
                        }
                    }
                    None => {
                        if durable
                            .correct(id, wolves::core::correct::Strategy::Strong)
                            .is_ok()
                        {
                            twin.correct(id, wolves::core::correct::Strategy::Strong)
                                .expect("an acked correction must apply on the twin");
                            acked += 1;
                        } else {
                            refused += 1;
                        }
                    }
                }
            }
            prop_assert_eq!(acked + refused >= 1, !script.is_empty());

            // live reads agree even if the shard degraded mid-script
            prop_assert_eq!(durable.cursor(id).ok(), twin.cursor(id).ok());
            prop_assert_eq!(observe(&durable, id), observe(&twin, id));

            // heal is always safe to attempt: it either re-opens writes or
            // leaves the shard degraded — it never changes answers
            let _ = durable.heal();
            prop_assert_eq!(observe(&durable, id), observe(&twin, id));
            drop(durable);

            // recovery through a clean backend reproduces exactly the
            // acked history: never a lost ack, never a resurrected refusal
            let recovered = open_clean(&root);
            prop_assert_eq!(recovered.cursor(id).ok(), twin.cursor(id).ok());
            prop_assert_eq!(observe(&recovered, id), observe(&twin, id));
            drop(recovered);
            std::fs::remove_dir_all(&root).unwrap();
        }
    }
}
