//! End-to-end integration tests spanning the whole workspace: import,
//! validation, correction, feedback, provenance and export — plus the
//! `wolves` binary's exit-code contract.

use wolves::core::correct::{correct_view, Strategy};
use wolves::core::feedback::FeedbackSession;
use wolves::core::validate::{validate, validate_by_definition};
use wolves::moml::{from_moml, read_text_format, to_moml, write_text_format};
use wolves::provenance::{
    compare_to_ground_truth, view_level_provenance, workflow_level_provenance,
};
use wolves::repo::suite::standard_suite;
use wolves::repo::{figure1, figure3};

#[test]
fn figure1_full_pipeline_import_validate_correct_query() {
    // export the fixture to MOML, re-import it, and run the whole pipeline
    // on the imported copy — exercising the demo's "Import and Understand"
    // module together with validator, corrector and provenance analysis
    let fixture = figure1();
    let moml = to_moml(&fixture.spec, Some(&fixture.view));
    let imported = from_moml(&moml).expect("exported MOML re-imports");
    let spec = imported.spec;
    let view = imported.view.expect("view was exported");

    let validation = validate(&spec, &view);
    assert!(!validation.is_sound());
    assert_eq!(validation.unsound_composites().len(), 1);

    for strategy in Strategy::ALL {
        let corrector = strategy.corrector();
        let (corrected, report) = correct_view(&spec, &view, corrector.as_ref()).unwrap();
        assert!(validate(&spec, &corrected).is_sound());
        assert!(validate_by_definition(&spec, &corrected).is_sound());
        assert_eq!(report.corrections.len(), 1);

        // provenance of the formatted alignment is exact after correction
        let subject = spec.task_by_name("Format alignment").unwrap();
        let truth = workflow_level_provenance(&spec, subject);
        let answer = view_level_provenance(&spec, &corrected, subject);
        assert!(compare_to_ground_truth(&truth, &answer).is_exact());
    }
}

#[test]
fn figure3_corrector_separation_matches_the_paper() {
    let fixture = figure3();
    let weak = Strategy::Weak.corrector();
    let strong = Strategy::Strong.corrector();
    let optimal = Strategy::Optimal.corrector();
    let weak_split = weak.split(&fixture.spec, &fixture.members).unwrap();
    let strong_split = strong.split(&fixture.spec, &fixture.members).unwrap();
    let optimal_split = optimal.split(&fixture.spec, &fixture.members).unwrap();
    assert_eq!(weak_split.part_count(), 8);
    assert_eq!(strong_split.part_count(), 5);
    assert_eq!(optimal_split.part_count(), 5);
}

#[test]
fn interactive_feedback_session_over_an_imported_workflow() {
    let fixture = figure1();
    let text = write_text_format(&fixture.spec, Some(&fixture.view));
    let imported = read_text_format(&text).expect("text format round-trips");
    let spec = imported.spec;
    let view = imported.view.expect("view present");

    let mut session = FeedbackSession::new(&spec, view);
    assert!(!session.is_sound());
    session
        .correct_all(Strategy::Strong.corrector().as_ref())
        .unwrap();
    assert!(session.is_sound());

    // the user merges two composites; if the merge is unsound another
    // correction round fixes it again
    let ids: Vec<_> = session.view().composite_ids().take(2).collect();
    let (_, merged_sound) = session.merge(&ids, "user merge").unwrap();
    if !merged_sound {
        session
            .correct_all(Strategy::Weak.corrector().as_ref())
            .unwrap();
    }
    assert!(session.is_sound());
    let refined = session.finish();
    assert!(refined.validate_against(&spec).is_ok());
}

#[test]
fn every_suite_view_can_be_corrected_by_both_polynomial_correctors() {
    for case in standard_suite(0..2) {
        for strategy in [Strategy::Weak, Strategy::Strong] {
            let corrector = strategy.corrector();
            let (corrected, _) = correct_view(&case.spec, &case.view, corrector.as_ref())
                .unwrap_or_else(|e| panic!("{} failed on {}: {e}", strategy, case.name));
            let report = validate(&case.spec, &corrected);
            assert!(
                report.is_sound(),
                "{} left {} unsound composites in {}",
                strategy,
                report.unsound_composites().len(),
                case.name
            );
            assert!(corrected.validate_against(&case.spec).is_ok());
        }
    }
}

/// Builds the `wolves-cli` binary (tier-1 `cargo test` does not build
/// workspace binaries) and returns its path. Uses the same cargo and target
/// directory as the running test, so the build is a cheap no-op when already
/// fresh.
fn wolves_binary() -> std::path::PathBuf {
    let exe = std::env::current_exe().expect("test executable path");
    let profile_dir = exe
        .parent()
        .and_then(std::path::Path::parent)
        .expect("target profile directory");
    let cargo = std::env::var_os("CARGO").unwrap_or_else(|| "cargo".into());
    let mut build = std::process::Command::new(cargo);
    build
        .args(["build", "-q", "-p", "wolves-cli", "--bin", "wolves-cli"])
        .current_dir(env!("CARGO_MANIFEST_DIR"));
    if profile_dir.file_name().is_some_and(|n| n == "release") {
        build.arg("--release");
    }
    let status = build.status().expect("spawn cargo build for the CLI");
    assert!(status.success(), "building the wolves-cli binary failed");
    let binary = profile_dir.join(format!("wolves-cli{}", std::env::consts::EXE_SUFFIX));
    assert!(binary.exists(), "no binary at {}", binary.display());
    binary
}

#[test]
fn cli_exit_codes_distinguish_success_from_malformed_invocations() {
    let binary = wolves_binary();
    let run = |args: &[&str]| {
        std::process::Command::new(&binary)
            .args(args)
            .output()
            .expect("run the wolves binary")
    };

    // malformed invocations exit nonzero with a usage message on stderr
    for args in [
        &["frobnicate"][..],
        &["validate"],
        &["validate", "--bogus-flag", "x"],
        &["correct", "no-such-file.txt", "--strategy"],
        &["request"],
        &["serve", "--shards", "many"],
        &["fixture", "figure9"],
    ] {
        let output = run(args);
        assert_eq!(
            output.status.code(),
            Some(1),
            "expected exit code 1 for {args:?}"
        );
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(
            stderr.starts_with("error:"),
            "stderr for {args:?} must lead with the error: {stderr}"
        );
        if args != ["fixture", "figure9"] {
            assert!(
                stderr.contains("usage"),
                "stderr for {args:?} must include usage: {stderr}"
            );
        }
    }

    // unreadable input files are reported as errors, not usage problems
    let output = run(&["validate", "no-such-file.txt"]);
    assert_eq!(output.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&output.stderr).contains("cannot read"));

    // successful invocations exit zero with output on stdout only
    for args in [&["demo"][..], &["help"], &["fixture", "figure1"]] {
        let output = run(args);
        assert_eq!(
            output.status.code(),
            Some(0),
            "expected success for {args:?}"
        );
        assert!(output.stderr.is_empty(), "no stderr expected for {args:?}");
        assert!(!output.stdout.is_empty());
    }
}

#[test]
fn serve_and_recover_exit_codes_distinguish_failure_modes() {
    let binary = wolves_binary();
    let run = |args: &[&str]| {
        std::process::Command::new(&binary)
            .args(args)
            .output()
            .expect("run the wolves binary")
    };
    let temp = std::env::temp_dir().join(format!("wolves-e2e-exit-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&temp);
    std::fs::create_dir_all(&temp).unwrap();

    // bind failure — the address is already taken — exits 2, not 1
    let occupied = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = occupied.local_addr().unwrap().to_string();
    let output = run(&["serve", "--addr", &addr]);
    assert_eq!(output.status.code(), Some(2), "bind failure must exit 2");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("cannot bind"), "stderr: {stderr}");
    drop(occupied);

    // data-dir recovery failure — corrupt meta file — exits 3 on both
    // `serve --data-dir` and `recover`
    let corrupt = temp.join("corrupt-store");
    std::fs::create_dir_all(&corrupt).unwrap();
    std::fs::write(corrupt.join("meta.txt"), "not a wolves store\n").unwrap();
    let corrupt_str = corrupt.to_string_lossy().to_string();
    let output = run(&["serve", "--addr", "127.0.0.1:0", "--data-dir", &corrupt_str]);
    assert_eq!(
        output.status.code(),
        Some(3),
        "recovery failure must exit 3"
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("cannot recover"), "stderr: {stderr}");
    let output = run(&["recover", &corrupt_str]);
    assert_eq!(output.status.code(), Some(3));

    // malformed recover invocations stay on the generic exit code 1
    let output = run(&["recover"]);
    assert_eq!(output.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&output.stderr).contains("usage"));
    // a directory that is not a data dir is an operation error
    let empty = temp.join("not-a-store");
    std::fs::create_dir_all(&empty).unwrap();
    let output = run(&["recover", &empty.to_string_lossy()]);
    assert_eq!(output.status.code(), Some(3));

    // happy path: recover a directory written by a real durable store
    {
        use std::sync::Arc;
        use wolves::service::{FileBackend, PersistConfig, WorkflowStore};
        let good = temp.join("good-store");
        let config = PersistConfig {
            shards: 2,
            ..PersistConfig::new(&good)
        };
        let backend = Arc::new(FileBackend::open(config).unwrap());
        let (store, _) = WorkflowStore::open(backend).unwrap();
        let fixture = figure1();
        store
            .try_register(fixture.spec, Some(fixture.view))
            .unwrap();
        drop(store);
        let output = run(&["recover", &good.to_string_lossy()]);
        assert_eq!(
            output.status.code(),
            Some(0),
            "stderr: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        let stdout = String::from_utf8_lossy(&output.stdout);
        assert!(stdout.contains("intact"), "stdout: {stdout}");
        assert!(stdout.contains("recovered 1 workflow"), "stdout: {stdout}");
    }
    std::fs::remove_dir_all(&temp).unwrap();
}

#[test]
fn moml_and_text_formats_agree_on_suite_workflows() {
    for case in standard_suite(0..1) {
        let moml = to_moml(&case.spec, Some(&case.view));
        let text = write_text_format(&case.spec, Some(&case.view));
        let from_xml = from_moml(&moml).expect("MOML round-trips");
        let from_text = read_text_format(&text).expect("text round-trips");
        assert_eq!(from_xml.spec.task_count(), case.spec.task_count());
        assert_eq!(from_text.spec.task_count(), case.spec.task_count());
        assert_eq!(
            from_xml.spec.dependency_count(),
            from_text.spec.dependency_count()
        );
        let soundness_original = validate(&case.spec, &case.view).is_sound();
        let view_xml = from_xml.view.expect("view exported via MOML");
        let soundness_xml = validate(&from_xml.spec, &view_xml).is_sound();
        assert_eq!(soundness_original, soundness_xml);
    }
}
