//! Property-based integration tests: the soundness and optimality
//! guarantees of the correctors must hold on arbitrary small DAG workflows,
//! not just on the paper's examples.

use std::collections::BTreeSet;

use proptest::prelude::*;
use wolves::core::correct::check::{
    is_sound_split, is_strong_local_optimal, is_weak_local_optimal,
};
use wolves::core::correct::{Corrector, OptimalCorrector, StrongCorrector, WeakCorrector};
use wolves::core::validate::{validate, validate_by_definition};
use wolves::workflow::{AtomicTask, DataDependency, TaskId, WorkflowSpec, WorkflowView};

/// A random small DAG workflow: nodes 0..n with edges oriented from lower to
/// higher index, plus an external source and sink so composites have real
/// boundaries.
fn arbitrary_workflow() -> impl Strategy<Value = (WorkflowSpec, Vec<TaskId>)> {
    (
        3usize..9,
        proptest::collection::vec((0usize..9, 0usize..9), 2..20),
        0u8..=1,
    )
        .prop_map(|(n, raw_edges, connect_boundary)| {
            let mut spec = WorkflowSpec::new("prop-workflow");
            let source = spec.add_task(AtomicTask::new("source")).unwrap();
            let sink = spec.add_task(AtomicTask::new("sink")).unwrap();
            let tasks: Vec<TaskId> = (0..n)
                .map(|i| spec.add_task(AtomicTask::new(format!("t{i}"))).unwrap())
                .collect();
            for (a, b) in raw_edges {
                let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                if lo == hi || lo >= n || hi >= n {
                    continue;
                }
                let _ = spec.add_dependency(tasks[lo], tasks[hi], DataDependency::unnamed());
            }
            // boundary dataflow: the source feeds every root, every leaf
            // feeds the sink (when connect_boundary is 1, only half of them,
            // to vary the boundary shapes)
            for (i, &task) in tasks.iter().enumerate() {
                let is_root = spec.predecessors(task).count() == 0;
                let is_leaf = spec.successors(task).count() == 0;
                if is_root && (connect_boundary == 0 || i % 2 == 0) {
                    let _ = spec.add_dependency(source, task, DataDependency::unnamed());
                }
                if is_leaf && (connect_boundary == 0 || i % 2 == 1) {
                    let _ = spec.add_dependency(task, sink, DataDependency::unnamed());
                }
            }
            (spec, tasks)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every corrector output is a sound partition of the composite; the
    /// weak output satisfies Definition 2.5, the strong output Definition
    /// 2.6, and the part counts are ordered optimal ≤ strong ≤ weak.
    #[test]
    fn correctors_satisfy_their_guarantees((spec, tasks) in arbitrary_workflow()) {
        let members: BTreeSet<TaskId> = tasks.iter().copied().collect();
        let weak = WeakCorrector::new().split(&spec, &members).unwrap();
        let strong = StrongCorrector::new().split(&spec, &members).unwrap();
        let optimal = OptimalCorrector::with_limit(12).split(&spec, &members).unwrap();

        prop_assert!(is_sound_split(&spec, &members, &weak));
        prop_assert!(is_sound_split(&spec, &members, &strong));
        prop_assert!(is_sound_split(&spec, &members, &optimal));

        prop_assert!(is_weak_local_optimal(&spec, &weak));
        prop_assert!(is_strong_local_optimal(&spec, &strong));

        prop_assert!(optimal.part_count() <= strong.part_count());
        prop_assert!(strong.part_count() <= weak.part_count());
    }

    /// Correcting a whole view yields a view that is sound under both the
    /// per-composite check (Proposition 2.1) and the definition-based check,
    /// and Proposition 2.1 soundness always implies definition soundness.
    #[test]
    fn corrected_views_are_sound_under_both_checks(
        (spec, _tasks) in arbitrary_workflow(),
        group_count in 2usize..4,
    ) {
        // build a (probably unsound) view by dealing tasks round-robin
        let mut groups: Vec<(String, Vec<TaskId>)> = (0..group_count)
            .map(|g| (format!("g{g}"), Vec::new()))
            .collect();
        let mut all: Vec<TaskId> = spec.task_ids().collect();
        all.sort_unstable();
        for (i, task) in all.into_iter().enumerate() {
            groups[i % group_count].1.push(task);
        }
        let view = WorkflowView::from_groups(&spec, "prop-view", groups).unwrap();

        let prop_report = validate(&spec, &view);
        let def_report = validate_by_definition(&spec, &view);
        if prop_report.is_sound() {
            prop_assert!(def_report.is_sound(), "Prop 2.1 soundness must imply Def 2.1 soundness");
        }

        let (corrected, _) =
            wolves::core::correct::correct_view(&spec, &view, &StrongCorrector::new()).unwrap();
        prop_assert!(validate(&spec, &corrected).is_sound());
        prop_assert!(validate_by_definition(&spec, &corrected).is_sound());
        prop_assert!(corrected.validate_against(&spec).is_ok());
    }

    /// View-level provenance never misses true provenance (recall 1.0), and
    /// through a corrected view it never reports more than the unsound view
    /// did.
    #[test]
    fn provenance_recall_is_total((spec, tasks) in arbitrary_workflow()) {
        let members: Vec<TaskId> = tasks;
        // a coarse two-composite view over the middle tasks
        let mut first_half: Vec<TaskId> = Vec::new();
        let mut second_half: Vec<TaskId> = Vec::new();
        for (i, &task) in members.iter().enumerate() {
            if i % 2 == 0 { first_half.push(task) } else { second_half.push(task) }
        }
        let mut groups = vec![("even".to_owned(), first_half), ("odd".to_owned(), second_half)];
        groups.retain(|(_, g)| !g.is_empty());
        for task in spec.task_ids() {
            if !members.contains(&task) {
                groups.push((format!("rest-{task}"), vec![task]));
            }
        }
        let view = WorkflowView::from_groups(&spec, "halves", groups).unwrap();
        let (corrected, _) =
            wolves::core::correct::correct_view(&spec, &view, &WeakCorrector::new()).unwrap();

        for subject in spec.task_ids() {
            let truth = wolves::provenance::workflow_level_provenance(&spec, subject);
            let through_view = wolves::provenance::view_level_provenance(&spec, &view, subject);
            let through_corrected =
                wolves::provenance::view_level_provenance(&spec, &corrected, subject);
            let accuracy = wolves::provenance::compare_to_ground_truth(&truth, &through_view);
            prop_assert!((accuracy.recall - 1.0).abs() < 1e-9);
            prop_assert!(accuracy.missing.is_empty());
            // refinement only removes reported tasks
            prop_assert!(through_corrected.tasks.is_subset(&through_view.tasks));
        }
    }
}
