//! Telemetry integration tests: the log2-bucket histogram core (bracketing
//! property against a sorted reference, concurrent recorders, shard merge),
//! the `metrics` verb over loopback TCP (exposition parses, counters are
//! monotone), WAL-stage histograms after a durable mutation burst, and the
//! slow-request ring catching a stalled commit.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use wolves::service::storage::{
    AppendOutcome, ShardJournal, SnapshotEntry, StorageBackend, WalRecord,
};
use wolves::service::{
    serve, FileBackend, Histogram, MutateOp, PersistConfig, ServerConfig, ServiceClient, Stage,
    Verb, WorkflowStore,
};

fn temp_root(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "wolves-telemetry-{tag}-{}-{unique}",
        std::process::id()
    ))
}

/// The exact quantile of a sorted sample set, matching the histogram's rank
/// convention: the sample of rank `ceil(q · count)`, 1-based.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let count = sorted.len() as u64;
    let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
    sorted[(rank - 1) as usize]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The log2-bucket estimate brackets the exact sorted-reference
    /// quantile within one bucket's relative error: `exact ≤ estimate`
    /// and `estimate < 2 · exact` (estimate 0 exactly when exact is 0).
    /// The tracked max is exact, not bucketed.
    #[test]
    fn histogram_quantiles_bracket_the_sorted_reference(
        mut samples in proptest::collection::vec(0u64..=1_u64 << 40, 1..200),
    ) {
        let histogram = Histogram::default();
        for &ns in &samples {
            histogram.record_ns(ns);
        }
        samples.sort_unstable();
        let snapshot = histogram.snapshot();
        prop_assert_eq!(snapshot.count(), samples.len() as u64);
        prop_assert_eq!(snapshot.max, *samples.last().unwrap());
        for q in [0.50, 0.90, 0.99, 1.0] {
            let exact = exact_quantile(&samples, q);
            let estimate = snapshot.quantile(q);
            prop_assert!(
                estimate >= exact,
                "q={q}: estimate {estimate} below exact {exact}"
            );
            if exact == 0 {
                prop_assert_eq!(estimate, 0);
            } else {
                prop_assert!(
                    estimate < 2 * exact,
                    "q={q}: estimate {estimate} not within one bucket of exact {exact}"
                );
            }
        }
    }
}

/// The histogram is a shared-reference recorder: concurrent threads lose no
/// samples, and merging per-shard snapshots preserves count/sum/max.
#[test]
fn concurrent_recorders_lose_no_samples_and_merges_add_up() {
    const THREADS: u64 = 8;
    const RECORDS: u64 = 1_000;
    let shared = Arc::new(Histogram::default());
    let handles: Vec<_> = (0..THREADS)
        .map(|thread| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                for index in 0..RECORDS {
                    shared.record_ns(thread * RECORDS + index + 1);
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("recorder thread");
    }
    let snapshot = shared.snapshot();
    assert_eq!(snapshot.count(), THREADS * RECORDS);
    assert_eq!(snapshot.max, THREADS * RECORDS);
    let total: u64 = (1..=THREADS * RECORDS).sum();
    assert_eq!(snapshot.sum, total);

    // shard merge: two disjoint recorders fold into one snapshot
    let left = Histogram::default();
    let right = Histogram::default();
    left.record_ns(10);
    left.record_ns(500);
    right.record_ns(3_000);
    let mut merged = left.snapshot();
    merged.merge(&right.snapshot());
    assert_eq!(merged.count(), 3);
    assert_eq!(merged.sum, 3_510);
    assert_eq!(merged.max, 3_000);
    // the merged median is the middle sample (500), within one bucket
    assert!(merged.p50() >= 500 && merged.p50() < 1_000);
}

/// Parses a Prometheus-style exposition into `series{labels} -> value`,
/// failing the test on any line that is neither a comment nor a sample.
fn parse_exposition(text: &str) -> HashMap<String, f64> {
    let mut samples = HashMap::new();
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("malformed sample line: {line:?}"));
        let value: f64 = value
            .parse()
            .unwrap_or_else(|_| panic!("non-numeric value in: {line:?}"));
        samples.insert(series.to_owned(), value);
    }
    samples
}

#[test]
fn metrics_verb_serves_a_parseable_monotone_exposition_over_loopback() {
    let server = serve(&ServerConfig {
        shards: 2,
        workers: 4,
        ..ServerConfig::default()
    })
    .expect("bind a loopback server");
    let mut client = ServiceClient::connect(server.local_addr()).expect("connect");

    let fixture = wolves::repo::figure1();
    let payload = wolves::moml::write_text_format(&fixture.spec, Some(&fixture.view));
    let id = client.register_text(&payload).expect("register");
    for _ in 0..5 {
        client.validate(id, None).expect("validate");
    }
    client
        .mutate(
            id,
            MutateOp::AddEdge {
                from: "Check additional annotations".to_owned(),
                to: "Build phylo tree".to_owned(),
            },
        )
        .expect("mutate");

    let first = parse_exposition(&client.metrics().expect("first scrape"));
    assert_eq!(first["wolves_requests_total{verb=\"validate\"}"], 5.0);
    assert_eq!(first["wolves_requests_total{verb=\"mutate\"}"], 1.0);
    assert_eq!(
        first["wolves_request_duration_seconds_count{verb=\"validate\"}"],
        5.0
    );
    // commit-stage spans from the mutation show up in the stage histograms
    assert!(first["wolves_commit_stage_duration_seconds_count{stage=\"compute\"}"] >= 1.0);
    assert!(first["wolves_commit_stage_duration_seconds_count{stage=\"snapshot_publish\"}"] >= 1.0);
    // the server stamps the parse stage for every request it decodes
    assert!(first["wolves_commit_stage_duration_seconds_count{stage=\"parse\"}"] >= 7.0);
    assert_eq!(first["wolves_shards"], 2.0);
    assert_eq!(first["wolves_workflows"], 1.0);

    // counters are monotone: more requests never decrease any _total/_count
    for _ in 0..3 {
        client.validate(id, None).expect("validate again");
    }
    let second = parse_exposition(&client.metrics().expect("second scrape"));
    assert_eq!(second["wolves_requests_total{verb=\"validate\"}"], 8.0);
    for (series, &value) in &first {
        if series.ends_with("_total") || series.contains("_count") {
            let later = second.get(series).copied().unwrap_or_else(|| {
                panic!("series {series} disappeared between scrapes");
            });
            assert!(
                later >= value,
                "{series} went backwards: {value} -> {later}"
            );
        }
    }

    client.shutdown().expect("shutdown");
    server.join();
}

#[test]
fn wal_stage_histograms_fill_during_a_durable_mutation_burst() {
    let root = temp_root("wal-stages");
    let _ = std::fs::remove_dir_all(&root);
    let backend = FileBackend::open(PersistConfig {
        shards: 2,
        fsync_every: 1,
        ..PersistConfig::new(&root)
    })
    .expect("open the data dir");
    let (store, _) = WorkflowStore::open(Arc::new(backend)).expect("recover");
    let fixture = wolves::repo::figure1();
    let id = store
        .try_register(fixture.spec, Some(fixture.view))
        .expect("register");
    for index in 0..16usize {
        let (from, to) = (
            "Check additional annotations".to_owned(),
            "Build phylo tree".to_owned(),
        );
        let op = if index % 2 == 0 {
            MutateOp::AddEdge { from, to }
        } else {
            MutateOp::RemoveEdge { from, to }
        };
        store.mutate(id, op).expect("mutate");
    }

    // register + 16 mutations all append to the WAL and fsync every record
    let wal_append = store.stage_histogram(Stage::WalAppend);
    let fsync = store.stage_histogram(Stage::Fsync);
    assert_eq!(wal_append.count(), 17);
    assert_eq!(fsync.count(), 17);
    assert!(fsync.sum > 0, "strict fsync must cost observable time");
    assert_eq!(store.verb_histogram(Verb::Mutate).count(), 16);

    // the backend's own observation agrees and reaches the exposition
    let text = store.metrics_text();
    let samples = parse_exposition(&text);
    assert!(samples["wolves_wal_append_bytes_total"] > 0.0);
    assert_eq!(samples["wolves_wal_append_duration_seconds_count"], 17.0);
    assert_eq!(samples["wolves_wal_fsync_duration_seconds_count"], 17.0);

    // a reopen replays the journal and stamps the recovery gauge
    drop(store);
    let backend = FileBackend::open(PersistConfig {
        shards: 2,
        fsync_every: 1,
        ..PersistConfig::new(&root)
    })
    .expect("reopen");
    let (store, report) = WorkflowStore::open(Arc::new(backend)).expect("recover again");
    assert!(report.replayed_records > 0);
    assert!(store.telemetry().recovery_replay_ns() > 0);
    assert!(store
        .metrics_text()
        .contains("wolves_recovery_replay_seconds"));
    let _ = std::fs::remove_dir_all(&root);
}

/// A durable-looking backend whose appends stall — the slow-request ring
/// must retain the resulting mutation, attributing the time to `wal_append`.
#[derive(Debug)]
struct StallingBackend {
    shards: usize,
    delay: Duration,
}

impl StorageBackend for StallingBackend {
    fn durable(&self) -> bool {
        true
    }

    fn shard_count(&self) -> usize {
        self.shards
    }

    fn append(
        &self,
        _shard: usize,
        _record: &WalRecord,
    ) -> Result<AppendOutcome, wolves::service::ServiceError> {
        std::thread::sleep(self.delay);
        Ok(AppendOutcome::default())
    }

    fn write_snapshot(
        &self,
        _shard: usize,
        _entries: &[SnapshotEntry],
    ) -> Result<(), wolves::service::ServiceError> {
        Ok(())
    }

    fn take_journal(&self) -> Result<Vec<ShardJournal>, wolves::service::ServiceError> {
        Ok((0..self.shards).map(|_| ShardJournal::default()).collect())
    }

    fn sync(&self) -> Result<(), wolves::service::ServiceError> {
        Ok(())
    }
}

/// A concurrent mutation burst through a strict-fsync (`fsync_every=1`)
/// durable server: the group-commit series must account for every append
/// (batch sum = leader batches + absorbed fsyncs) and the serving layer's
/// connection/wakeup gauges must reach the same exposition.
#[test]
fn group_commit_and_server_gauges_reach_the_exposition_after_a_concurrent_burst() {
    let root = temp_root("group-commit");
    let _ = std::fs::remove_dir_all(&root);
    let backend = FileBackend::open(PersistConfig {
        shards: 2,
        fsync_every: 1,
        ..PersistConfig::new(&root)
    })
    .expect("open the data dir");
    let (store, _) = WorkflowStore::open(Arc::new(backend)).expect("recover");
    let server = wolves::service::serve_with_store(
        &ServerConfig {
            shards: 2,
            workers: 4,
            // evented on Linux, thread-pool fallback elsewhere — the
            // gauges are attached either way
            evented: cfg!(target_os = "linux"),
            ..ServerConfig::default()
        },
        Arc::new(store),
    )
    .expect("bind the strict durable server");
    let store = server.store();
    let ids: Vec<_> = (0..8)
        .map(|_| {
            let fixture = wolves::repo::figure1();
            store
                .try_register(fixture.spec, Some(fixture.view))
                .expect("register durably")
        })
        .collect();

    // 8 concurrent TCP mutators, one workflow each: every ack waits on a
    // (possibly shared) leader fsync
    let per_client = 20usize;
    let addr = server.local_addr();
    std::thread::scope(|scope| {
        for &id in &ids {
            scope.spawn(move || {
                let mut client = ServiceClient::connect(addr).expect("mutator connect");
                for index in 0..per_client {
                    let (from, to) = (
                        "Check additional annotations".to_owned(),
                        "Build phylo tree".to_owned(),
                    );
                    let op = if index % 2 == 0 {
                        MutateOp::AddEdge { from, to }
                    } else {
                        MutateOp::RemoveEdge { from, to }
                    };
                    client.mutate(id, op).expect("acked mutate");
                }
            });
        }
    });

    let mut client = ServiceClient::connect(addr).expect("scrape connect");
    let samples = parse_exposition(&client.metrics().expect("metrics"));
    // every append went through group commit: 8 registrations + the burst
    let appends = (ids.len() + ids.len() * per_client) as f64;
    assert_eq!(samples["wolves_wal_group_commit_batch_sum"], appends);
    let batches = samples["wolves_wal_group_commit_batch_count"];
    assert!(
        batches >= 1.0 && batches <= appends,
        "batches out of range: {batches}"
    );
    assert_eq!(
        samples["wolves_wal_group_commit_absorbed_total"],
        appends - batches,
        "absorbed must be exactly the appends that rode another fsync"
    );
    // serving-layer gauges are stitched into the same exposition
    assert!(samples["wolves_open_connections"] >= 1.0);
    assert!(samples["wolves_connections_accepted_total"] >= 9.0);
    assert!(samples.contains_key("wolves_pipelined_batches_total"));
    #[cfg(target_os = "linux")]
    assert!(
        samples["wolves_event_loop_wakeups_total"] >= 1.0,
        "the evented loop must have been woken by worker completions"
    );

    client.shutdown().expect("shutdown");
    drop(client);
    server.join();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn slow_ring_retains_a_stalled_commit_with_its_stage_breakdown() {
    let delay = Duration::from_millis(20);
    let backend = Arc::new(StallingBackend { shards: 2, delay });
    let (store, _) = WorkflowStore::open(backend).expect("open on the stalling backend");
    let fixture = wolves::repo::figure1();
    let id = store
        .try_register(fixture.spec, Some(fixture.view))
        .expect("register");
    // a fast read first, so the ring has something cheap to outrank
    store.validate(id, None).expect("validate");
    store
        .mutate(
            id,
            MutateOp::AddEdge {
                from: "Check additional annotations".to_owned(),
                to: "Build phylo tree".to_owned(),
            },
        )
        .expect("mutate");

    let worst = store.telemetry().slow().worst();
    assert!(!worst.is_empty());
    // the stalled mutate outranks the validate; its wal_append span carries
    // the injected delay
    let top = &worst[0];
    assert!(top.verb == "mutate" || top.verb == "register");
    assert!(top.total_ns >= delay.as_nanos() as u64);
    let wal_span = top
        .spans
        .iter()
        .find(|(stage, _)| *stage == "wal_append")
        .expect("stalled commit records a wal_append span");
    assert!(wal_span.1 >= delay.as_nanos() as u64);

    let text = store.slow_requests_text();
    assert!(text.starts_with("slow-requests\t"));
    assert!(text.contains("wal_append="));
}
