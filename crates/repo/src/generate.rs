//! Synthetic workflow generators.
//!
//! Scientific-workflow repositories (Kepler, myExperiment) are dominated by
//! a few structural shapes: layered analysis pipelines with fan-out/fan-in,
//! branching pipelines around a main data path, and series-parallel
//! compositions of sub-workflows. The generators below produce DAGs in these
//! shapes with controllable size and density; they are deterministic for a
//! given seed so every experiment is reproducible.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use wolves_workflow::{AtomicTask, DataDependency, TaskId, WorkflowSpec};

/// Configuration for [`layered_workflow`].
#[derive(Debug, Clone)]
pub struct LayeredConfig {
    /// Number of layers (≥ 2).
    pub layers: usize,
    /// Minimum tasks per layer.
    pub min_width: usize,
    /// Maximum tasks per layer (inclusive).
    pub max_width: usize,
    /// Probability of an edge between a task and each task of the next
    /// layer, beyond the one mandatory edge that keeps the graph connected.
    pub edge_probability: f64,
    /// Probability of a "skip" edge jumping over one layer.
    pub skip_probability: f64,
}

impl Default for LayeredConfig {
    fn default() -> Self {
        LayeredConfig {
            layers: 5,
            min_width: 2,
            max_width: 4,
            edge_probability: 0.35,
            skip_probability: 0.1,
        }
    }
}

impl LayeredConfig {
    /// A configuration that produces roughly `target_tasks` tasks.
    #[must_use]
    pub fn sized(target_tasks: usize) -> Self {
        let width = 3usize;
        let layers = (target_tasks / width).max(2);
        LayeredConfig {
            layers,
            min_width: width.saturating_sub(1).max(1),
            max_width: width + 1,
            ..LayeredConfig::default()
        }
    }
}

/// Generates a layered DAG workflow: tasks are organised in layers, every
/// task has at least one predecessor in the previous layer (except layer 0),
/// and extra forward/skip edges are added with the configured probabilities.
#[must_use]
pub fn layered_workflow(config: &LayeredConfig, seed: u64) -> WorkflowSpec {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut spec = WorkflowSpec::new(format!("layered-{seed}"));
    let mut layers: Vec<Vec<TaskId>> = Vec::with_capacity(config.layers);
    let mut counter = 0usize;
    for layer in 0..config.layers {
        let width = if config.max_width <= config.min_width {
            config.min_width.max(1)
        } else {
            rng.gen_range(config.min_width..=config.max_width).max(1)
        };
        let mut ids = Vec::with_capacity(width);
        for _ in 0..width {
            let task = AtomicTask::new(format!("L{layer}-task{counter}"))
                .with_param("layer", layer.to_string());
            ids.push(spec.add_task(task).expect("unique generated name"));
            counter += 1;
        }
        layers.push(ids);
    }
    for layer in 1..config.layers {
        let previous = layers[layer - 1].clone();
        for &task in &layers[layer] {
            // one mandatory predecessor keeps every task connected
            let mandatory = previous[rng.gen_range(0..previous.len())];
            let _ = spec.add_dependency(mandatory, task, DataDependency::unnamed());
            for &candidate in &previous {
                if candidate != mandatory && rng.gen_bool(config.edge_probability) {
                    let _ = spec.add_dependency(candidate, task, DataDependency::unnamed());
                }
            }
            if layer >= 2 {
                for &candidate in &layers[layer - 2] {
                    if rng.gen_bool(config.skip_probability) {
                        let _ = spec.add_dependency(candidate, task, DataDependency::unnamed());
                    }
                }
            }
        }
    }
    spec
}

/// Generates a branching pipeline: a source task fans out into `branches`
/// parallel chains of `stage_length` tasks each, which join into a sink, and
/// this pattern repeats `segments` times end to end. This is the shape of
/// the paper's Figure 1 (split into annotation and sequence branches that
/// re-join at the tree-building step).
#[must_use]
pub fn pipeline_workflow(
    segments: usize,
    branches: usize,
    stage_length: usize,
    seed: u64,
) -> WorkflowSpec {
    let mut spec = WorkflowSpec::new(format!("pipeline-{seed}"));
    let mut previous_sink: Option<TaskId> = None;
    let mut counter = 0usize;
    let name = |counter: &mut usize, label: &str| {
        let n = format!("{label}-{counter}");
        *counter += 1;
        n
    };
    for segment in 0..segments.max(1) {
        let source = spec
            .add_task(AtomicTask::new(name(
                &mut counter,
                &format!("seg{segment}-split"),
            )))
            .expect("unique name");
        if let Some(prev) = previous_sink {
            spec.add_dependency(prev, source, DataDependency::unnamed())
                .expect("valid edge");
        }
        let sink = spec
            .add_task(AtomicTask::new(name(
                &mut counter,
                &format!("seg{segment}-join"),
            )))
            .expect("unique name");
        for branch in 0..branches.max(1) {
            let mut previous = source;
            for _ in 0..stage_length.max(1) {
                let task = spec
                    .add_task(AtomicTask::new(name(
                        &mut counter,
                        &format!("seg{segment}-b{branch}"),
                    )))
                    .expect("unique name");
                spec.add_dependency(previous, task, DataDependency::unnamed())
                    .expect("valid edge");
                previous = task;
            }
            spec.add_dependency(previous, sink, DataDependency::unnamed())
                .expect("valid edge");
        }
        previous_sink = Some(sink);
    }
    spec
}

/// Generates a series-parallel workflow by recursively composing chains and
/// parallel blocks, a common abstraction of nested sub-workflows.
#[must_use]
pub fn series_parallel_workflow(depth: usize, seed: u64) -> WorkflowSpec {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut spec = WorkflowSpec::new(format!("series-parallel-{seed}"));
    let mut counter = 0usize;
    let source = add(&mut spec, &mut counter);
    let sink = add(&mut spec, &mut counter);
    expand(&mut spec, &mut rng, &mut counter, source, sink, depth);
    return spec;

    fn add(spec: &mut WorkflowSpec, counter: &mut usize) -> TaskId {
        let id = spec
            .add_task(AtomicTask::new(format!("sp-task{counter}")))
            .expect("unique name");
        *counter += 1;
        id
    }

    fn expand(
        spec: &mut WorkflowSpec,
        rng: &mut StdRng,
        counter: &mut usize,
        from: TaskId,
        to: TaskId,
        depth: usize,
    ) {
        if depth == 0 {
            let _ = spec.add_dependency(from, to, DataDependency::unnamed());
            return;
        }
        if rng.gen_bool(0.5) {
            // series: from -> mid -> to, both halves expanded
            let mid = add(spec, counter);
            expand(spec, rng, counter, from, mid, depth - 1);
            expand(spec, rng, counter, mid, to, depth - 1);
        } else {
            // parallel: two or three independent branches from -> to
            let branches = rng.gen_range(2..=3);
            for _ in 0..branches {
                let node = add(spec, counter);
                expand(spec, rng, counter, from, node, depth - 1);
                expand(spec, rng, counter, node, to, depth - 1);
            }
        }
    }
}

/// Picks `count` distinct tasks of the workflow uniformly at random — used
/// by the automatic view construction to select "user-relevant" tasks.
#[must_use]
pub fn sample_tasks(spec: &WorkflowSpec, count: usize, seed: u64) -> Vec<TaskId> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut tasks: Vec<TaskId> = spec.task_ids().collect();
    tasks.shuffle(&mut rng);
    tasks.truncate(count.min(tasks.len()));
    tasks.sort_unstable();
    tasks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layered_workflows_are_dags_of_expected_size() {
        let config = LayeredConfig {
            layers: 6,
            min_width: 2,
            max_width: 5,
            edge_probability: 0.4,
            skip_probability: 0.2,
        };
        let spec = layered_workflow(&config, 7);
        assert!(spec.ensure_acyclic().is_ok());
        assert!(spec.task_count() >= 12 && spec.task_count() <= 30);
        assert!(spec.dependency_count() >= spec.task_count() - config.layers);
        // every non-first-layer task has at least one predecessor
        for (id, task) in spec.tasks() {
            if task.params.get("layer").map(String::as_str) != Some("0") {
                assert!(spec.predecessors(id).count() >= 1);
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let config = LayeredConfig::default();
        let a = layered_workflow(&config, 42);
        let b = layered_workflow(&config, 42);
        let c = layered_workflow(&config, 43);
        assert_eq!(a.task_count(), b.task_count());
        assert_eq!(a.dependency_count(), b.dependency_count());
        let edges = |s: &WorkflowSpec| s.dependencies().collect::<Vec<_>>();
        assert_eq!(edges(&a), edges(&b));
        assert!(edges(&a) != edges(&c) || a.task_count() != c.task_count());
    }

    #[test]
    fn sized_config_hits_the_target_roughly() {
        let spec = layered_workflow(&LayeredConfig::sized(60), 1);
        assert!(spec.task_count() >= 40 && spec.task_count() <= 90);
    }

    #[test]
    fn pipelines_have_single_source_and_sink_per_segment() {
        let spec = pipeline_workflow(2, 3, 2, 5);
        assert!(spec.ensure_acyclic().is_ok());
        // 2 segments * (split + join + 3 branches * 2 stages) = 2 * 8 = 16
        assert_eq!(spec.task_count(), 16);
        let roots = wolves_graph::algo::roots(spec.graph());
        let leaves = wolves_graph::algo::leaves(spec.graph());
        assert_eq!(roots.len(), 1);
        assert_eq!(leaves.len(), 1);
    }

    #[test]
    fn series_parallel_workflows_are_connected_dags() {
        for seed in 0..4 {
            let spec = series_parallel_workflow(3, seed);
            assert!(spec.ensure_acyclic().is_ok());
            assert!(spec.task_count() >= 3);
            let roots = wolves_graph::algo::roots(spec.graph());
            assert_eq!(roots.len(), 1, "single entry point");
        }
    }

    #[test]
    fn sample_tasks_returns_distinct_tasks() {
        let spec = pipeline_workflow(2, 2, 2, 9);
        let sample = sample_tasks(&spec, 5, 3);
        assert_eq!(sample.len(), 5);
        let unique: std::collections::BTreeSet<_> = sample.iter().collect();
        assert_eq!(unique.len(), 5);
        assert_eq!(sample_tasks(&spec, 5, 3), sample, "deterministic");
        assert_eq!(sample_tasks(&spec, 100, 3).len(), spec.task_count());
    }
}
