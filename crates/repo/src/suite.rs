//! The named workload suite shared by the experiment harness and the
//! integration tests, so that every number in `EXPERIMENTS.md` comes from a
//! reproducible instance.

use wolves_workflow::{WorkflowSpec, WorkflowView};

use crate::generate::{layered_workflow, pipeline_workflow, sample_tasks, LayeredConfig};
use crate::views::{auto_view, expert_view, random_partition_view, topological_block_view};

/// The family a case belongs to, mirroring the paper's workload description.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaseKind {
    /// Views defined by (synthetic) expert users.
    Expert,
    /// Views constructed automatically from relevant tasks (Biton et al.).
    Auto,
    /// Coarse topological-block views.
    Blocks,
    /// Random partitions (stress baseline).
    Random,
}

impl CaseKind {
    /// Display label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            CaseKind::Expert => "expert",
            CaseKind::Auto => "auto",
            CaseKind::Blocks => "blocks",
            CaseKind::Random => "random",
        }
    }
}

/// One workload instance: a workflow and a (possibly unsound) view over it.
#[derive(Debug)]
pub struct Case {
    /// Short, unique case name (used in experiment output).
    pub name: String,
    /// Workload family.
    pub kind: CaseKind,
    /// The workflow specification.
    pub spec: WorkflowSpec,
    /// The view to validate / correct.
    pub view: WorkflowView,
}

/// Builds the standard suite used by experiments E3–E6: for each seed, one
/// workflow of each generator shape with one expert view, one automatic
/// view, one block view and one random partition.
#[must_use]
pub fn standard_suite(seeds: std::ops::Range<u64>) -> Vec<Case> {
    let mut cases = Vec::new();
    for seed in seeds {
        let layered = layered_workflow(&LayeredConfig::default(), seed);
        let pipeline = pipeline_workflow(2, 3, 2, seed);
        for (shape, spec) in [("layered", layered), ("pipeline", pipeline)] {
            let expert =
                expert_view(&spec, 4, 0.25, seed, "expert").expect("expert view is a partition");
            cases.push(Case {
                name: format!("{shape}-{seed}-expert"),
                kind: CaseKind::Expert,
                spec: spec.clone(),
                view: expert,
            });
            let relevant = sample_tasks(&spec, 4, seed.wrapping_mul(31).wrapping_add(1));
            let auto = auto_view(&spec, &relevant, "auto").expect("auto view is a partition");
            cases.push(Case {
                name: format!("{shape}-{seed}-auto"),
                kind: CaseKind::Auto,
                spec: spec.clone(),
                view: auto,
            });
            let blocks =
                topological_block_view(&spec, 4, "blocks").expect("block view is a partition");
            cases.push(Case {
                name: format!("{shape}-{seed}-blocks"),
                kind: CaseKind::Blocks,
                spec: spec.clone(),
                view: blocks,
            });
            let random = random_partition_view(&spec, spec.task_count() / 4 + 1, seed, "random")
                .expect("random view is a partition");
            cases.push(Case {
                name: format!("{shape}-{seed}-random"),
                kind: CaseKind::Random,
                spec,
                view: random,
            });
        }
    }
    cases
}

#[cfg(test)]
mod tests {
    use super::*;
    use wolves_core::validate::validate;

    #[test]
    fn suite_produces_four_cases_per_shape_and_seed() {
        let cases = standard_suite(0..2);
        assert_eq!(cases.len(), 2 * 2 * 4);
        let names: std::collections::BTreeSet<&str> =
            cases.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names.len(), cases.len(), "case names are unique");
    }

    #[test]
    fn every_case_view_is_a_valid_partition() {
        for case in standard_suite(0..2) {
            assert!(
                case.view.validate_against(&case.spec).is_ok(),
                "case {} has a broken view",
                case.name
            );
        }
    }

    #[test]
    fn the_suite_contains_unsound_views_to_correct() {
        let cases = standard_suite(0..3);
        let unsound = cases
            .iter()
            .filter(|c| !validate(&c.spec, &c.view).is_sound())
            .count();
        assert!(
            unsound >= cases.len() / 3,
            "expected a healthy share of unsound views, got {unsound}/{}",
            cases.len()
        );
    }
}
