//! View generators.
//!
//! The paper evaluates corrections on two families of views: views defined
//! manually by expert users, and views constructed automatically from a set
//! of tasks the user cares about (Biton et al., ICDE 2008). Both families
//! contain unsound views in practice, which is the motivation for WOLVES.
//! This module synthesises both, plus two baselines (topological blocks and
//! random partitions) with tunable granularity.

use std::collections::{BTreeMap, BTreeSet};

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use wolves_workflow::{TaskId, WorkflowError, WorkflowSpec, WorkflowView};

/// Groups the tasks of a topological order into consecutive blocks of
/// `block_size`. Blocks frequently straddle parallel branches, which makes
/// many of them unsound — a good stand-in for carelessly drawn user views.
///
/// # Errors
/// Propagates view-construction errors (cyclic specifications).
pub fn topological_block_view(
    spec: &WorkflowSpec,
    block_size: usize,
    name: &str,
) -> Result<WorkflowView, WorkflowError> {
    let order = spec.topological_order()?;
    let block_size = block_size.max(1);
    let groups: Vec<(String, Vec<TaskId>)> = order
        .chunks(block_size)
        .enumerate()
        .map(|(i, chunk)| (format!("block-{i}"), chunk.to_vec()))
        .collect();
    WorkflowView::from_groups(spec, name, groups)
}

/// Assigns every task to one of `groups` composites uniformly at random.
/// Random partitions are almost always unsound and exercise the correctors
/// on worst-case-ish composites.
///
/// # Errors
/// Propagates view-construction errors.
pub fn random_partition_view(
    spec: &WorkflowSpec,
    groups: usize,
    seed: u64,
    name: &str,
) -> Result<WorkflowView, WorkflowError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let groups = groups.clamp(1, spec.task_count().max(1));
    let mut buckets: Vec<Vec<TaskId>> = vec![Vec::new(); groups];
    let mut tasks: Vec<TaskId> = spec.task_ids().collect();
    tasks.shuffle(&mut rng);
    // guarantee no bucket is empty by dealing the first `groups` tasks round
    // robin, then assigning the rest randomly
    for (i, task) in tasks.iter().enumerate() {
        if i < groups {
            buckets[i].push(*task);
        } else {
            buckets[rng.gen_range(0..groups)].push(*task);
        }
    }
    let groups = buckets
        .into_iter()
        .enumerate()
        .map(|(i, members)| (format!("random-{i}"), members))
        .collect();
    WorkflowView::from_groups(spec, name, groups)
}

/// A structure-aware "expert" view: groups are grown along data
/// dependencies starting from seed tasks, so most composites follow the
/// dataflow; a configurable fraction of tasks is then swapped between groups
/// to model the grouping mistakes observed in real repositories.
///
/// `target_group_size` controls granularity, `error_rate` the fraction of
/// tasks moved to a random other group (0.0 produces mostly sound views).
///
/// # Errors
/// Propagates view-construction errors.
pub fn expert_view(
    spec: &WorkflowSpec,
    target_group_size: usize,
    error_rate: f64,
    seed: u64,
    name: &str,
) -> Result<WorkflowView, WorkflowError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let target = target_group_size.max(1);
    let order = spec.topological_order()?;
    let mut assigned: BTreeMap<TaskId, usize> = BTreeMap::new();
    let mut groups: Vec<Vec<TaskId>> = Vec::new();
    // grow groups along the dataflow: walk the topological order and attach
    // each task to the group of one of its predecessors if that group still
    // has room, otherwise start a new group
    for &task in &order {
        let preferred = spec
            .predecessors(task)
            .filter_map(|p| assigned.get(&p).copied())
            .find(|&g| groups[g].len() < target);
        let group = match preferred {
            Some(g) => g,
            None => {
                groups.push(Vec::new());
                groups.len() - 1
            }
        };
        groups[group].push(task);
        assigned.insert(task, group);
    }
    // inject grouping errors: move a fraction of tasks into a random other
    // group (this is what produces unsound composites)
    if groups.len() > 1 && error_rate > 0.0 {
        let tasks: Vec<TaskId> = spec.task_ids().collect();
        for task in tasks {
            if !rng.gen_bool(error_rate.clamp(0.0, 1.0)) {
                continue;
            }
            let current = assigned[&task];
            if groups[current].len() <= 1 {
                continue; // never empty a group
            }
            let target_group = rng.gen_range(0..groups.len());
            if target_group == current {
                continue;
            }
            groups[current].retain(|&t| t != task);
            groups[target_group].push(task);
            assigned.insert(task, target_group);
        }
    }
    let groups = groups
        .into_iter()
        .filter(|g| !g.is_empty())
        .enumerate()
        .map(|(i, members)| (format!("expert-{i}"), members))
        .collect();
    WorkflowView::from_groups(spec, name, groups)
}

/// Automatic view construction in the spirit of Biton et al. (ICDE 2008):
/// given a set of *relevant* tasks, every relevant task becomes its own
/// composite and the remaining tasks are grouped by their *relevance
/// signature* — which relevant tasks they can reach and which can reach
/// them. Tasks that are indistinguishable with respect to the relevant set
/// end up in the same composite.
///
/// # Errors
/// Propagates view-construction errors.
pub fn auto_view(
    spec: &WorkflowSpec,
    relevant: &[TaskId],
    name: &str,
) -> Result<WorkflowView, WorkflowError> {
    let relevant_set: BTreeSet<TaskId> = relevant.iter().copied().collect();
    let reach = spec.reachability();
    let mut signature_groups: BTreeMap<(Vec<TaskId>, Vec<TaskId>), Vec<TaskId>> = BTreeMap::new();
    let mut groups: Vec<(String, Vec<TaskId>)> = Vec::new();
    for task in spec.task_ids() {
        if relevant_set.contains(&task) {
            let label = spec
                .task(task)
                .map(|t| t.name.clone())
                .unwrap_or_else(|_| task.to_string());
            groups.push((format!("relevant:{label}"), vec![task]));
            continue;
        }
        let reaches: Vec<TaskId> = relevant
            .iter()
            .copied()
            .filter(|&r| reach.reachable(task, r))
            .collect();
        let reached_by: Vec<TaskId> = relevant
            .iter()
            .copied()
            .filter(|&r| reach.reachable(r, task))
            .collect();
        signature_groups
            .entry((reaches, reached_by))
            .or_default()
            .push(task);
    }
    for (i, (_, members)) in signature_groups.into_iter().enumerate() {
        groups.push((format!("context-{i}"), members));
    }
    WorkflowView::from_groups(spec, name, groups)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{layered_workflow, pipeline_workflow, sample_tasks, LayeredConfig};
    use wolves_core::validate::validate;

    fn spec() -> WorkflowSpec {
        layered_workflow(&LayeredConfig::default(), 11)
    }

    #[test]
    fn topological_blocks_partition_the_workflow() {
        let spec = spec();
        let view = topological_block_view(&spec, 3, "blocks").unwrap();
        assert!(view.validate_against(&spec).is_ok());
        let expected = spec.task_count().div_ceil(3);
        assert_eq!(view.composite_count(), expected);
    }

    #[test]
    fn random_partitions_have_no_empty_groups() {
        let spec = spec();
        for seed in 0..5 {
            let view = random_partition_view(&spec, 4, seed, "random").unwrap();
            assert_eq!(view.composite_count(), 4);
            assert!(view.validate_against(&spec).is_ok());
            for (_, composite) in view.composites() {
                assert!(!composite.is_empty());
            }
        }
    }

    #[test]
    fn expert_views_without_errors_are_mostly_sound() {
        let spec = pipeline_workflow(2, 2, 3, 3);
        let clean = expert_view(&spec, 3, 0.0, 1, "clean").unwrap();
        let report = validate(&spec, &clean);
        // dataflow-following groups over a pipeline are sound
        assert!(
            report.is_sound(),
            "unsound: {:?}",
            report.unsound_composites()
        );
    }

    #[test]
    fn expert_views_with_errors_become_unsound() {
        let spec = spec();
        let mut any_unsound = false;
        for seed in 0..6 {
            let noisy = expert_view(&spec, 4, 0.4, seed, "noisy").unwrap();
            assert!(noisy.validate_against(&spec).is_ok());
            if !validate(&spec, &noisy).is_sound() {
                any_unsound = true;
            }
        }
        assert!(
            any_unsound,
            "40% grouping errors must break soundness somewhere"
        );
    }

    #[test]
    fn auto_views_keep_relevant_tasks_as_singletons() {
        let spec = spec();
        let relevant = sample_tasks(&spec, 3, 7);
        let view = auto_view(&spec, &relevant, "auto").unwrap();
        assert!(view.validate_against(&spec).is_ok());
        for &task in &relevant {
            let composite = view.composite_of(task).unwrap();
            assert!(view.composite(composite).unwrap().is_singleton());
        }
        assert!(view.composite_count() >= relevant.len());
    }

    #[test]
    fn auto_views_group_tasks_with_identical_signatures() {
        // diamond: s -> a, s -> b, a -> t, b -> t; with only s and t
        // relevant, a and b share a signature and must be grouped together
        let mut builder = wolves_workflow::WorkflowBuilder::new("diamond");
        let s = builder.task("s");
        let a = builder.task("a");
        let b = builder.task("b");
        let t = builder.task("t");
        builder.edge(s, a).unwrap();
        builder.edge(s, b).unwrap();
        builder.edge(a, t).unwrap();
        builder.edge(b, t).unwrap();
        let spec = builder.build().unwrap();
        let view = auto_view(&spec, &[s, t], "auto").unwrap();
        assert_eq!(view.composite_count(), 3);
        assert_eq!(view.composite_of(a), view.composite_of(b));
    }
}
