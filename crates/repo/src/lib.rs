//! # wolves-repo
//!
//! Workload generation for the WOLVES experiments.
//!
//! The paper evaluates WOLVES on workflows from real repositories (Kepler,
//! myExperiment.org) with views defined by expert users or constructed
//! automatically by the tool of Biton et al. Neither resource is available
//! offline, so this crate provides:
//!
//! * [`fixtures`] — faithful reconstructions of the paper's running
//!   examples: the Figure 1 phylogenomics workflow with its unsound view and
//!   the Figure 3 unsound composite task.
//! * [`generate`] — synthetic workflow generators in the shapes that
//!   dominate scientific-workflow repositories: layered DAGs, branching
//!   pipelines and series-parallel graphs.
//! * [`views`] — view generators: structure-aware "expert" views,
//!   automatically constructed views driven by a set of user-relevant tasks
//!   (in the spirit of Biton et al.), topological-block views and random
//!   partitions, all with controllable granularity.
//! * [`suite`] — the named workload suite used by the experiment harness
//!   (`wolves-bench`) so every table in `EXPERIMENTS.md` is regenerated from
//!   the same instances.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fixtures;
pub mod generate;
pub mod suite;
pub mod views;

pub use fixtures::{figure1, figure3, Figure1, Figure3};
pub use generate::{layered_workflow, pipeline_workflow, series_parallel_workflow, LayeredConfig};
pub use suite::{standard_suite, Case};
pub use views::{auto_view, expert_view, random_partition_view, topological_block_view};
