//! The paper's running examples as ready-made fixtures.

use std::collections::BTreeSet;

use wolves_workflow::builder::ViewBuilder;
use wolves_workflow::{TaskId, WorkflowBuilder, WorkflowSpec, WorkflowView};

/// The Figure 1 fixture: the phylogenomic-inference workflow (12 atomic
/// tasks) and the unsound view of Figure 1(b) (7 composite tasks).
#[derive(Debug, Clone)]
pub struct Figure1 {
    /// The workflow specification of Figure 1(a).
    pub spec: WorkflowSpec,
    /// The workflow view of Figure 1(b); composite task "16" is unsound.
    pub view: WorkflowView,
    /// Task ids in paper numbering order: `tasks[0]` is task (1) "Select
    /// entries", …, `tasks[11]` is task (12) "Display tree".
    pub tasks: Vec<TaskId>,
}

impl Figure1 {
    /// Task id by paper number (1-based, 1..=12).
    #[must_use]
    pub fn task(&self, paper_number: usize) -> TaskId {
        self.tasks[paper_number - 1]
    }
}

/// Builds the Figure 1 fixture.
///
/// The workflow models the paper's description: entries are selected from a
/// database (1) and split (2) into annotations (3) and sequences (6); the
/// annotations are curated (4) and formatted (5); an alignment is created
/// (7) and formatted (8); other annotations are considered (9) and processed
/// (10); the phylogenomic tree is built (11) and displayed (12).
///
/// The view groups: 13 = {1, 2}, 14 = {3}, 15 = {6}, 16 = {4, 7},
/// 17 = {5}, 18 = {8}, 19 = {9, 10, 11, 12}. Composite 16 is unsound
/// (there is no path from task 4 to task 7), which creates the spurious
/// view-level dependency 14 → 18 discussed in the introduction.
#[must_use]
pub fn figure1() -> Figure1 {
    let mut b = WorkflowBuilder::new("phylogenomic-inference");
    let names = [
        "Select entries from DB",         // 1
        "Split entries",                  // 2
        "Extract annotations",            // 3
        "Curate annotations",             // 4
        "Format annotations",             // 5
        "Extract sequences",              // 6
        "Create alignment",               // 7
        "Format alignment",               // 8
        "Check additional annotations",   // 9
        "Process additional annotations", // 10
        "Build phylo tree",               // 11
        "Display tree",                   // 12
    ];
    let tasks: Vec<TaskId> = names.iter().map(|n| b.task(*n)).collect();
    for (from, to) in [
        (1, 2),
        (2, 3),
        (2, 6),
        (3, 4),
        (4, 5),
        (5, 11),
        (6, 7),
        (7, 8),
        (8, 11),
        (9, 10),
        (10, 11),
        (11, 12),
    ] {
        b.edge(tasks[from - 1], tasks[to - 1]).unwrap();
    }
    let spec = b.build().expect("figure 1 workflow is a DAG");
    let view = ViewBuilder::new(&spec, "figure-1b")
        .group("Retrieve entries (13)", vec![tasks[0], tasks[1]])
        .group("Annotations (14)", vec![tasks[2]])
        .group("Sequences (15)", vec![tasks[5]])
        .group("Curate & align (16)", vec![tasks[3], tasks[6]])
        .group("Format annotations (17)", vec![tasks[4]])
        .group("Format alignment (18)", vec![tasks[7]])
        .group(
            "Build Phylo Tree (19)",
            vec![tasks[8], tasks[9], tasks[10], tasks[11]],
        )
        .build()
        .expect("figure 1(b) view is a partition");
    Figure1 { spec, view, tasks }
}

/// The Figure 3 fixture: one unsound composite task on which the weakly
/// local optimal corrector produces 8 parts while the strongly local optimal
/// (and the optimal) corrector produces 5.
#[derive(Debug, Clone)]
pub struct Figure3 {
    /// Workflow containing the composite's tasks plus an external source and
    /// sink providing the boundary dataflow.
    pub spec: WorkflowSpec,
    /// The unsound composite task's members (tasks a–m, 12 of them).
    pub members: BTreeSet<TaskId>,
    /// A three-composite view: {source}, the unsound composite, {sink}.
    pub view: WorkflowView,
    /// The member task named `name` ("a" … "m").
    pub tasks: Vec<(String, TaskId)>,
}

impl Figure3 {
    /// Looks up a member task by its single-letter name.
    #[must_use]
    pub fn task(&self, name: &str) -> TaskId {
        self.tasks
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, id)| *id)
            .expect("figure 3 task name")
    }
}

/// Builds the Figure 3 fixture.
///
/// The 12 member tasks form four independent two-task chains (a→b, e→h,
/// i→j, k→m) plus the four-task crossing component {c, d, f, g} in which no
/// two tasks are pairwise combinable although the whole component is sound —
/// exactly the situation that separates weak from strong local optimality in
/// the paper's Figure 3.
#[must_use]
pub fn figure3() -> Figure3 {
    let mut builder = WorkflowBuilder::new("figure-3");
    let source = builder.task("upstream source");
    let sink = builder.task("downstream sink");
    let names = ["a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k", "m"];
    let ids: Vec<TaskId> = names.iter().map(|n| builder.task(*n)).collect();
    let idx = |name: &str| ids[names.iter().position(|&n| n == name).unwrap()];
    for (x, y) in [("a", "b"), ("e", "h"), ("i", "j"), ("k", "m")] {
        builder.edge(source, idx(x)).unwrap();
        builder.edge(idx(x), idx(y)).unwrap();
        builder.edge(idx(y), sink).unwrap();
    }
    builder.edge(source, idx("c")).unwrap();
    builder.edge(source, idx("f")).unwrap();
    builder.edge(idx("c"), idx("d")).unwrap();
    builder.edge(idx("c"), idx("g")).unwrap();
    builder.edge(idx("f"), idx("d")).unwrap();
    builder.edge(idx("f"), idx("g")).unwrap();
    builder.edge(idx("d"), sink).unwrap();
    builder.edge(idx("g"), sink).unwrap();
    let spec = builder.build().expect("figure 3 workflow is a DAG");
    let view = ViewBuilder::new(&spec, "figure-3")
        .group("Upstream", vec![source])
        .group("Unsound composite", ids.clone())
        .group("Downstream", vec![sink])
        .build()
        .expect("figure 3 view is a partition");
    let members: BTreeSet<TaskId> = ids.iter().copied().collect();
    let tasks = names.iter().map(|n| ((*n).to_owned(), idx(n))).collect();
    Figure3 {
        spec,
        members,
        view,
        tasks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wolves_core::correct::{Corrector, OptimalCorrector, StrongCorrector, WeakCorrector};
    use wolves_core::validate::{validate, validate_by_definition};

    #[test]
    fn figure1_matches_the_paper_narrative() {
        let fixture = figure1();
        assert_eq!(fixture.spec.task_count(), 12);
        assert_eq!(fixture.view.composite_count(), 7);
        let report = validate(&fixture.spec, &fixture.view);
        assert!(!report.is_sound());
        let unsound = report.unsound_composites();
        assert_eq!(unsound.len(), 1);
        assert!(fixture
            .view
            .composite(unsound[0])
            .unwrap()
            .name
            .contains("16"));
        // the spurious provenance dependency 14 -> 18 exists at the view level
        let definition = validate_by_definition(&fixture.spec, &fixture.view);
        let c14 = fixture.view.composite_of(fixture.task(3)).unwrap();
        let c18 = fixture.view.composite_of(fixture.task(8)).unwrap();
        assert!(definition
            .spurious
            .iter()
            .any(|m| m.from == c14 && m.to == c18));
        // but there is no workflow path from task 3 to task 8
        assert!(!fixture.spec.reaches(fixture.task(3), fixture.task(8)));
    }

    #[test]
    fn figure3_separates_weak_from_strong() {
        let fixture = figure3();
        let weak = WeakCorrector::new()
            .split(&fixture.spec, &fixture.members)
            .unwrap();
        let strong = StrongCorrector::new()
            .split(&fixture.spec, &fixture.members)
            .unwrap();
        let optimal = OptimalCorrector::new()
            .split(&fixture.spec, &fixture.members)
            .unwrap();
        assert_eq!(weak.part_count(), 8);
        assert_eq!(strong.part_count(), 5);
        assert_eq!(optimal.part_count(), 5);
    }

    #[test]
    fn figure3_view_flags_only_the_composite() {
        let fixture = figure3();
        let report = validate(&fixture.spec, &fixture.view);
        assert_eq!(report.unsound_composites().len(), 1);
        assert_eq!(report.composite_count(), 3);
    }

    #[test]
    fn task_lookup_helpers() {
        let f1 = figure1();
        assert_eq!(f1.spec.task(f1.task(11)).unwrap().name, "Build phylo tree");
        let f3 = figure3();
        assert_ne!(f3.task("c"), f3.task("d"));
        assert_eq!(f3.members.len(), 12);
    }
}
