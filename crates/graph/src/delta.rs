//! Delta classification and dirty-row tracking for incremental reachability.
//!
//! Spec edits arrive as single-edge / single-node deltas. Instead of
//! rebuilding the [`crate::ReachMatrix`] from scratch on every edit, each
//! delta is classified into one of four maintenance classes
//! ([`DeltaClass`]), and the maintenance routine reports exactly which
//! matrix rows it touched as a [`DirtyRows`] bitset. Downstream consumers
//! (the definition-level validator, the serving layer's verdict caches) use
//! the dirty set to re-check only what the edit could have changed.

use crate::bitset::FixedBitSet;

/// How a single spec delta was (or must be) applied to a reachability
/// matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaClass {
    /// The delta only *adds* reachability consistent with the existing
    /// component structure (edge insert that creates no new cycle, node
    /// append): handled by in-place row-OR propagation over the affected
    /// ancestor rows. O(ancestors × row words).
    MonotoneSafe,
    /// The delta is confined to one (new) strongly connected component:
    /// a cycle-creating edge insert merges the condensation rows on the new
    /// cycle in place — only the touched rows are re-derived, no Tarjan
    /// re-run over the full graph. O(components × row words).
    LocalRebuild,
    /// The delta shrinks reachability (edge/node removal) but was absorbed
    /// in place: SCC splits are detected on the deleted edge's component
    /// only, and exactly the rows that could reach the deleted edge's source
    /// component are re-derived in topological order. Component indices stay
    /// stable (splits append fresh indices; emptied components become dead
    /// slots). O(affected × (deg + row words)).
    Decremental,
    /// The delta could not be applied in place: the matrix is discarded and
    /// rebuilt from scratch on next use. O(V + E + V·E/64).
    Structural,
}

impl DeltaClass {
    /// Stable lowercase name (used on the service wire and in bench JSON).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DeltaClass::MonotoneSafe => "monotone-safe",
            DeltaClass::LocalRebuild => "local-rebuild",
            DeltaClass::Decremental => "decremental",
            DeltaClass::Structural => "structural",
        }
    }
}

impl std::fmt::Display for DeltaClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The set of reachability-matrix rows (component indices) whose contents
/// changed under one or more deltas.
///
/// Component indices are stable across [`DeltaClass::MonotoneSafe`],
/// [`DeltaClass::LocalRebuild`] and [`DeltaClass::Decremental`] maintenance
/// (decremental splits only *append* fresh indices and never reuse old
/// ones), so dirty sets from consecutive deltas can be unioned. A
/// [`DeltaClass::Structural`] delta renumbers components wholesale; it is
/// represented by the `all` state, which absorbs everything in a union.
#[derive(Debug, Clone)]
pub struct DirtyRows {
    bits: FixedBitSet,
    all: bool,
}

impl DirtyRows {
    /// A clean set over `comp_count` rows (nothing dirty).
    #[must_use]
    pub fn clean(comp_count: usize) -> Self {
        DirtyRows {
            bits: FixedBitSet::with_capacity(comp_count),
            all: false,
        }
    }

    /// The "everything dirty" set — row identities are no longer meaningful
    /// (structural rebuild).
    #[must_use]
    pub fn all() -> Self {
        DirtyRows {
            bits: FixedBitSet::with_capacity(0),
            all: true,
        }
    }

    /// Marks one row dirty, growing the capacity as needed.
    pub fn mark(&mut self, comp: usize) {
        if self.all {
            return;
        }
        if comp >= self.bits.capacity() {
            self.bits.grow(comp + 1);
        }
        self.bits.insert(comp);
    }

    /// Collapses the set to "everything dirty".
    pub fn mark_all(&mut self) {
        self.all = true;
    }

    /// `true` when every row must be treated as dirty.
    #[must_use]
    pub fn is_all(&self) -> bool {
        self.all
    }

    /// `true` when no row is dirty.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        !self.all && self.bits.is_empty()
    }

    /// `true` if row `comp` is dirty (always `true` in the `all` state).
    #[must_use]
    pub fn contains(&self, comp: usize) -> bool {
        self.all || (comp < self.bits.capacity() && self.bits.contains(comp))
    }

    /// Number of dirty rows, or `None` in the `all` state.
    #[must_use]
    pub fn count(&self) -> Option<usize> {
        if self.all {
            None
        } else {
            Some(self.bits.count_ones())
        }
    }

    /// Iterates over the dirty row indices (empty iterator in the `all`
    /// state — callers must check [`DirtyRows::is_all`] first).
    pub fn ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.bits.ones()
    }

    /// Unions another dirty set into this one (`all` absorbs).
    pub fn union(&mut self, other: &DirtyRows) {
        if self.all {
            return;
        }
        if other.all {
            self.all = true;
            return;
        }
        if other.bits.capacity() > self.bits.capacity() {
            self.bits.grow(other.bits.capacity());
        }
        for bit in other.bits.ones() {
            self.bits.insert(bit);
        }
    }
}

/// Result of applying one delta to a [`crate::ReachMatrix`] in place.
#[derive(Debug, Clone)]
pub struct DeltaOutcome {
    /// How the delta was applied.
    pub class: DeltaClass,
    /// The rows whose contents (or cyclicity) changed.
    pub dirty: DirtyRows,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_and_contains_grow_on_demand() {
        let mut d = DirtyRows::clean(4);
        assert!(d.is_clean());
        d.mark(2);
        d.mark(100);
        assert!(d.contains(2));
        assert!(d.contains(100));
        assert!(!d.contains(3));
        assert!(!d.contains(5000));
        assert_eq!(d.count(), Some(2));
        assert_eq!(d.ones().collect::<Vec<_>>(), vec![2, 100]);
    }

    #[test]
    fn all_state_absorbs_everything() {
        let mut d = DirtyRows::all();
        assert!(d.is_all());
        assert!(d.contains(12345));
        assert_eq!(d.count(), None);
        d.mark(3); // no-op
        assert!(d.is_all());

        let mut clean = DirtyRows::clean(8);
        clean.mark(1);
        clean.union(&DirtyRows::all());
        assert!(clean.is_all());
    }

    #[test]
    fn union_merges_bits_across_capacities() {
        let mut a = DirtyRows::clean(4);
        a.mark(1);
        let mut b = DirtyRows::clean(100);
        b.mark(90);
        a.union(&b);
        assert!(a.contains(1));
        assert!(a.contains(90));
        assert_eq!(a.count(), Some(2));
    }

    #[test]
    fn class_names_are_stable() {
        assert_eq!(DeltaClass::MonotoneSafe.name(), "monotone-safe");
        assert_eq!(DeltaClass::LocalRebuild.name(), "local-rebuild");
        assert_eq!(DeltaClass::Decremental.name(), "decremental");
        assert_eq!(DeltaClass::Structural.name(), "structural");
        assert_eq!(DeltaClass::Structural.to_string(), "structural");
    }
}
