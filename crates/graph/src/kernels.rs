//! Blocked (SIMD-width) word kernels for bitset rows.
//!
//! Every hot loop in the reachability pipeline — row unions during closure
//! propagation, mask intersections in the definition-level validator,
//! popcounts for descendant counting — walks flat `&[u64]` slices. The
//! kernels here process those slices in explicitly unrolled 4-word blocks
//! (`u64x4`-style, 256 bits per step): the blocks have no loop-carried
//! dependency chains, so the compiler autovectorises them to SSE2/AVX2 (or
//! NEON) loads without any `unsafe`, intrinsics or external SIMD crates.
//!
//! [`ReachMatrix`](crate::ReachMatrix) pads its row stride to a multiple of
//! [`LANES`] via [`pad_words`] so the remainder loops below never run on the
//! matrix paths; the kernels still handle arbitrary lengths so
//! [`FixedBitSet`](crate::FixedBitSet) and unpadded masks can share them.

/// Words per block: 4 × 64 bits = one 256-bit vector register.
pub const LANES: usize = 4;

/// Rounds a word count up to the next multiple of [`LANES`].
///
/// Row buffers padded to this width let every kernel below run entirely in
/// whole blocks (the pad words are always zero and never observed by
/// bit-indexed accessors).
#[must_use]
pub const fn pad_words(words: usize) -> usize {
    words.div_ceil(LANES) * LANES
}

/// `dst |= src` over the common prefix; returns `true` iff any word of
/// `dst` changed. The change test is folded into the same unrolled blocks
/// (one XOR accumulator) instead of a second pass.
pub fn or_into(dst: &mut [u64], src: &[u64]) -> bool {
    let n = dst.len().min(src.len());
    let split = n - n % LANES;
    let (dst_blocks, dst_tail) = dst[..n].split_at_mut(split);
    let (src_blocks, src_tail) = src[..n].split_at(split);
    let mut delta = 0u64;
    for (d, s) in dst_blocks
        .chunks_exact_mut(LANES)
        .zip(src_blocks.chunks_exact(LANES))
    {
        let m0 = d[0] | s[0];
        let m1 = d[1] | s[1];
        let m2 = d[2] | s[2];
        let m3 = d[3] | s[3];
        delta |= (m0 ^ d[0]) | (m1 ^ d[1]) | (m2 ^ d[2]) | (m3 ^ d[3]);
        d[0] = m0;
        d[1] = m1;
        d[2] = m2;
        d[3] = m3;
    }
    for (d, s) in dst_tail.iter_mut().zip(src_tail) {
        let merged = *d | *s;
        delta |= merged ^ *d;
        *d = merged;
    }
    delta != 0
}

/// `dst &= src` over the common prefix.
pub fn and_into(dst: &mut [u64], src: &[u64]) {
    let n = dst.len().min(src.len());
    let split = n - n % LANES;
    let (dst_blocks, dst_tail) = dst[..n].split_at_mut(split);
    let (src_blocks, src_tail) = src[..n].split_at(split);
    for (d, s) in dst_blocks
        .chunks_exact_mut(LANES)
        .zip(src_blocks.chunks_exact(LANES))
    {
        d[0] &= s[0];
        d[1] &= s[1];
        d[2] &= s[2];
        d[3] &= s[3];
    }
    for (d, s) in dst_tail.iter_mut().zip(src_tail) {
        *d &= *s;
    }
}

/// `dst &= !src` over the common prefix (set difference).
pub fn andnot_into(dst: &mut [u64], src: &[u64]) {
    let n = dst.len().min(src.len());
    let split = n - n % LANES;
    let (dst_blocks, dst_tail) = dst[..n].split_at_mut(split);
    let (src_blocks, src_tail) = src[..n].split_at(split);
    for (d, s) in dst_blocks
        .chunks_exact_mut(LANES)
        .zip(src_blocks.chunks_exact(LANES))
    {
        d[0] &= !s[0];
        d[1] &= !s[1];
        d[2] &= !s[2];
        d[3] &= !s[3];
    }
    for (d, s) in dst_tail.iter_mut().zip(src_tail) {
        *d &= !*s;
    }
}

/// Returns `true` iff `a & b` has any set bit over the common prefix.
/// This is the mask-intersect test at the heart of `validate_by_definition`.
#[must_use]
pub fn and_any(a: &[u64], b: &[u64]) -> bool {
    let n = a.len().min(b.len());
    let split = n - n % LANES;
    for (x, y) in a[..split]
        .chunks_exact(LANES)
        .zip(b[..split].chunks_exact(LANES))
    {
        if ((x[0] & y[0]) | (x[1] & y[1]) | (x[2] & y[2]) | (x[3] & y[3])) != 0 {
            return true;
        }
    }
    a[split..n]
        .iter()
        .zip(&b[split..n])
        .any(|(x, y)| x & y != 0)
}

/// Returns `true` iff `a & !b` has any set bit over the common prefix
/// (i.e. `a` is *not* a subset of `b` on that prefix).
#[must_use]
pub fn andnot_any(a: &[u64], b: &[u64]) -> bool {
    let n = a.len().min(b.len());
    let split = n - n % LANES;
    for (x, y) in a[..split]
        .chunks_exact(LANES)
        .zip(b[..split].chunks_exact(LANES))
    {
        if ((x[0] & !y[0]) | (x[1] & !y[1]) | (x[2] & !y[2]) | (x[3] & !y[3])) != 0 {
            return true;
        }
    }
    a[split..n]
        .iter()
        .zip(&b[split..n])
        .any(|(x, y)| x & !y != 0)
}

/// Total popcount over a word slice.
#[must_use]
pub fn popcount(words: &[u64]) -> usize {
    let split = words.len() - words.len() % LANES;
    let mut total = 0usize;
    for w in words[..split].chunks_exact(LANES) {
        total += (w[0].count_ones() + w[1].count_ones() + w[2].count_ones() + w[3].count_ones())
            as usize;
    }
    total
        + words[split..]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum::<usize>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pad_words_rounds_up_to_blocks() {
        assert_eq!(pad_words(0), 0);
        assert_eq!(pad_words(1), 4);
        assert_eq!(pad_words(4), 4);
        assert_eq!(pad_words(5), 8);
        assert_eq!(pad_words(31), 32);
    }

    #[test]
    fn or_into_reports_change_exactly() {
        let mut dst = vec![0u64, 1, 2, 3, 4];
        let src = vec![0u64, 1, 2, 3, 4];
        assert!(!or_into(&mut dst, &src));
        let src2 = vec![8u64, 1, 2, 3, 4];
        assert!(or_into(&mut dst, &src2));
        assert_eq!(dst[0], 8);
        assert!(!or_into(&mut dst, &src2));
    }

    proptest! {
        #[test]
        fn prop_kernels_match_scalar(
            a in proptest::collection::vec(0u64..u64::MAX, 0..24),
            b in proptest::collection::vec(0u64..u64::MAX, 0..24),
        ) {
            let n = a.len().min(b.len());
            // or_into
            let mut got = a.clone();
            let changed = or_into(&mut got, &b);
            let mut want = a.clone();
            let mut want_changed = false;
            for (d, s) in want[..n].iter_mut().zip(&b[..n]) {
                let m = *d | *s;
                want_changed |= m != *d;
                *d = m;
            }
            prop_assert_eq!(&got, &want);
            prop_assert_eq!(changed, want_changed);
            // and_into / andnot_into
            let mut got = a.clone();
            and_into(&mut got, &b);
            let mut want = a.clone();
            for (d, s) in want[..n].iter_mut().zip(&b[..n]) { *d &= *s; }
            prop_assert_eq!(&got, &want);
            let mut got = a.clone();
            andnot_into(&mut got, &b);
            let mut want = a.clone();
            for (d, s) in want[..n].iter_mut().zip(&b[..n]) { *d &= !*s; }
            prop_assert_eq!(&got, &want);
            // predicates + popcount
            prop_assert_eq!(
                and_any(&a, &b),
                a[..n].iter().zip(&b[..n]).any(|(x, y)| x & y != 0)
            );
            prop_assert_eq!(
                andnot_any(&a, &b),
                a[..n].iter().zip(&b[..n]).any(|(x, y)| x & !y != 0)
            );
            prop_assert_eq!(
                popcount(&a),
                a.iter().map(|w| w.count_ones() as usize).sum::<usize>()
            );
        }
    }
}
