//! Frozen CSR (compressed sparse row) adjacency snapshots.
//!
//! [`DiGraph`] is built for mutation: neighbour iteration chases
//! `Vec<EdgeId>` → edge-slot indirection and filters tombstones on every
//! step. The build-time algorithms (Tarjan SCC, condensation, topological
//! sort, the reachability-matrix propagation) only ever *read* the graph, so
//! they run over a [`Csr`] snapshot instead: successors and predecessors of
//! each node are contiguous `&[NodeId]` slices, laid out once in two flat
//! arrays. Taking the snapshot is a single O(V + E) counting sort; every
//! neighbour access afterwards is a bounds-checked slice index with no
//! branching on tombstones.

use crate::bitset::FixedBitSet;
use crate::digraph::DiGraph;
use crate::id::NodeId;
use crate::traversal::Direction;

/// An immutable adjacency snapshot of a directed graph in CSR form.
///
/// Node ids are carried over verbatim from the source graph (including the
/// gaps left by removed nodes), so a `Csr` can be used interchangeably with
/// the `DiGraph` it was taken from. Parallel edges are preserved.
#[derive(Debug, Clone)]
pub struct Csr {
    /// `succ_offsets[i]..succ_offsets[i + 1]` indexes `succ_targets` for the
    /// successors of node `i`; `succ_offsets.len() == node_bound + 1`.
    succ_offsets: Vec<usize>,
    succ_targets: Vec<NodeId>,
    pred_offsets: Vec<usize>,
    pred_targets: Vec<NodeId>,
    live: Vec<bool>,
    node_count: usize,
}

impl Csr {
    /// Takes a CSR snapshot of `graph` in O(V + E).
    #[must_use]
    pub fn from_graph<N, E>(graph: &DiGraph<N, E>) -> Self {
        let bound = graph.node_bound();
        let mut live = vec![false; bound];
        for node in graph.node_ids() {
            live[node.index()] = true;
        }
        let mut succ_counts = vec![0usize; bound];
        let mut pred_counts = vec![0usize; bound];
        for (_, source, target, _) in graph.edges() {
            succ_counts[source.index()] += 1;
            pred_counts[target.index()] += 1;
        }
        let succ_offsets = prefix_sums(&succ_counts);
        let pred_offsets = prefix_sums(&pred_counts);
        let edge_count = graph.edge_count();
        let mut succ_targets = vec![NodeId::from_index(0); edge_count];
        let mut pred_targets = vec![NodeId::from_index(0); edge_count];
        let mut succ_fill = succ_offsets.clone();
        let mut pred_fill = pred_offsets.clone();
        for (_, source, target, _) in graph.edges() {
            succ_targets[succ_fill[source.index()]] = target;
            succ_fill[source.index()] += 1;
            pred_targets[pred_fill[target.index()]] = source;
            pred_fill[target.index()] += 1;
        }
        Csr {
            succ_offsets,
            succ_targets,
            pred_offsets,
            pred_targets,
            live,
            node_count: graph.node_count(),
        }
    }

    /// Builds a CSR over nodes `0..node_count` (all live) from a raw edge
    /// list of `(source, target)` index pairs. This is how the condensation
    /// is materialised directly in CSR form, without an intermediate
    /// [`DiGraph`].
    ///
    /// # Panics
    /// Panics if an edge endpoint is `>= node_count`.
    #[must_use]
    pub fn from_edge_list(node_count: usize, edges: &[(usize, usize)]) -> Self {
        let mut succ_counts = vec![0usize; node_count];
        let mut pred_counts = vec![0usize; node_count];
        for &(source, target) in edges {
            succ_counts[source] += 1;
            pred_counts[target] += 1;
        }
        let succ_offsets = prefix_sums(&succ_counts);
        let pred_offsets = prefix_sums(&pred_counts);
        let mut succ_targets = vec![NodeId::from_index(0); edges.len()];
        let mut pred_targets = vec![NodeId::from_index(0); edges.len()];
        let mut succ_fill = succ_offsets.clone();
        let mut pred_fill = pred_offsets.clone();
        for &(source, target) in edges {
            succ_targets[succ_fill[source]] = NodeId::from_index(target);
            succ_fill[source] += 1;
            pred_targets[pred_fill[target]] = NodeId::from_index(source);
            pred_fill[target] += 1;
        }
        Csr {
            succ_offsets,
            succ_targets,
            pred_offsets,
            pred_targets,
            live: vec![true; node_count],
            node_count,
        }
    }

    /// Upper bound (exclusive) on node indices, including tombstone gaps
    /// carried over from the source graph.
    #[must_use]
    pub fn node_bound(&self) -> usize {
        self.live.len()
    }

    /// Number of live nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of edges (parallel edges counted individually).
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.succ_targets.len()
    }

    /// Returns `true` if `node` was live in the snapshotted graph.
    #[must_use]
    pub fn is_live(&self, node: NodeId) -> bool {
        self.live.get(node.index()).copied().unwrap_or(false)
    }

    /// Iterates over the ids of all live nodes in ascending order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.live
            .iter()
            .enumerate()
            .filter(|(_, &alive)| alive)
            .map(|(i, _)| NodeId::from_index(i))
    }

    /// The successors of `node` as a contiguous slice (empty for unknown
    /// nodes).
    #[must_use]
    pub fn successors(&self, node: NodeId) -> &[NodeId] {
        self.slice(&self.succ_offsets, &self.succ_targets, node)
    }

    /// The predecessors of `node` as a contiguous slice (empty for unknown
    /// nodes).
    #[must_use]
    pub fn predecessors(&self, node: NodeId) -> &[NodeId] {
        self.slice(&self.pred_offsets, &self.pred_targets, node)
    }

    /// Neighbours of `node` in the given traversal direction.
    #[must_use]
    pub fn neighbours(&self, node: NodeId, direction: Direction) -> &[NodeId] {
        match direction {
            Direction::Forward => self.successors(node),
            Direction::Backward => self.predecessors(node),
        }
    }

    /// Out-degree of `node` (0 for unknown nodes).
    #[must_use]
    pub fn out_degree(&self, node: NodeId) -> usize {
        self.successors(node).len()
    }

    /// In-degree of `node` (0 for unknown nodes).
    #[must_use]
    pub fn in_degree(&self, node: NodeId) -> usize {
        self.predecessors(node).len()
    }

    /// Breadth-first traversal over the snapshot; visits each reachable node
    /// exactly once, start nodes included. Shares the BFS core with
    /// [`crate::traversal::bfs`] — only the neighbour source differs.
    #[must_use]
    pub fn bfs(&self, starts: &[NodeId], direction: Direction) -> Vec<NodeId> {
        crate::traversal::bfs_over(
            self.node_bound(),
            starts,
            |node| self.is_live(node),
            |node, visit| {
                for &next in self.neighbours(node, direction) {
                    visit(next);
                }
            },
        )
    }

    /// The set of nodes reachable from `starts` (inclusive) as a bit set
    /// indexed by [`NodeId::index`].
    #[must_use]
    pub fn reachable_set(&self, starts: &[NodeId], direction: Direction) -> FixedBitSet {
        let mut set = FixedBitSet::with_capacity(self.node_bound());
        for node in self.bfs(starts, direction) {
            set.insert(node.index());
        }
        set
    }

    fn slice<'a>(&self, offsets: &'a [usize], targets: &'a [NodeId], node: NodeId) -> &'a [NodeId] {
        let i = node.index();
        if i + 1 >= offsets.len() {
            return &[];
        }
        &targets[offsets[i]..offsets[i + 1]]
    }
}

/// Exclusive prefix sums with a trailing total: `[c0, c1, c2]` becomes
/// `[0, c0, c0+c1, c0+c1+c2]`.
fn prefix_sums(counts: &[usize]) -> Vec<usize> {
    let mut offsets = Vec::with_capacity(counts.len() + 1);
    let mut total = 0usize;
    offsets.push(0);
    for &count in counts {
        total += count;
        offsets.push(total);
    }
    offsets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal;

    fn diamond() -> (DiGraph<(), ()>, Vec<NodeId>) {
        let mut g = DiGraph::new();
        let n: Vec<NodeId> = (0..4).map(|_| g.add_node(())).collect();
        g.add_edge(n[0], n[1], ()).unwrap();
        g.add_edge(n[0], n[2], ()).unwrap();
        g.add_edge(n[1], n[3], ()).unwrap();
        g.add_edge(n[2], n[3], ()).unwrap();
        (g, n)
    }

    #[test]
    fn snapshot_matches_digraph_adjacency() {
        let (g, n) = diamond();
        let csr = Csr::from_graph(&g);
        assert_eq!(csr.node_count(), 4);
        assert_eq!(csr.edge_count(), 4);
        assert_eq!(csr.successors(n[0]), &[n[1], n[2]]);
        assert_eq!(csr.predecessors(n[3]), &[n[1], n[2]]);
        assert_eq!(csr.out_degree(n[0]), 2);
        assert_eq!(csr.in_degree(n[3]), 2);
        assert!(csr.successors(n[3]).is_empty());
        assert!(csr.successors(NodeId::from_index(99)).is_empty());
        assert!(!csr.is_live(NodeId::from_index(99)));
    }

    #[test]
    fn snapshot_skips_tombstones() {
        let (mut g, n) = diamond();
        g.remove_node(n[1]).unwrap();
        let csr = Csr::from_graph(&g);
        assert_eq!(csr.node_count(), 3);
        assert_eq!(csr.edge_count(), 2);
        assert!(!csr.is_live(n[1]));
        assert_eq!(csr.successors(n[0]), &[n[2]]);
        assert_eq!(csr.predecessors(n[3]), &[n[2]]);
        let ids: Vec<NodeId> = csr.node_ids().collect();
        assert_eq!(ids, vec![n[0], n[2], n[3]]);
    }

    #[test]
    fn from_edge_list_builds_both_directions() {
        let csr = Csr::from_edge_list(3, &[(0, 1), (1, 2), (0, 2)]);
        assert_eq!(csr.node_count(), 3);
        assert_eq!(csr.edge_count(), 3);
        assert_eq!(
            csr.successors(NodeId::from_index(0)),
            &[NodeId::from_index(1), NodeId::from_index(2)]
        );
        assert_eq!(
            csr.predecessors(NodeId::from_index(2)),
            &[NodeId::from_index(1), NodeId::from_index(0)]
        );
    }

    /// Textbook queue-based BFS straight over the `DiGraph`, independent of
    /// the CSR machinery — the reference `Csr::bfs` (and through delegation
    /// `traversal::bfs`) is checked against.
    fn reference_bfs(g: &DiGraph<(), ()>, start: NodeId, direction: Direction) -> Vec<NodeId> {
        let mut visited = vec![false; g.node_bound()];
        let mut queue = std::collections::VecDeque::from([start]);
        let mut order = Vec::new();
        visited[start.index()] = true;
        while let Some(node) = queue.pop_front() {
            order.push(node);
            let neighbours: Vec<NodeId> = match direction {
                Direction::Forward => g.successors(node).collect(),
                Direction::Backward => g.predecessors(node).collect(),
            };
            for next in neighbours {
                if !visited[next.index()] {
                    visited[next.index()] = true;
                    queue.push_back(next);
                }
            }
        }
        order
    }

    #[test]
    fn bfs_agrees_with_a_reference_traversal() {
        let (g, n) = diamond();
        let csr = Csr::from_graph(&g);
        for direction in [Direction::Forward, Direction::Backward] {
            for &start in &n {
                let want = reference_bfs(&g, start, direction);
                assert_eq!(
                    csr.bfs(&[start], direction),
                    want,
                    "bfs from {start:?} ({direction:?})"
                );
                // the DiGraph entry points delegate here; check them too
                assert_eq!(traversal::bfs(&g, &[start], direction), want);
                let got_set = csr.reachable_set(&[start], direction);
                assert_eq!(got_set.to_vec().len(), want.len());
                for &node in &want {
                    assert!(got_set.contains(node.index()));
                }
            }
        }
    }

    #[test]
    fn bfs_ignores_unknown_and_duplicate_starts() {
        let (g, n) = diamond();
        let csr = Csr::from_graph(&g);
        assert!(csr
            .bfs(&[NodeId::from_index(50)], Direction::Forward)
            .is_empty());
        let order = csr.bfs(&[n[0], n[0]], Direction::Forward);
        assert_eq!(order.len(), 4);
    }
}
