//! Adjacency-list directed graph with stable typed indices.

use crate::error::GraphError;
use crate::id::{EdgeId, NodeId};

/// Internal node storage.
#[derive(Debug, Clone)]
struct NodeSlot<N> {
    weight: Option<N>,
    outgoing: Vec<EdgeId>,
    incoming: Vec<EdgeId>,
}

/// Internal edge storage.
#[derive(Debug, Clone)]
struct EdgeSlot<E> {
    weight: Option<E>,
    source: NodeId,
    target: NodeId,
}

/// A directed graph with node payloads `N` and edge payloads `E`.
///
/// * Node and edge ids are **stable**: removing a node or edge never changes
///   the id of any other node or edge (removed slots become tombstones).
/// * Parallel edges are allowed by [`DiGraph::add_edge`]; the stricter
///   [`DiGraph::add_edge_unique`] rejects duplicates, which is what the
///   workflow layer uses (a data dependency either exists or it does not).
/// * Self loops are rejected by both insertion methods, since workflow
///   specifications and provenance graphs never contain them.
#[derive(Debug, Clone)]
pub struct DiGraph<N, E> {
    nodes: Vec<NodeSlot<N>>,
    edges: Vec<EdgeSlot<E>>,
    live_nodes: usize,
    live_edges: usize,
}

impl<N, E> Default for DiGraph<N, E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<N, E> DiGraph<N, E> {
    /// Creates an empty graph.
    #[must_use]
    pub fn new() -> Self {
        DiGraph {
            nodes: Vec::new(),
            edges: Vec::new(),
            live_nodes: 0,
            live_edges: 0,
        }
    }

    /// Creates an empty graph with pre-allocated capacity.
    #[must_use]
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        DiGraph {
            nodes: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
            live_nodes: 0,
            live_edges: 0,
        }
    }

    /// Number of live (non-removed) nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.live_nodes
    }

    /// Number of live (non-removed) edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.live_edges
    }

    /// Upper bound (exclusive) on node indices ever allocated, including
    /// tombstones. Useful for sizing dense per-node tables.
    #[must_use]
    pub fn node_bound(&self) -> usize {
        self.nodes.len()
    }

    /// Upper bound (exclusive) on edge indices ever allocated, including
    /// tombstones. Together with [`DiGraph::node_bound`] this describes the
    /// exact slot layout a serialised graph must reproduce so that ids
    /// assigned after a restore match the ids a live graph would assign.
    #[must_use]
    pub fn edge_bound(&self) -> usize {
        self.edges.len()
    }

    /// Rebuilds a graph from explicit slot vectors, `None` marking a
    /// tombstone. This is the restore path of persistent storage: node and
    /// edge ids are allocated by slot index, so a graph restored from the
    /// slots of a serialised one assigns exactly the same ids to future
    /// insertions as the original would have.
    ///
    /// # Errors
    /// Returns an error if an edge references a tombstoned/out-of-range
    /// node or is a self loop.
    pub fn from_slots(
        nodes: Vec<Option<N>>,
        edges: Vec<Option<(NodeId, NodeId, E)>>,
    ) -> Result<Self, GraphError> {
        let mut graph = DiGraph {
            nodes: nodes
                .into_iter()
                .map(|weight| NodeSlot {
                    weight,
                    outgoing: Vec::new(),
                    incoming: Vec::new(),
                })
                .collect::<Vec<_>>(),
            edges: Vec::new(),
            live_nodes: 0,
            live_edges: 0,
        };
        graph.live_nodes = graph
            .nodes
            .iter()
            .filter(|slot| slot.weight.is_some())
            .count();
        for (index, slot) in edges.into_iter().enumerate() {
            let id = EdgeId::from_index(index);
            match slot {
                Some((source, target, weight)) => {
                    if source == target {
                        return Err(GraphError::SelfLoop(source));
                    }
                    if !graph.contains_node(source) {
                        return Err(GraphError::InvalidNode(source));
                    }
                    if !graph.contains_node(target) {
                        return Err(GraphError::InvalidNode(target));
                    }
                    graph.edges.push(EdgeSlot {
                        weight: Some(weight),
                        source,
                        target,
                    });
                    graph.nodes[source.index()].outgoing.push(id);
                    graph.nodes[target.index()].incoming.push(id);
                    graph.live_edges += 1;
                }
                None => {
                    // the endpoints of a tombstoned edge are never read
                    // (every accessor checks the weight first); any valid
                    // NodeId works as a placeholder
                    graph.edges.push(EdgeSlot {
                        weight: None,
                        source: NodeId::from_index(0),
                        target: NodeId::from_index(0),
                    });
                }
            }
        }
        Ok(graph)
    }

    /// Returns `true` if the graph contains no live nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live_nodes == 0
    }

    /// Adds a node with the given payload and returns its id.
    pub fn add_node(&mut self, weight: N) -> NodeId {
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(NodeSlot {
            weight: Some(weight),
            outgoing: Vec::new(),
            incoming: Vec::new(),
        });
        self.live_nodes += 1;
        id
    }

    /// Returns `true` if `node` refers to a live node of this graph.
    #[must_use]
    pub fn contains_node(&self, node: NodeId) -> bool {
        self.nodes
            .get(node.index())
            .is_some_and(|slot| slot.weight.is_some())
    }

    /// Returns `true` if `edge` refers to a live edge of this graph.
    #[must_use]
    pub fn contains_edge(&self, edge: EdgeId) -> bool {
        self.edges
            .get(edge.index())
            .is_some_and(|slot| slot.weight.is_some())
    }

    /// Returns a reference to a node's payload.
    pub fn node_weight(&self, node: NodeId) -> Result<&N, GraphError> {
        self.nodes
            .get(node.index())
            .and_then(|slot| slot.weight.as_ref())
            .ok_or(GraphError::InvalidNode(node))
    }

    /// Returns a mutable reference to a node's payload.
    pub fn node_weight_mut(&mut self, node: NodeId) -> Result<&mut N, GraphError> {
        self.nodes
            .get_mut(node.index())
            .and_then(|slot| slot.weight.as_mut())
            .ok_or(GraphError::InvalidNode(node))
    }

    /// Returns a reference to an edge's payload.
    pub fn edge_weight(&self, edge: EdgeId) -> Result<&E, GraphError> {
        self.edges
            .get(edge.index())
            .and_then(|slot| slot.weight.as_ref())
            .ok_or(GraphError::InvalidEdge(edge))
    }

    /// Returns the `(source, target)` endpoints of an edge.
    pub fn edge_endpoints(&self, edge: EdgeId) -> Result<(NodeId, NodeId), GraphError> {
        let slot = self
            .edges
            .get(edge.index())
            .filter(|slot| slot.weight.is_some())
            .ok_or(GraphError::InvalidEdge(edge))?;
        Ok((slot.source, slot.target))
    }

    /// Adds a directed edge `source -> target`, allowing parallel edges.
    ///
    /// # Errors
    /// Returns an error if either endpoint is invalid or if the edge would be
    /// a self loop.
    pub fn add_edge(
        &mut self,
        source: NodeId,
        target: NodeId,
        weight: E,
    ) -> Result<EdgeId, GraphError> {
        if source == target {
            return Err(GraphError::SelfLoop(source));
        }
        if !self.contains_node(source) {
            return Err(GraphError::InvalidNode(source));
        }
        if !self.contains_node(target) {
            return Err(GraphError::InvalidNode(target));
        }
        let id = EdgeId::from_index(self.edges.len());
        self.edges.push(EdgeSlot {
            weight: Some(weight),
            source,
            target,
        });
        self.nodes[source.index()].outgoing.push(id);
        self.nodes[target.index()].incoming.push(id);
        self.live_edges += 1;
        Ok(id)
    }

    /// Adds a directed edge, rejecting duplicates between the same endpoints.
    ///
    /// # Errors
    /// Returns [`GraphError::DuplicateEdge`] if an edge `source -> target`
    /// already exists, plus the errors of [`DiGraph::add_edge`].
    pub fn add_edge_unique(
        &mut self,
        source: NodeId,
        target: NodeId,
        weight: E,
    ) -> Result<EdgeId, GraphError> {
        if self.find_edge(source, target).is_some() {
            return Err(GraphError::DuplicateEdge(source, target));
        }
        self.add_edge(source, target, weight)
    }

    /// Finds an edge between `source` and `target`, if one exists.
    #[must_use]
    pub fn find_edge(&self, source: NodeId, target: NodeId) -> Option<EdgeId> {
        if !self.contains_node(source) {
            return None;
        }
        self.nodes[source.index()]
            .outgoing
            .iter()
            .copied()
            .find(|&e| {
                let slot = &self.edges[e.index()];
                slot.weight.is_some() && slot.target == target
            })
    }

    /// Removes an edge, returning its payload.
    pub fn remove_edge(&mut self, edge: EdgeId) -> Result<E, GraphError> {
        let slot = self
            .edges
            .get_mut(edge.index())
            .ok_or(GraphError::InvalidEdge(edge))?;
        let weight = slot.weight.take().ok_or(GraphError::InvalidEdge(edge))?;
        let source = slot.source;
        let target = slot.target;
        self.nodes[source.index()].outgoing.retain(|&e| e != edge);
        self.nodes[target.index()].incoming.retain(|&e| e != edge);
        self.live_edges -= 1;
        Ok(weight)
    }

    /// Removes a node and all incident edges, returning its payload.
    pub fn remove_node(&mut self, node: NodeId) -> Result<N, GraphError> {
        if !self.contains_node(node) {
            return Err(GraphError::InvalidNode(node));
        }
        let incident: Vec<EdgeId> = self.nodes[node.index()]
            .outgoing
            .iter()
            .chain(self.nodes[node.index()].incoming.iter())
            .copied()
            .collect();
        for edge in incident {
            if self.contains_edge(edge) {
                self.remove_edge(edge)?;
            }
        }
        let weight = self.nodes[node.index()]
            .weight
            .take()
            .ok_or(GraphError::InvalidNode(node))?;
        self.live_nodes -= 1;
        Ok(weight)
    }

    /// Iterates over the ids of all live nodes in ascending id order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.weight.as_ref().map(|_| NodeId::from_index(i)))
    }

    /// Iterates over `(id, &payload)` for all live nodes.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &N)> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.weight.as_ref().map(|w| (NodeId::from_index(i), w)))
    }

    /// Iterates over the ids of all live edges in ascending id order.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.edges
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.weight.as_ref().map(|_| EdgeId::from_index(i)))
    }

    /// Iterates over `(id, source, target, &payload)` for all live edges.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, NodeId, NodeId, &E)> + '_ {
        self.edges.iter().enumerate().filter_map(|(i, slot)| {
            slot.weight
                .as_ref()
                .map(|w| (EdgeId::from_index(i), slot.source, slot.target, w))
        })
    }

    /// Iterates over the direct successors of `node` (ignoring removed edges).
    ///
    /// Parallel edges yield the same successor multiple times.
    pub fn successors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .get(node.index())
            .map(|slot| slot.outgoing.as_slice())
            .unwrap_or(&[])
            .iter()
            .filter_map(move |&e| {
                let slot = &self.edges[e.index()];
                slot.weight.as_ref().map(|_| slot.target)
            })
    }

    /// Iterates over the direct predecessors of `node`.
    pub fn predecessors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .get(node.index())
            .map(|slot| slot.incoming.as_slice())
            .unwrap_or(&[])
            .iter()
            .filter_map(move |&e| {
                let slot = &self.edges[e.index()];
                slot.weight.as_ref().map(|_| slot.source)
            })
    }

    /// Out-degree of a node (0 for unknown nodes).
    #[must_use]
    pub fn out_degree(&self, node: NodeId) -> usize {
        self.successors(node).count()
    }

    /// In-degree of a node (0 for unknown nodes).
    #[must_use]
    pub fn in_degree(&self, node: NodeId) -> usize {
        self.predecessors(node).count()
    }

    /// Iterates over outgoing edge ids of `node`.
    pub fn outgoing_edges(&self, node: NodeId) -> impl Iterator<Item = EdgeId> + '_ {
        self.nodes
            .get(node.index())
            .map(|slot| slot.outgoing.as_slice())
            .unwrap_or(&[])
            .iter()
            .copied()
            .filter(move |&e| self.edges[e.index()].weight.is_some())
    }

    /// Iterates over incoming edge ids of `node`.
    pub fn incoming_edges(&self, node: NodeId) -> impl Iterator<Item = EdgeId> + '_ {
        self.nodes
            .get(node.index())
            .map(|slot| slot.incoming.as_slice())
            .unwrap_or(&[])
            .iter()
            .copied()
            .filter(move |&e| self.edges[e.index()].weight.is_some())
    }

    /// Maps the graph into a structurally identical graph with different
    /// payload types.
    pub fn map<N2, E2>(
        &self,
        mut node_map: impl FnMut(NodeId, &N) -> N2,
        mut edge_map: impl FnMut(EdgeId, &E) -> E2,
    ) -> DiGraph<N2, E2> {
        let nodes = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, slot)| NodeSlot {
                weight: slot
                    .weight
                    .as_ref()
                    .map(|w| node_map(NodeId::from_index(i), w)),
                outgoing: slot.outgoing.clone(),
                incoming: slot.incoming.clone(),
            })
            .collect();
        let edges = self
            .edges
            .iter()
            .enumerate()
            .map(|(i, slot)| EdgeSlot {
                weight: slot
                    .weight
                    .as_ref()
                    .map(|w| edge_map(EdgeId::from_index(i), w)),
                source: slot.source,
                target: slot.target,
            })
            .collect();
        DiGraph {
            nodes,
            edges,
            live_nodes: self.live_nodes,
            live_edges: self.live_edges,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (DiGraph<&'static str, u32>, [NodeId; 4]) {
        let mut g = DiGraph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        let d = g.add_node("d");
        g.add_edge(a, b, 1).unwrap();
        g.add_edge(a, c, 2).unwrap();
        g.add_edge(b, d, 3).unwrap();
        g.add_edge(c, d, 4).unwrap();
        (g, [a, b, c, d])
    }

    #[test]
    fn counts_and_membership() {
        let (g, [a, b, c, d]) = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        for n in [a, b, c, d] {
            assert!(g.contains_node(n));
        }
        assert!(!g.contains_node(NodeId::from_index(99)));
    }

    #[test]
    fn successors_and_predecessors() {
        let (g, [a, b, c, d]) = diamond();
        let succ_a: Vec<NodeId> = g.successors(a).collect();
        assert_eq!(succ_a, vec![b, c]);
        let pred_d: Vec<NodeId> = g.predecessors(d).collect();
        assert_eq!(pred_d, vec![b, c]);
        assert_eq!(g.out_degree(a), 2);
        assert_eq!(g.in_degree(d), 2);
        assert_eq!(g.out_degree(d), 0);
    }

    #[test]
    fn self_loops_rejected() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        assert_eq!(g.add_edge(a, a, ()), Err(GraphError::SelfLoop(a)));
    }

    #[test]
    fn duplicate_edges_rejected_by_unique_insert() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge_unique(a, b, ()).unwrap();
        assert_eq!(
            g.add_edge_unique(a, b, ()),
            Err(GraphError::DuplicateEdge(a, b))
        );
        // the permissive method still allows parallel edges
        assert!(g.add_edge(a, b, ()).is_ok());
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn invalid_endpoints_rejected() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let ghost = NodeId::from_index(17);
        assert_eq!(
            g.add_edge(a, ghost, ()),
            Err(GraphError::InvalidNode(ghost))
        );
        assert_eq!(
            g.add_edge(ghost, a, ()),
            Err(GraphError::InvalidNode(ghost))
        );
    }

    #[test]
    fn edge_lookup_and_endpoints() {
        let (g, [a, b, _, d]) = diamond();
        let e = g.find_edge(a, b).unwrap();
        assert_eq!(g.edge_endpoints(e).unwrap(), (a, b));
        assert_eq!(*g.edge_weight(e).unwrap(), 1);
        assert!(g.find_edge(a, d).is_none());
    }

    #[test]
    fn remove_edge_keeps_other_ids_stable() {
        let (mut g, [a, b, c, d]) = diamond();
        let e_ab = g.find_edge(a, b).unwrap();
        let e_cd = g.find_edge(c, d).unwrap();
        assert_eq!(g.remove_edge(e_ab).unwrap(), 1);
        assert_eq!(g.edge_count(), 3);
        assert!(!g.contains_edge(e_ab));
        assert!(g.contains_edge(e_cd));
        assert_eq!(g.edge_endpoints(e_cd).unwrap(), (c, d));
        assert!(g.remove_edge(e_ab).is_err());
        let succ_a: Vec<NodeId> = g.successors(a).collect();
        assert_eq!(succ_a, vec![c]);
    }

    #[test]
    fn remove_node_removes_incident_edges() {
        let (mut g, [a, b, c, d]) = diamond();
        assert_eq!(g.remove_node(b).unwrap(), "b");
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert!(!g.contains_node(b));
        assert!(g.contains_node(a));
        let succ_a: Vec<NodeId> = g.successors(a).collect();
        assert_eq!(succ_a, vec![c]);
        let pred_d: Vec<NodeId> = g.predecessors(d).collect();
        assert_eq!(pred_d, vec![c]);
    }

    #[test]
    fn node_weight_access_and_mutation() {
        let (mut g, [a, ..]) = diamond();
        assert_eq!(*g.node_weight(a).unwrap(), "a");
        *g.node_weight_mut(a).unwrap() = "alpha";
        assert_eq!(*g.node_weight(a).unwrap(), "alpha");
        assert!(g.node_weight(NodeId::from_index(50)).is_err());
    }

    #[test]
    fn iteration_skips_tombstones() {
        let (mut g, [a, b, _, _]) = diamond();
        g.remove_node(b).unwrap();
        let ids: Vec<NodeId> = g.node_ids().collect();
        assert_eq!(ids.len(), 3);
        assert!(!ids.contains(&b));
        assert!(ids.contains(&a));
        assert_eq!(g.edges().count(), 2);
    }

    #[test]
    fn from_slots_reproduces_tombstones_and_future_ids() {
        let (mut g, [a, b, c, d]) = diamond();
        g.remove_node(b).unwrap();
        let e_cd = g.find_edge(c, d).unwrap();
        g.remove_edge(e_cd).unwrap();
        // serialise to slots by hand
        let nodes: Vec<Option<&str>> = (0..g.node_bound())
            .map(|i| g.node_weight(NodeId::from_index(i)).ok().copied())
            .collect();
        let edges: Vec<Option<(NodeId, NodeId, u32)>> = (0..g.edge_bound())
            .map(|i| {
                let id = EdgeId::from_index(i);
                g.edge_endpoints(id)
                    .ok()
                    .map(|(s, t)| (s, t, *g.edge_weight(id).unwrap()))
            })
            .collect();
        let mut restored = DiGraph::from_slots(nodes, edges).unwrap();
        assert_eq!(restored.node_count(), g.node_count());
        assert_eq!(restored.edge_count(), g.edge_count());
        assert_eq!(restored.node_bound(), g.node_bound());
        assert_eq!(restored.edge_bound(), g.edge_bound());
        assert!(!restored.contains_node(b));
        assert!(!restored.contains_edge(e_cd));
        // the next allocations land on the same ids in both graphs
        assert_eq!(restored.add_node("e"), g.add_node("e"));
        let restored_edge = restored.add_edge(a, d, 9u32).unwrap();
        assert_eq!(restored_edge, g.add_edge(a, d, 9u32).unwrap());
        // invalid slot payloads are rejected
        assert!(DiGraph::<&str, u32>::from_slots(
            vec![Some("x")],
            vec![Some((NodeId::from_index(0), NodeId::from_index(1), 1u32))],
        )
        .is_err());
        assert!(DiGraph::<&str, u32>::from_slots(
            vec![Some("x")],
            vec![Some((NodeId::from_index(0), NodeId::from_index(0), 1u32))],
        )
        .is_err());
    }

    #[test]
    fn map_preserves_structure() {
        let (g, [a, _, _, d]) = diamond();
        let mapped: DiGraph<String, String> =
            g.map(|_, w| w.to_uppercase(), |_, w| format!("w{w}"));
        assert_eq!(mapped.node_count(), 4);
        assert_eq!(mapped.edge_count(), 4);
        assert_eq!(mapped.node_weight(a).unwrap(), "A");
        assert_eq!(mapped.predecessors(d).count(), 2);
    }
}
