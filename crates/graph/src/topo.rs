//! Topological ordering and cycle detection.

use crate::csr::Csr;
use crate::digraph::DiGraph;
use crate::error::GraphError;
use crate::id::NodeId;

/// Computes a topological order of the live nodes using Kahn's algorithm.
///
/// Node ids appear before all of their descendants. Ties are broken by node
/// id so the order is deterministic for a given graph.
///
/// Convenience wrapper that snapshots the graph into a [`Csr`] first;
/// algorithms that already hold a snapshot should call
/// [`topological_sort_csr`] directly.
///
/// # Errors
/// Returns [`GraphError::CycleDetected`] if the graph contains a directed
/// cycle; the payload names one node on a cycle.
pub fn topological_sort<N, E>(graph: &DiGraph<N, E>) -> Result<Vec<NodeId>, GraphError> {
    topological_sort_csr(&Csr::from_graph(graph))
}

/// Kahn's algorithm over a CSR snapshot: in-degrees are slice lengths and
/// successor iteration is contiguous, so the sort is a single pass with no
/// per-node neighbour collection.
///
/// # Errors
/// Returns [`GraphError::CycleDetected`] if the snapshot contains a directed
/// cycle; the payload names one node on a cycle.
pub fn topological_sort_csr(csr: &Csr) -> Result<Vec<NodeId>, GraphError> {
    let bound = csr.node_bound();
    let mut in_degree: Vec<usize> = vec![0; bound];
    for node in csr.node_ids() {
        in_degree[node.index()] = csr.in_degree(node);
    }
    // A BinaryHeap would give the smallest-id-first guarantee directly, but a
    // sorted initial frontier plus FIFO processing keeps this linear and is
    // deterministic, which is all the callers need. `order` doubles as the
    // FIFO queue: nodes are appended once and scanned once.
    let mut order: Vec<NodeId> = csr
        .node_ids()
        .filter(|n| in_degree[n.index()] == 0)
        .collect();
    let mut head = 0;
    let mut newly_free: Vec<NodeId> = Vec::new();
    while head < order.len() {
        let node = order[head];
        head += 1;
        newly_free.clear();
        for &succ in csr.successors(node) {
            let d = &mut in_degree[succ.index()];
            *d -= 1;
            if *d == 0 {
                newly_free.push(succ);
            }
        }
        newly_free.sort_unstable();
        order.extend_from_slice(&newly_free);
    }
    if order.len() != csr.node_count() {
        let mut ordered = vec![false; bound];
        for &n in &order {
            ordered[n.index()] = true;
        }
        let culprit = csr
            .node_ids()
            .find(|n| !ordered[n.index()])
            .expect("cycle implies at least one unordered node");
        return Err(GraphError::CycleDetected(culprit));
    }
    Ok(order)
}

/// Returns `true` if the graph is a directed acyclic graph.
pub fn is_acyclic<N, E>(graph: &DiGraph<N, E>) -> bool {
    topological_sort(graph).is_ok()
}

/// Returns the position of every node in a topological order as a dense
/// lookup table indexed by [`NodeId::index`]. Positions of removed nodes are
/// `usize::MAX`.
///
/// # Errors
/// Returns [`GraphError::CycleDetected`] for cyclic graphs.
pub fn topological_positions<N, E>(graph: &DiGraph<N, E>) -> Result<Vec<usize>, GraphError> {
    let order = topological_sort(graph)?;
    let mut positions = vec![usize::MAX; graph.node_bound()];
    for (pos, node) in order.iter().enumerate() {
        positions[node.index()] = pos;
    }
    Ok(positions)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topological_sort_orders_dependencies_first() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        g.add_edge(a, b, ()).unwrap();
        g.add_edge(a, c, ()).unwrap();
        g.add_edge(b, d, ()).unwrap();
        g.add_edge(c, d, ()).unwrap();
        let order = topological_sort(&g).unwrap();
        let pos = |n: NodeId| order.iter().position(|&x| x == n).unwrap();
        assert!(pos(a) < pos(b));
        assert!(pos(a) < pos(c));
        assert!(pos(b) < pos(d));
        assert!(pos(c) < pos(d));
        assert_eq!(order.len(), 4);
    }

    #[test]
    fn cycle_is_detected() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b, ()).unwrap();
        g.add_edge(b, c, ()).unwrap();
        g.add_edge(c, a, ()).unwrap();
        assert!(matches!(
            topological_sort(&g),
            Err(GraphError::CycleDetected(_))
        ));
        assert!(!is_acyclic(&g));
    }

    #[test]
    fn empty_graph_is_acyclic() {
        let g: DiGraph<(), ()> = DiGraph::new();
        assert!(is_acyclic(&g));
        assert!(topological_sort(&g).unwrap().is_empty());
    }

    #[test]
    fn removed_nodes_are_skipped() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b, ()).unwrap();
        g.add_edge(b, c, ()).unwrap();
        g.remove_node(b).unwrap();
        let order = topological_sort(&g).unwrap();
        assert_eq!(order.len(), 2);
        assert!(order.contains(&a));
        assert!(order.contains(&c));
    }

    #[test]
    fn positions_match_order() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, ()).unwrap();
        let positions = topological_positions(&g).unwrap();
        assert!(positions[a.index()] < positions[b.index()]);
    }

    #[test]
    fn disconnected_components_all_appear() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let nodes: Vec<NodeId> = (0..6).map(|_| g.add_node(())).collect();
        g.add_edge(nodes[0], nodes[1], ()).unwrap();
        g.add_edge(nodes[2], nodes[3], ()).unwrap();
        // nodes[4] and nodes[5] are isolated
        let order = topological_sort(&g).unwrap();
        assert_eq!(order.len(), 6);
    }
}
