//! A fixed-capacity bit set.
//!
//! Reachability matrices, partition membership masks and frontier bookkeeping
//! all need dense bit sets. The workspace intentionally implements its own
//! small, well-tested bit set rather than pulling in an external crate — the
//! graph substrate is part of the reproduction (see `DESIGN.md`).

use std::fmt;

/// A fixed-capacity set of `usize` values backed by `u64` words.
///
/// The capacity is chosen at construction time and only changes through an
/// explicit [`FixedBitSet::grow`]; every public method checks bounds, and
/// operations on indices `>= capacity` panic in both debug and release
/// builds.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct FixedBitSet {
    words: Vec<u64>,
    len: usize,
}

impl FixedBitSet {
    /// Creates an empty bit set able to hold values in `0..len`.
    #[must_use]
    pub fn with_capacity(len: usize) -> Self {
        let word_count = len.div_ceil(64);
        FixedBitSet {
            words: vec![0; word_count],
            len,
        }
    }

    /// Number of distinct values this set can hold (`0..len`).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Grows the capacity to `new_len`, preserving the set bits. Shrinking
    /// is not supported; a smaller `new_len` leaves the set unchanged.
    pub fn grow(&mut self, new_len: usize) {
        if new_len <= self.len {
            return;
        }
        self.words.resize(new_len.div_ceil(64), 0);
        self.len = new_len;
    }

    /// Inserts `bit` into the set. Returns `true` if the bit was newly set.
    ///
    /// # Panics
    /// Panics if `bit >= capacity`.
    pub fn insert(&mut self, bit: usize) -> bool {
        assert!(bit < self.len, "bit {bit} out of range 0..{}", self.len);
        let word = &mut self.words[bit / 64];
        let mask = 1u64 << (bit % 64);
        let was_set = *word & mask != 0;
        *word |= mask;
        !was_set
    }

    /// Removes `bit` from the set. Returns `true` if the bit was present.
    ///
    /// # Panics
    /// Panics if `bit >= capacity`.
    pub fn remove(&mut self, bit: usize) -> bool {
        assert!(bit < self.len, "bit {bit} out of range 0..{}", self.len);
        let word = &mut self.words[bit / 64];
        let mask = 1u64 << (bit % 64);
        let was_set = *word & mask != 0;
        *word &= !mask;
        was_set
    }

    /// Returns `true` if `bit` is in the set.
    ///
    /// # Panics
    /// Panics if `bit >= capacity`.
    #[must_use]
    pub fn contains(&self, bit: usize) -> bool {
        assert!(bit < self.len, "bit {bit} out of range 0..{}", self.len);
        self.words[bit / 64] & (1u64 << (bit % 64)) != 0
    }

    /// Number of bits currently set.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        crate::kernels::popcount(&self.words)
    }

    /// Returns `true` if no bits are set.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Clears all bits.
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// Sets every bit in `0..capacity`.
    pub fn insert_all(&mut self) {
        for w in &mut self.words {
            *w = u64::MAX;
        }
        self.mask_tail();
    }

    /// In-place union: `self |= other`.
    ///
    /// # Panics
    /// Panics if the capacities differ.
    pub fn union_with(&mut self, other: &FixedBitSet) {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        crate::kernels::or_into(&mut self.words, &other.words);
    }

    /// In-place intersection: `self &= other`.
    ///
    /// # Panics
    /// Panics if the capacities differ.
    pub fn intersect_with(&mut self, other: &FixedBitSet) {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        crate::kernels::and_into(&mut self.words, &other.words);
    }

    /// In-place difference: `self &= !other`.
    ///
    /// # Panics
    /// Panics if the capacities differ.
    pub fn difference_with(&mut self, other: &FixedBitSet) {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        crate::kernels::andnot_into(&mut self.words, &other.words);
    }

    /// Returns `true` if `self` and `other` share at least one bit.
    ///
    /// # Panics
    /// Panics if the capacities differ.
    #[must_use]
    pub fn intersects(&self, other: &FixedBitSet) -> bool {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        crate::kernels::and_any(&self.words, &other.words)
    }

    /// Returns `true` if every bit of `self` is also set in `other`.
    ///
    /// # Panics
    /// Panics if the capacities differ.
    #[must_use]
    pub fn is_subset(&self, other: &FixedBitSet) -> bool {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        !crate::kernels::andnot_any(&self.words, &other.words)
    }

    /// Iterates over the indices of the set bits in ascending order.
    pub fn ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words
            .iter()
            .enumerate()
            .flat_map(|(wi, &word)| OnesInWord { word }.map(move |bit| wi * 64 + bit))
    }

    /// Collects the set bits into a vector (ascending order).
    #[must_use]
    pub fn to_vec(&self) -> Vec<usize> {
        self.ones().collect()
    }

    fn mask_tail(&mut self) {
        let tail_bits = self.len % 64;
        if tail_bits != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail_bits) - 1;
            }
        }
        if self.len == 0 {
            self.words.clear();
        }
    }
}

/// Iterator over the set-bit positions (0..64) of one word, ascending.
pub(crate) struct OnesInWord {
    pub(crate) word: u64,
}

impl Iterator for OnesInWord {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.word == 0 {
            return None;
        }
        let bit = self.word.trailing_zeros() as usize;
        self.word &= self.word - 1;
        Some(bit)
    }
}

impl fmt::Debug for FixedBitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.ones()).finish()
    }
}

impl FromIterator<usize> for FixedBitSet {
    /// Builds a bit set whose capacity is one past the maximum element.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let cap = items.iter().copied().max().map_or(0, |m| m + 1);
        let mut set = FixedBitSet::with_capacity(cap);
        for item in items {
            set.insert(item);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = FixedBitSet::with_capacity(130);
        assert!(!s.contains(0));
        assert!(s.insert(0));
        assert!(!s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(s.contains(0));
        assert!(s.contains(64));
        assert!(s.contains(129));
        assert_eq!(s.count_ones(), 3);
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.count_ones(), 2);
    }

    #[test]
    fn ones_iterates_in_order() {
        let mut s = FixedBitSet::with_capacity(200);
        for &b in &[3usize, 70, 5, 199, 64] {
            s.insert(b);
        }
        assert_eq!(s.to_vec(), vec![3, 5, 64, 70, 199]);
    }

    #[test]
    fn grow_preserves_bits_and_rejects_shrinks() {
        let mut s = FixedBitSet::with_capacity(10);
        s.insert(3);
        s.insert(9);
        s.grow(200);
        assert_eq!(s.capacity(), 200);
        assert!(s.contains(3));
        assert!(s.contains(9));
        assert!(!s.contains(150));
        s.insert(150);
        assert_eq!(s.to_vec(), vec![3, 9, 150]);
        s.grow(5); // no shrink
        assert_eq!(s.capacity(), 200);
        assert!(s.contains(150));
    }

    #[test]
    fn insert_all_respects_capacity() {
        let mut s = FixedBitSet::with_capacity(67);
        s.insert_all();
        assert_eq!(s.count_ones(), 67);
        assert_eq!(s.to_vec().last(), Some(&66));
    }

    #[test]
    fn union_and_intersection() {
        let mut a = FixedBitSet::with_capacity(10);
        let mut b = FixedBitSet::with_capacity(10);
        a.insert(1);
        a.insert(3);
        b.insert(3);
        b.insert(5);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.to_vec(), vec![1, 3, 5]);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.to_vec(), vec![3]);
        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.to_vec(), vec![1]);
        assert!(a.intersects(&b));
        assert!(i.is_subset(&a));
        assert!(!a.is_subset(&b));
    }

    #[test]
    fn empty_set_behaviour() {
        let s = FixedBitSet::with_capacity(0);
        assert!(s.is_empty());
        assert_eq!(s.count_ones(), 0);
        assert_eq!(s.to_vec(), Vec::<usize>::new());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_insert_panics() {
        let mut s = FixedBitSet::with_capacity(4);
        s.insert(4);
    }

    #[test]
    fn from_iterator_builds_tight_capacity() {
        let s: FixedBitSet = [2usize, 9, 4].into_iter().collect();
        assert_eq!(s.capacity(), 10);
        assert_eq!(s.to_vec(), vec![2, 4, 9]);
    }

    proptest! {
        #[test]
        fn prop_insert_then_contains(bits in proptest::collection::vec(0usize..500, 0..60)) {
            let mut s = FixedBitSet::with_capacity(500);
            for &b in &bits {
                s.insert(b);
            }
            for &b in &bits {
                prop_assert!(s.contains(b));
            }
            let mut sorted: Vec<usize> = bits.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(s.to_vec(), sorted);
        }

        #[test]
        fn prop_union_is_commutative(
            xs in proptest::collection::vec(0usize..300, 0..40),
            ys in proptest::collection::vec(0usize..300, 0..40),
        ) {
            let mut a = FixedBitSet::with_capacity(300);
            let mut b = FixedBitSet::with_capacity(300);
            for &x in &xs { a.insert(x); }
            for &y in &ys { b.insert(y); }
            let mut ab = a.clone();
            ab.union_with(&b);
            let mut ba = b.clone();
            ba.union_with(&a);
            prop_assert_eq!(ab, ba);
        }

        #[test]
        fn prop_difference_removes_only_other(
            xs in proptest::collection::vec(0usize..200, 0..40),
            ys in proptest::collection::vec(0usize..200, 0..40),
        ) {
            let mut a = FixedBitSet::with_capacity(200);
            let mut b = FixedBitSet::with_capacity(200);
            for &x in &xs { a.insert(x); }
            for &y in &ys { b.insert(y); }
            let mut d = a.clone();
            d.difference_with(&b);
            for bit in d.ones() {
                prop_assert!(a.contains(bit));
                prop_assert!(!b.contains(bit));
            }
            for &x in &xs {
                if !ys.contains(&x) {
                    prop_assert!(d.contains(x));
                }
            }
        }
    }
}
