//! # wolves-graph
//!
//! Directed-graph substrate used throughout the WOLVES workflow-view system.
//!
//! The crate provides the data structures and algorithms every other layer of
//! the reproduction is built on:
//!
//! * [`DiGraph`] — an adjacency-list directed graph with stable, typed
//!   [`NodeId`]/[`EdgeId`] indices, optional node/edge payloads and tombstone
//!   based removal.
//! * [`FixedBitSet`] — a compact bit set used for partition masks and
//!   subset bookkeeping (the workspace deliberately avoids external graph or
//!   bitset crates; this substrate is part of the reproduction).
//! * [`Csr`] — a frozen compressed-sparse-row adjacency snapshot with
//!   contiguous successor/predecessor slices; the read-only algorithms below
//!   run over it instead of chasing `DiGraph`'s edge-slot indirection.
//! * [`topo`] — topological ordering and cycle detection.
//! * [`scc`] — Tarjan strongly-connected components and condensation, so that
//!   imported workflows that are not DAGs can still be analysed.
//! * [`reach`] — all-pairs reachability ([`ReachMatrix`]): a flat row-major
//!   bit matrix over the condensation, built by in-place row unions over a
//!   topological order, with row-level ops ([`reach::ReachRow`]) for
//!   bitset-algebra consumers and in-place delta maintenance for node and
//!   edge inserts.
//! * [`delta`] — the delta taxonomy for incremental maintenance
//!   ([`DeltaClass`]) and the [`DirtyRows`] change sets the maintenance
//!   routines report to downstream caches.
//! * [`kernels`] — blocked (4×64-bit) word kernels shared by every hot
//!   row/mask loop: unrolled OR/AND/intersect/popcount over flat `&[u64]`
//!   slices that autovectorise to 256-bit SIMD.
//! * [`algo`] — assorted DAG utilities (roots, leaves, layering, transitive
//!   reduction) used by the workload generators and renderers.
//! * [`dot`] — Graphviz DOT export for debugging and the CLI displayer.
//!
//! ## Quick start
//!
//! ```
//! use wolves_graph::{DiGraph, reach::ReachMatrix};
//!
//! let mut g: DiGraph<&str, ()> = DiGraph::new();
//! let a = g.add_node("a");
//! let b = g.add_node("b");
//! let c = g.add_node("c");
//! g.add_edge(a, b, ());
//! g.add_edge(b, c, ());
//!
//! let reach = ReachMatrix::build(&g).unwrap();
//! assert!(reach.reachable(a, c));
//! assert!(!reach.reachable(c, a));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod algo;
pub mod bitset;
pub mod csr;
pub mod delta;
pub mod digraph;
pub mod dot;
pub mod error;
pub mod id;
pub mod kernels;
pub mod reach;
pub mod scc;
pub mod topo;
pub mod traversal;

pub use bitset::FixedBitSet;
pub use csr::Csr;
pub use delta::{DeltaClass, DeltaOutcome, DirtyRows};
pub use digraph::DiGraph;
pub use error::GraphError;
pub use id::{EdgeId, NodeId};
pub use reach::{ReachMatrix, ReachRow};
