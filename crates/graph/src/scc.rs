//! Strongly connected components (Tarjan) and condensation.
//!
//! Workflow specifications are expected to be DAGs, but imported MOML files
//! and user-edited graphs may accidentally contain cycles. The validator and
//! the reachability matrix therefore condense general digraphs first.

use crate::digraph::DiGraph;
use crate::id::NodeId;

/// Result of a strongly-connected-component decomposition.
#[derive(Debug, Clone)]
pub struct SccDecomposition {
    /// The components, each a non-empty list of node ids. Components are
    /// emitted in reverse topological order of the condensation (standard
    /// Tarjan output order).
    pub components: Vec<Vec<NodeId>>,
    /// Dense lookup from [`NodeId::index`] to the index of its component in
    /// [`SccDecomposition::components`]. Removed nodes map to `usize::MAX`.
    pub component_of: Vec<usize>,
}

impl SccDecomposition {
    /// Number of components.
    #[must_use]
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Returns `true` if there are no components (empty graph).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Returns `true` if every component is a single node, i.e. the graph is
    /// acyclic (self-loops are impossible in [`DiGraph`]).
    #[must_use]
    pub fn is_acyclic(&self) -> bool {
        self.components.iter().all(|c| c.len() == 1)
    }

    /// Returns the component index of a node, if the node exists.
    #[must_use]
    pub fn component(&self, node: NodeId) -> Option<usize> {
        self.component_of
            .get(node.index())
            .copied()
            .filter(|&c| c != usize::MAX)
    }
}

/// Computes the strongly connected components of the graph using an
/// iterative Tarjan algorithm (no recursion, so arbitrarily deep graphs are
/// safe).
pub fn strongly_connected_components<N, E>(graph: &DiGraph<N, E>) -> SccDecomposition {
    let bound = graph.node_bound();
    const UNVISITED: usize = usize::MAX;
    let mut index_of: Vec<usize> = vec![UNVISITED; bound];
    let mut low_link: Vec<usize> = vec![0; bound];
    let mut on_stack: Vec<bool> = vec![false; bound];
    let mut stack: Vec<NodeId> = Vec::new();
    let mut components: Vec<Vec<NodeId>> = Vec::new();
    let mut component_of: Vec<usize> = vec![usize::MAX; bound];
    let mut next_index = 0usize;

    // Explicit DFS call stack: (node, iterator position over successors).
    enum Frame {
        Enter(NodeId),
        Continue(NodeId, usize),
    }

    for root in graph.node_ids() {
        if index_of[root.index()] != UNVISITED {
            continue;
        }
        let mut call_stack = vec![Frame::Enter(root)];
        while let Some(frame) = call_stack.pop() {
            match frame {
                Frame::Enter(v) => {
                    index_of[v.index()] = next_index;
                    low_link[v.index()] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v.index()] = true;
                    call_stack.push(Frame::Continue(v, 0));
                }
                Frame::Continue(v, child_pos) => {
                    let successors: Vec<NodeId> = graph.successors(v).collect();
                    if child_pos > 0 {
                        // we just returned from exploring successors[child_pos - 1]
                        let w = successors[child_pos - 1];
                        low_link[v.index()] = low_link[v.index()].min(low_link[w.index()]);
                    }
                    let mut advanced = false;
                    for (offset, &w) in successors.iter().enumerate().skip(child_pos) {
                        if index_of[w.index()] == UNVISITED {
                            call_stack.push(Frame::Continue(v, offset + 1));
                            call_stack.push(Frame::Enter(w));
                            advanced = true;
                            break;
                        } else if on_stack[w.index()] {
                            low_link[v.index()] = low_link[v.index()].min(index_of[w.index()]);
                        }
                    }
                    if advanced {
                        continue;
                    }
                    if low_link[v.index()] == index_of[v.index()] {
                        let mut component = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w.index()] = false;
                            component_of[w.index()] = components.len();
                            component.push(w);
                            if w == v {
                                break;
                            }
                        }
                        component.sort_unstable();
                        components.push(component);
                    }
                }
            }
        }
    }

    SccDecomposition {
        components,
        component_of,
    }
}

/// Builds the condensation of the graph: one node per strongly connected
/// component (payload: member node ids), and an edge between two components
/// whenever any cross-component edge exists in the input (deduplicated).
pub fn condensation<N, E>(graph: &DiGraph<N, E>) -> (DiGraph<Vec<NodeId>, ()>, SccDecomposition) {
    let scc = strongly_connected_components(graph);
    let mut condensed: DiGraph<Vec<NodeId>, ()> = DiGraph::with_capacity(scc.len(), scc.len());
    let comp_nodes: Vec<NodeId> = scc
        .components
        .iter()
        .map(|members| condensed.add_node(members.clone()))
        .collect();
    for (_, source, target, _) in graph.edges() {
        let cs = scc.component_of[source.index()];
        let ct = scc.component_of[target.index()];
        if cs != ct {
            // ignore duplicates
            let _ = condensed.add_edge_unique(comp_nodes[cs], comp_nodes[ct], ());
        }
    }
    (condensed, scc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topo::is_acyclic;

    #[test]
    fn acyclic_graph_has_singleton_components() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b, ()).unwrap();
        g.add_edge(b, c, ()).unwrap();
        let scc = strongly_connected_components(&g);
        assert_eq!(scc.len(), 3);
        assert!(scc.is_acyclic());
    }

    #[test]
    fn cycle_collapses_into_one_component() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        g.add_edge(a, b, ()).unwrap();
        g.add_edge(b, c, ()).unwrap();
        g.add_edge(c, a, ()).unwrap();
        g.add_edge(c, d, ()).unwrap();
        let scc = strongly_connected_components(&g);
        assert_eq!(scc.len(), 2);
        assert!(!scc.is_acyclic());
        assert_eq!(scc.component(a), scc.component(b));
        assert_eq!(scc.component(a), scc.component(c));
        assert_ne!(scc.component(a), scc.component(d));
    }

    #[test]
    fn condensation_is_acyclic_and_preserves_cross_edges() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        let e = g.add_node(());
        // cycle {a,b}, cycle {c,d}, bridge b->c, d->e
        g.add_edge(a, b, ()).unwrap();
        g.add_edge(b, a, ()).unwrap();
        g.add_edge(c, d, ()).unwrap();
        g.add_edge(d, c, ()).unwrap();
        g.add_edge(b, c, ()).unwrap();
        g.add_edge(d, e, ()).unwrap();
        let (condensed, scc) = condensation(&g);
        assert_eq!(scc.len(), 3);
        assert_eq!(condensed.node_count(), 3);
        assert_eq!(condensed.edge_count(), 2);
        assert!(is_acyclic(&condensed));
    }

    #[test]
    fn empty_graph_condensation() {
        let g: DiGraph<(), ()> = DiGraph::new();
        let (condensed, scc) = condensation(&g);
        assert!(scc.is_empty());
        assert_eq!(condensed.node_count(), 0);
    }

    #[test]
    fn two_mutually_unreachable_cycles_stay_separate() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        g.add_edge(a, b, ()).unwrap();
        g.add_edge(b, a, ()).unwrap();
        g.add_edge(c, d, ()).unwrap();
        g.add_edge(d, c, ()).unwrap();
        let scc = strongly_connected_components(&g);
        assert_eq!(scc.len(), 2);
        assert_ne!(scc.component(a), scc.component(c));
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let nodes: Vec<NodeId> = (0..50_000).map(|_| g.add_node(())).collect();
        for w in nodes.windows(2) {
            g.add_edge(w[0], w[1], ()).unwrap();
        }
        let scc = strongly_connected_components(&g);
        assert_eq!(scc.len(), 50_000);
    }
}
