//! Strongly connected components (Tarjan) and condensation.
//!
//! Workflow specifications are expected to be DAGs, but imported MOML files
//! and user-edited graphs may accidentally contain cycles. The validator and
//! the reachability matrix therefore condense general digraphs first.
//!
//! All algorithms here run over a [`Csr`] snapshot: neighbour access is a
//! contiguous slice index, and the iterative Tarjan keeps a cursor into that
//! slice per stack frame instead of re-collecting the successor list on
//! every re-entry (which made the old `DiGraph`-based version O(V·deg²) in
//! allocations on deep graphs).

use crate::csr::Csr;
use crate::digraph::DiGraph;
use crate::id::NodeId;

/// Result of a strongly-connected-component decomposition.
///
/// Member lists are stored **flat** — one concatenated `Vec<NodeId>` sliced
/// by an offsets array — rather than as a `Vec<Vec<NodeId>>`: a build over a
/// large DAG produces one component per node, and per-component heap
/// allocations dominated the decomposition cost.
#[derive(Debug, Clone)]
pub struct SccDecomposition {
    /// Concatenated member lists: component `c` occupies
    /// `members[offsets[c]..offsets[c + 1]]`, each slice sorted ascending.
    /// Components are emitted in reverse topological order of the
    /// condensation (standard Tarjan output order).
    members: Vec<NodeId>,
    /// `offsets.len() == len() + 1`; see [`SccDecomposition::members_of`].
    offsets: Vec<usize>,
    /// Dense lookup from [`NodeId::index`] to the component index. Removed
    /// nodes map to `usize::MAX`.
    pub component_of: Vec<usize>,
}

impl SccDecomposition {
    /// Number of components.
    #[must_use]
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Returns `true` if there are no components (empty graph).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns `true` if every component is a single node, i.e. the graph is
    /// acyclic (self-loops are impossible in [`DiGraph`]).
    #[must_use]
    pub fn is_acyclic(&self) -> bool {
        self.members.len() == self.len()
    }

    /// Returns the component index of a node, if the node exists.
    #[must_use]
    pub fn component(&self, node: NodeId) -> Option<usize> {
        self.component_of
            .get(node.index())
            .copied()
            .filter(|&c| c != usize::MAX)
    }

    /// The member nodes of component `comp`, sorted ascending.
    ///
    /// # Panics
    /// Panics if `comp >= self.len()`.
    #[must_use]
    pub fn members_of(&self, comp: usize) -> &[NodeId] {
        &self.members[self.offsets[comp]..self.offsets[comp + 1]]
    }

    /// Iterates over the member slices of all components in emission order.
    pub fn iter(&self) -> impl Iterator<Item = &[NodeId]> + '_ {
        (0..self.len()).map(|comp| self.members_of(comp))
    }
}

/// Computes the strongly connected components of the graph using an
/// iterative Tarjan algorithm (no recursion, so arbitrarily deep graphs are
/// safe). Convenience wrapper that snapshots the graph first; algorithms
/// that already hold a [`Csr`] should call [`strongly_connected_components_csr`].
pub fn strongly_connected_components<N, E>(graph: &DiGraph<N, E>) -> SccDecomposition {
    strongly_connected_components_csr(&Csr::from_graph(graph))
}

/// Iterative Tarjan over a CSR snapshot.
pub fn strongly_connected_components_csr(csr: &Csr) -> SccDecomposition {
    let bound = csr.node_bound();
    const UNVISITED: usize = usize::MAX;
    let mut index_of: Vec<usize> = vec![UNVISITED; bound];
    let mut low_link: Vec<usize> = vec![0; bound];
    let mut on_stack: Vec<bool> = vec![false; bound];
    let mut stack: Vec<NodeId> = Vec::new();
    let mut members: Vec<NodeId> = Vec::with_capacity(bound);
    let mut offsets: Vec<usize> = Vec::with_capacity(bound + 1);
    offsets.push(0);
    let mut component_of: Vec<usize> = vec![usize::MAX; bound];
    let mut next_index = 0usize;
    // Explicit DFS call stack: (node, cursor into its successor slice).
    let mut call_stack: Vec<(NodeId, usize)> = Vec::new();

    for root in csr.node_ids() {
        if index_of[root.index()] != UNVISITED {
            continue;
        }
        index_of[root.index()] = next_index;
        low_link[root.index()] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root.index()] = true;
        call_stack.push((root, 0));
        while let Some(&mut (v, ref mut cursor)) = call_stack.last_mut() {
            let successors = csr.successors(v);
            if let Some(&w) = successors.get(*cursor) {
                *cursor += 1;
                if index_of[w.index()] == UNVISITED {
                    index_of[w.index()] = next_index;
                    low_link[w.index()] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w.index()] = true;
                    call_stack.push((w, 0));
                } else if on_stack[w.index()] {
                    low_link[v.index()] = low_link[v.index()].min(index_of[w.index()]);
                }
                continue;
            }
            // all successors explored: close v, propagate its low link
            call_stack.pop();
            if let Some(&(parent, _)) = call_stack.last() {
                low_link[parent.index()] = low_link[parent.index()].min(low_link[v.index()]);
            }
            if low_link[v.index()] == index_of[v.index()] {
                let start = members.len();
                let comp = offsets.len() - 1;
                loop {
                    let w = stack.pop().expect("tarjan stack underflow");
                    on_stack[w.index()] = false;
                    component_of[w.index()] = comp;
                    members.push(w);
                    if w == v {
                        break;
                    }
                }
                if members.len() - start > 1 {
                    members[start..].sort_unstable();
                }
                offsets.push(members.len());
            }
        }
    }

    SccDecomposition {
        members,
        offsets,
        component_of,
    }
}

/// Builds the condensation of the graph: one node per strongly connected
/// component (payload: member node ids), and an edge between two components
/// whenever any cross-component edge exists in the input (deduplicated).
pub fn condensation<N, E>(graph: &DiGraph<N, E>) -> (DiGraph<Vec<NodeId>, ()>, SccDecomposition) {
    let csr = Csr::from_graph(graph);
    let scc = strongly_connected_components_csr(&csr);
    let mut condensed: DiGraph<Vec<NodeId>, ()> = DiGraph::with_capacity(scc.len(), scc.len());
    let comp_nodes: Vec<NodeId> = scc
        .iter()
        .map(|members| condensed.add_node(members.to_vec()))
        .collect();
    for (cs, ct) in cross_component_edges(&csr, &scc) {
        condensed
            .add_edge(comp_nodes[cs], comp_nodes[ct], ())
            .expect("component endpoints are valid");
    }
    (condensed, scc)
}

/// Builds the condensation directly as a [`Csr`] over component indices,
/// skipping the intermediate [`DiGraph`]. This is the form the reachability
/// matrix consumes: component `i` of `scc` becomes node `i`, and cross-
/// component edges are deduplicated.
#[must_use]
pub fn condense_to_csr(csr: &Csr, scc: &SccDecomposition) -> Csr {
    let edges = cross_component_edges(csr, scc);
    Csr::from_edge_list(scc.len(), &edges)
}

/// Deduplicated `(source component, target component)` pairs for all
/// cross-component edges of the snapshot, grouped by ascending source
/// component. Walking the flat member lists in component order lets a stamp
/// array dedupe targets in O(V + E) — no sort, no hashing.
fn cross_component_edges(csr: &Csr, scc: &SccDecomposition) -> Vec<(usize, usize)> {
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut seen: Vec<usize> = vec![usize::MAX; scc.len()];
    for cs in 0..scc.len() {
        for &source in scc.members_of(cs) {
            for &target in csr.successors(source) {
                let ct = scc.component_of[target.index()];
                if cs != ct && seen[ct] != cs {
                    seen[ct] = cs;
                    edges.push((cs, ct));
                }
            }
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topo::is_acyclic;

    #[test]
    fn acyclic_graph_has_singleton_components() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b, ()).unwrap();
        g.add_edge(b, c, ()).unwrap();
        let scc = strongly_connected_components(&g);
        assert_eq!(scc.len(), 3);
        assert!(scc.is_acyclic());
    }

    #[test]
    fn cycle_collapses_into_one_component() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        g.add_edge(a, b, ()).unwrap();
        g.add_edge(b, c, ()).unwrap();
        g.add_edge(c, a, ()).unwrap();
        g.add_edge(c, d, ()).unwrap();
        let scc = strongly_connected_components(&g);
        assert_eq!(scc.len(), 2);
        assert!(!scc.is_acyclic());
        assert_eq!(scc.component(a), scc.component(b));
        assert_eq!(scc.component(a), scc.component(c));
        assert_ne!(scc.component(a), scc.component(d));
    }

    #[test]
    fn condensation_is_acyclic_and_preserves_cross_edges() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        let e = g.add_node(());
        // cycle {a,b}, cycle {c,d}, bridge b->c, d->e
        g.add_edge(a, b, ()).unwrap();
        g.add_edge(b, a, ()).unwrap();
        g.add_edge(c, d, ()).unwrap();
        g.add_edge(d, c, ()).unwrap();
        g.add_edge(b, c, ()).unwrap();
        g.add_edge(d, e, ()).unwrap();
        let (condensed, scc) = condensation(&g);
        assert_eq!(scc.len(), 3);
        assert_eq!(condensed.node_count(), 3);
        assert_eq!(condensed.edge_count(), 2);
        assert!(is_acyclic(&condensed));
    }

    #[test]
    fn csr_condensation_matches_the_digraph_one() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let n: Vec<NodeId> = (0..6).map(|_| g.add_node(())).collect();
        for (s, t) in [(0, 1), (1, 0), (1, 2), (2, 3), (3, 2), (3, 4), (0, 5)] {
            g.add_edge(n[s], n[t], ()).unwrap();
        }
        let csr = Csr::from_graph(&g);
        let scc = strongly_connected_components_csr(&csr);
        let condensed_csr = condense_to_csr(&csr, &scc);
        let (condensed, scc2) = condensation(&g);
        assert_eq!(scc.len(), scc2.len());
        assert_eq!(condensed_csr.node_count(), condensed.node_count());
        assert_eq!(condensed_csr.edge_count(), condensed.edge_count());
        for comp in 0..scc.len() {
            let node = NodeId::from_index(comp);
            let mut got: Vec<usize> = condensed_csr
                .successors(node)
                .iter()
                .map(|c| c.index())
                .collect();
            got.sort_unstable();
            let mut want: Vec<usize> = condensed.successors(node).map(|c| c.index()).collect();
            want.sort_unstable();
            assert_eq!(got, want, "successor sets of component {comp}");
        }
    }

    #[test]
    fn empty_graph_condensation() {
        let g: DiGraph<(), ()> = DiGraph::new();
        let (condensed, scc) = condensation(&g);
        assert!(scc.is_empty());
        assert_eq!(condensed.node_count(), 0);
    }

    #[test]
    fn two_mutually_unreachable_cycles_stay_separate() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        g.add_edge(a, b, ()).unwrap();
        g.add_edge(b, a, ()).unwrap();
        g.add_edge(c, d, ()).unwrap();
        g.add_edge(d, c, ()).unwrap();
        let scc = strongly_connected_components(&g);
        assert_eq!(scc.len(), 2);
        assert_ne!(scc.component(a), scc.component(c));
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let nodes: Vec<NodeId> = (0..50_000).map(|_| g.add_node(())).collect();
        for w in nodes.windows(2) {
            g.add_edge(w[0], w[1], ()).unwrap();
        }
        let scc = strongly_connected_components(&g);
        assert_eq!(scc.len(), 50_000);
    }
}
