//! All-pairs reachability.
//!
//! Soundness checking (Definition 2.3 of the paper) reduces to many
//! `reach(u, v)` queries over the workflow specification. [`ReachMatrix`]
//! answers each query in O(1) after an O(V·E/64) bit-set propagation over a
//! topological order; cyclic inputs are handled by condensing strongly
//! connected components first.
//!
//! ## Storage layout
//!
//! The matrix is one flat row-major `Vec<u64>`: row `i` (the set of
//! components reachable from component `i`) occupies words
//! `i·stride .. (i+1)·stride` with
//! `stride = pad_words(comp_count.div_ceil(64))` — the stride is padded to
//! a multiple of [`crate::kernels::LANES`] so every row op runs in whole
//! 4-word SIMD blocks (see [`crate::kernels`]) with no remainder loop.
//! Building the matrix unions successor rows *in place* through disjoint
//! row slices — no per-edge row clone, no per-row allocation — and
//! consumers can borrow whole rows ([`ReachMatrix::reachable_row`]) to run
//! word-level bitset algebra (mask intersections, popcounts) instead of
//! per-node `reachable()` loops.
//!
//! ## Incremental maintenance
//!
//! A built matrix can absorb *additive* deltas in place instead of being
//! rebuilt ([`ReachMatrix::insert_node`], [`ReachMatrix::insert_edge`]).
//! Each delta is classified (see [`crate::delta::DeltaClass`]) and returns
//! the set of rows it changed as [`crate::delta::DirtyRows`]:
//!
//! * a node append adds one singleton component row;
//! * an edge insert that creates no cycle ORs the target's row into every
//!   row that reaches the source (monotone-safe propagation);
//! * an edge insert that closes a cycle additionally merges the condensation
//!   rows on the new cycle in place — the component indices stay stable, the
//!   merged components simply carry identical rows and are flagged cyclic.
//!
//! Removals are maintained *decrementally* ([`ReachMatrix::remove_edge`],
//! [`ReachMatrix::remove_node`]): SCC splits are detected by re-running
//! Tarjan on the deleted edge's component only, split parts keep the old
//! component index for one part and append fresh indices for the rest, and
//! exactly the rows that could reach the deleted edge's source component
//! (found by scanning its reachability column — the transposed form of a
//! reverse BFS) are re-derived in topological order. Cross-component
//! removals with a surviving alternate path are recognised as closure
//! no-ops without touching any row. The `_csr` variants
//! ([`ReachMatrix::remove_edge_csr`], [`ReachMatrix::remove_node_csr`])
//! walk a pre-removal [`Csr`] snapshot minus the deleted element, so a
//! cached spec-level CSR can serve removals without an O(V+E) re-snapshot.

use crate::bitset::FixedBitSet;
use crate::csr::Csr;
use crate::delta::{DeltaClass, DeltaOutcome, DirtyRows};
use crate::digraph::DiGraph;
use crate::error::GraphError;
use crate::id::NodeId;
use crate::scc::{condense_to_csr, strongly_connected_components_csr};
use crate::topo::topological_sort_csr;
use crate::traversal::{shortest_path, Direction};

/// Successor enumerator shared by the decremental re-derivation paths: calls
/// the sink with each out-neighbour of the given node, letting one Tarjan /
/// rebuild implementation walk either a live graph or a pre-removal CSR
/// snapshot with skip logic.
type SuccFn<'a> = dyn Fn(usize, &mut dyn FnMut(usize)) + 'a;

/// Dense all-pairs reachability over a directed graph.
///
/// `reachable(u, v)` is `true` iff there is a directed path from `u` to `v`
/// of length **zero or more** — i.e. every node reaches itself. This matches
/// the paper's use of "directed path between t1 and t2" where a composite
/// task containing a single boundary node is always sound.
#[derive(Debug, Clone)]
pub struct ReachMatrix {
    /// Row-major reachability words: row `i` is `words[i*stride..(i+1)*stride]`,
    /// bit `j` of row `i` set iff component `j` is reachable from component `i`.
    words: Vec<u64>,
    /// Words per row: `comp_count.div_ceil(64)` padded to a multiple of
    /// [`crate::kernels::LANES`]; pad words are always zero.
    stride: usize,
    /// Number of strongly connected components (= number of rows).
    comp_count: usize,
    /// Map from node index to component index (`usize::MAX` for removed nodes).
    component_of: Vec<usize>,
    /// Number of member nodes per component.
    comp_size: Vec<u32>,
    /// Components whose members lie on a cycle. At build time these are
    /// exactly the components with more than one member; incremental cycle
    /// merges ([`ReachMatrix::insert_edge`]) flag further components without
    /// renumbering them.
    cyclic: FixedBitSet,
    node_bound: usize,
}

impl ReachMatrix {
    /// Builds the reachability matrix for `graph`.
    ///
    /// Cycles are permitted: the matrix is computed on the condensation, and
    /// all members of a strongly connected component mutually reach each
    /// other.
    ///
    /// # Errors
    /// Currently infallible for any well-formed graph; the `Result` is kept
    /// so future storage strategies (e.g. external memory) can fail cleanly.
    pub fn build<N, E>(graph: &DiGraph<N, E>) -> Result<Self, GraphError> {
        Ok(Self::build_from_csr(&Csr::from_graph(graph)))
    }

    /// Builds the matrix from an existing CSR snapshot: SCC decomposition,
    /// condensation (also in CSR form) and one in-place bit-row propagation
    /// over the reverse topological order.
    #[must_use]
    pub fn build_from_csr(csr: &Csr) -> Self {
        let scc = strongly_connected_components_csr(csr);
        let condensed = condense_to_csr(csr, &scc);
        let order = topological_sort_csr(&condensed).expect("condensation is always acyclic");
        let comp_count = scc.len();
        let stride = crate::kernels::pad_words(comp_count.div_ceil(64));
        let mut words = vec![0u64; comp_count * stride];
        // Process in reverse topological order so successor rows are complete
        // before they are unioned into their predecessors.
        for &comp in order.iter().rev() {
            let i = comp.index();
            words[i * stride + i / 64] |= 1u64 << (i % 64);
            for &succ in condensed.successors(comp) {
                union_rows(&mut words, stride, i, succ.index());
            }
        }
        let comp_size: Vec<u32> = scc
            .iter()
            .map(|members| u32::try_from(members.len()).expect("component size exceeds u32"))
            .collect();
        let mut cyclic = FixedBitSet::with_capacity(comp_count);
        for (comp, &size) in comp_size.iter().enumerate() {
            if size > 1 {
                cyclic.insert(comp);
            }
        }
        ReachMatrix {
            words,
            stride,
            comp_count,
            component_of: scc.component_of,
            comp_size,
            cyclic,
            node_bound: csr.node_bound(),
        }
    }

    /// Returns `true` iff there is a directed path (possibly empty) from
    /// `from` to `to`.
    ///
    /// Unknown nodes are never reachable and reach nothing.
    #[must_use]
    pub fn reachable(&self, from: NodeId, to: NodeId) -> bool {
        let (Some(cf), Some(ct)) = (self.component_index(from), self.component_index(to)) else {
            return false;
        };
        self.words[cf * self.stride + ct / 64] & (1u64 << (ct % 64)) != 0
    }

    /// Returns `true` iff there is a path of length **one or more** from
    /// `from` to `to` (excludes the trivial empty path, unless the two nodes
    /// are on a common cycle).
    #[must_use]
    pub fn strictly_reachable(&self, from: NodeId, to: NodeId) -> bool {
        if from == to {
            // a node strictly reaches itself iff it lies on a cycle: its
            // component was multi-member at build time, or an incremental
            // edge insert later closed a cycle through it (DiGraph rejects
            // self-loops, so non-cyclic components stay cycle-free)
            return self
                .component_index(from)
                .is_some_and(|c| self.cyclic.contains(c));
        }
        self.reachable(from, to)
    }

    /// Returns the number of nodes `from` can reach (including itself):
    /// a popcount over the node's reachability row, weighted by the member
    /// counts of the reached components. O(comp_count/64) words — no node
    /// list and no allocation.
    #[must_use]
    pub fn descendant_count(&self, from: NodeId) -> usize {
        self.reachable_row(from).map_or(0, |row| row.node_count())
    }

    /// Borrows the reachability row of `from`'s strongly connected component,
    /// or `None` for unknown nodes. The row supports word-level set algebra;
    /// see [`ReachRow`].
    #[must_use]
    pub fn reachable_row(&self, from: NodeId) -> Option<ReachRow<'_>> {
        let comp = self.component_index(from)?;
        Some(ReachRow {
            matrix: self,
            words: self.row_words(comp),
        })
    }

    /// Number of strongly connected components (rows of the matrix).
    #[must_use]
    pub fn comp_count(&self) -> usize {
        self.comp_count
    }

    /// Words per reachability row (`comp_count.div_ceil(64)` padded to a
    /// multiple of [`crate::kernels::LANES`]).
    #[must_use]
    pub fn row_stride(&self) -> usize {
        self.stride
    }

    /// The component index of a node, or `None` for unknown/removed nodes.
    /// Component indices address matrix rows and row bits.
    #[must_use]
    pub fn component_of(&self, node: NodeId) -> Option<usize> {
        self.component_index(node)
    }

    /// Number of member nodes of a component (components with more than one
    /// member are cycles).
    ///
    /// # Panics
    /// Panics if `comp >= comp_count()`.
    #[must_use]
    pub fn component_size(&self, comp: usize) -> usize {
        self.comp_size[comp] as usize
    }

    /// The raw reachability words of one component's row; bit `j` is set iff
    /// component `j` is reachable. This is the substrate for bitset-algebra
    /// consumers (e.g. the definition-level validator's mask intersections).
    ///
    /// # Panics
    /// Panics if `comp >= comp_count()`.
    #[must_use]
    pub fn row_words(&self, comp: usize) -> &[u64] {
        &self.words[comp * self.stride..(comp + 1) * self.stride]
    }

    /// Upper bound on node indices this matrix was built for.
    #[must_use]
    pub fn node_bound(&self) -> usize {
        self.node_bound
    }

    /// Absorbs a freshly added, isolated node into the matrix in place: the
    /// node becomes a new singleton component with a self-only row. Existing
    /// component indices are untouched (the row buffer is re-laid-out only
    /// when the word stride has to grow).
    ///
    /// Nodes the matrix already knows are a no-op with an empty dirty set.
    pub fn insert_node(&mut self, node: NodeId) -> DeltaOutcome {
        let index = node.index();
        if self.component_index(node).is_some() {
            return DeltaOutcome {
                class: DeltaClass::MonotoneSafe,
                dirty: DirtyRows::clean(self.comp_count),
            };
        }
        let comp = self.comp_count;
        self.reserve_components(comp + 1);
        self.words[comp * self.stride + comp / 64] |= 1u64 << (comp % 64);
        if index >= self.component_of.len() {
            self.component_of.resize(index + 1, usize::MAX);
        }
        self.component_of[index] = comp;
        self.comp_size.push(1);
        self.comp_count = comp + 1;
        self.node_bound = self.node_bound.max(index + 1);
        let mut dirty = DirtyRows::clean(self.comp_count);
        dirty.mark(comp);
        DeltaOutcome {
            class: DeltaClass::MonotoneSafe,
            dirty,
        }
    }

    /// Absorbs an edge insert `from -> to` into the matrix in place,
    /// classifying the delta:
    ///
    /// * the endpoints share a component, or `to` was already reachable from
    ///   `from` — the closure is unchanged (monotone-safe, empty dirty set);
    /// * no cycle is created — the target's row is OR'd into every row that
    ///   reaches the source's component (monotone-safe propagation);
    /// * the edge closes a cycle (`from` was reachable from `to`) — the same
    ///   propagation runs, and the components on the new cycle end up with
    ///   identical rows and are flagged cyclic without renumbering
    ///   (local rebuild of exactly the touched condensation rows).
    ///
    /// The dirty set lists every component row whose contents or cyclicity
    /// changed.
    ///
    /// # Errors
    /// Both endpoints must already be known to the matrix (add nodes through
    /// [`ReachMatrix::insert_node`] first).
    pub fn insert_edge(&mut self, from: NodeId, to: NodeId) -> Result<DeltaOutcome, GraphError> {
        let cf = self
            .component_index(from)
            .ok_or(GraphError::InvalidNode(from))?;
        let ct = self
            .component_index(to)
            .ok_or(GraphError::InvalidNode(to))?;
        let mut dirty = DirtyRows::clean(self.comp_count);
        if cf == ct || self.row_has_bit(cf, ct) {
            return Ok(DeltaOutcome {
                class: DeltaClass::MonotoneSafe,
                dirty,
            });
        }
        // reach'(u, v) = reach(u, v) ∨ (reach(u, cf) ∧ reach(ct, v)): OR the
        // target's row into every row that reaches the source's component
        let creates_cycle = self.row_has_bit(ct, cf);
        let target_row: Vec<u64> = self.row_words(ct).to_vec();
        for u in 0..self.comp_count {
            if !self.row_has_bit(u, cf) {
                continue;
            }
            // pre-update membership test: u joins the new cycle iff it
            // reaches the source and the target reaches it
            let on_new_cycle = creates_cycle && target_row[u / 64] & (1u64 << (u % 64)) != 0;
            let row = &mut self.words[u * self.stride..(u + 1) * self.stride];
            let mut changed = crate::kernels::or_into(row, &target_row);
            if on_new_cycle && self.cyclic.insert(u) {
                changed = true;
            }
            if changed {
                dirty.mark(u);
            }
        }
        Ok(DeltaOutcome {
            class: if creates_cycle {
                DeltaClass::LocalRebuild
            } else {
                DeltaClass::MonotoneSafe
            },
            dirty,
        })
    }

    /// Maintains the matrix across the removal of edge `from -> to`:
    /// the decremental counterpart of [`ReachMatrix::insert_edge`]. Call
    /// *after* the edge has been removed from `graph` (the post-removal
    /// adjacency is consulted for surviving paths).
    ///
    /// The delta is always absorbed in place ([`DeltaClass::Decremental`]):
    ///
    /// * a cross-component removal whose source still reaches the target
    ///   through another edge is a closure no-op (clean dirty set);
    /// * otherwise only the rows that could reach the edge's source
    ///   component — found by scanning its reachability column, which is
    ///   exactly the reverse-reachable set over the condensation — are
    ///   re-derived in topological order;
    /// * an intra-component removal re-runs Tarjan on that component's
    ///   members only; if the cycle survives nothing changes, and on a split
    ///   one part keeps the old component index while the rest get fresh
    ///   appended indices, so untouched rows stay valid verbatim.
    ///
    /// # Errors
    /// Both endpoints must be known to the matrix.
    pub fn remove_edge<N, E>(
        &mut self,
        graph: &DiGraph<N, E>,
        from: NodeId,
        to: NodeId,
    ) -> Result<DeltaOutcome, GraphError> {
        let succ = |n: usize, f: &mut dyn FnMut(usize)| {
            for s in graph.successors(NodeId::from_index(n)) {
                f(s.index());
            }
        };
        self.remove_edge_inner(&succ, from, to)
    }

    /// [`ReachMatrix::remove_edge`] over a **pre-removal** [`Csr`] snapshot:
    /// one `from -> to` instance is skipped while walking successor slices,
    /// so a cached spec-level CSR can serve the removal without an O(V+E)
    /// re-snapshot.
    ///
    /// # Errors
    /// Both endpoints must be known to the matrix.
    pub fn remove_edge_csr(
        &mut self,
        csr: &Csr,
        from: NodeId,
        to: NodeId,
    ) -> Result<DeltaOutcome, GraphError> {
        let (fi, ti) = (from.index(), to.index());
        let succ = |n: usize, f: &mut dyn FnMut(usize)| {
            let mut skipped = false;
            for s in csr.successors(NodeId::from_index(n)) {
                let si = s.index();
                if !skipped && n == fi && si == ti {
                    skipped = true;
                    continue;
                }
                f(si);
            }
        };
        self.remove_edge_inner(&succ, from, to)
    }

    /// Maintains the matrix across the removal of `node` (and implicitly all
    /// its incident edges). Call *after* the node has been removed from
    /// `graph`.
    ///
    /// A singleton component becomes a dead slot: its row is zeroed, its
    /// index is never reused, and `comp_count` is unchanged — so surviving
    /// component indices stay stable. A multi-member (cyclic) component is
    /// re-decomposed over its surviving members exactly like an
    /// intra-component edge removal.
    ///
    /// # Errors
    /// The node must be known to the matrix.
    pub fn remove_node<N, E>(
        &mut self,
        graph: &DiGraph<N, E>,
        node: NodeId,
    ) -> Result<DeltaOutcome, GraphError> {
        let succ = |n: usize, f: &mut dyn FnMut(usize)| {
            for s in graph.successors(NodeId::from_index(n)) {
                f(s.index());
            }
        };
        self.remove_node_inner(&succ, node)
    }

    /// [`ReachMatrix::remove_node`] over a **pre-removal** [`Csr`] snapshot:
    /// the removed node is skipped as both source and target.
    ///
    /// # Errors
    /// The node must be known to the matrix.
    pub fn remove_node_csr(&mut self, csr: &Csr, node: NodeId) -> Result<DeltaOutcome, GraphError> {
        let dead = node.index();
        let succ = |n: usize, f: &mut dyn FnMut(usize)| {
            if n == dead {
                return;
            }
            for s in csr.successors(NodeId::from_index(n)) {
                let si = s.index();
                if si != dead {
                    f(si);
                }
            }
        };
        self.remove_node_inner(&succ, node)
    }

    fn remove_edge_inner(
        &mut self,
        succ_of: &SuccFn,
        from: NodeId,
        to: NodeId,
    ) -> Result<DeltaOutcome, GraphError> {
        let cf = self
            .component_index(from)
            .ok_or(GraphError::InvalidNode(from))?;
        let ct = self
            .component_index(to)
            .ok_or(GraphError::InvalidNode(to))?;
        // Note on representation: after incremental cycle merges one
        // *semantic* SCC may span several component indices carrying
        // identical rows, so "same SCC" is tested through mutual row bits,
        // not index equality.
        let intra_scc = self.row_has_bit(cf, ct) && self.row_has_bit(ct, cf);
        if !intra_scc {
            // Cross-SCC removal. If the source still reaches the target some
            // other way, every old path through the removed edge can be
            // rerouted and the closure is unchanged. Witness: a surviving
            // successor of `from` outside `from`'s SCC whose row holds ct —
            // such a row cannot owe its ct bit to the removed edge (the
            // witness path would have to re-enter `from` after `to`, i.e.
            // ct reaches cf, contradicting the cross-SCC case).
            let mut still_reachable = false;
            succ_of(from.index(), &mut |s| {
                if still_reachable {
                    return;
                }
                if let Some(cs) = self
                    .component_of
                    .get(s)
                    .copied()
                    .filter(|&c| c != usize::MAX)
                {
                    if self.row_has_bit(cs, ct) && !self.row_has_bit(cs, cf) {
                        still_reachable = true;
                    }
                }
            });
            if still_reachable {
                return Ok(DeltaOutcome {
                    class: DeltaClass::Decremental,
                    dirty: DirtyRows::clean(self.comp_count),
                });
            }
        } else {
            // Intra-SCC removal: if the SCC survives (the edge was internal
            // redundancy), its member set, successor set and hence the whole
            // closure are unchanged — detected by a Tarjan run restricted to
            // the SCC's members, which is tiny compared to the graph.
            let mut in_scc = vec![false; self.comp_count];
            for &c in &self.rows_reaching(cf) {
                if self.row_has_bit(cf, c) {
                    in_scc[c] = true;
                }
            }
            let members = self.members_of_comps(&in_scc);
            let parts = scc_of_subset(&members, succ_of);
            if parts.len() == 1 {
                return Ok(DeltaOutcome {
                    class: DeltaClass::Decremental,
                    dirty: DirtyRows::clean(self.comp_count),
                });
            }
        }
        let dirty = self.rederive_region(cf, succ_of);
        Ok(DeltaOutcome {
            class: DeltaClass::Decremental,
            dirty,
        })
    }

    fn remove_node_inner(
        &mut self,
        succ_of: &SuccFn,
        node: NodeId,
    ) -> Result<DeltaOutcome, GraphError> {
        let c = self
            .component_index(node)
            .ok_or(GraphError::InvalidNode(node))?;
        self.component_of[node.index()] = usize::MAX;
        let dirty = self.rederive_region(c, succ_of);
        Ok(DeltaOutcome {
            class: DeltaClass::Decremental,
            dirty,
        })
    }

    /// The removal slow path: re-derives the *region* that can reach
    /// component `pivot` (everything else keeps its row verbatim — a row
    /// that never reached the pivot cannot lose any path through it).
    ///
    /// 1. The affected component set is read off the pivot's reachability
    ///    *column* — the transposed, already-transitively-closed form of a
    ///    reverse BFS over the condensation.
    /// 2. One Tarjan run restricted to the region's member nodes recomputes
    ///    the true SCC structure there (the region is closed under mutual
    ///    reachability, so induced SCCs are exact).
    /// 3. Indices are reassigned stably: an SCC that matches an old
    ///    component exactly keeps its index, shrunken/split groups reuse
    ///    their members' old indices where possible, genuinely new groups
    ///    get fresh appended indices, and old indices left without members
    ///    become dead slots. Unaffected rows stay valid under all of this
    ///    because they hold no bit of any region component.
    /// 4. Rows are rebuilt sinks-first (Tarjan emission order is reverse
    ///    topological), unioning successor rows — successors outside the
    ///    region contribute their final, untouched rows.
    ///
    /// Every region row (and dead slot) is marked dirty.
    fn rederive_region(&mut self, pivot: usize, succ_of: &SuccFn) -> DirtyRows {
        let affected = self.rows_reaching(pivot);
        let mut in_region = vec![false; self.comp_count];
        for &c in &affected {
            in_region[c] = true;
        }
        let members = self.members_of_comps(&in_region);
        let parts = scc_of_subset(&members, succ_of);
        // --- index assignment ---
        let mut consumed = vec![false; self.comp_count];
        let mut assignment: Vec<usize> = vec![usize::MAX; parts.len()];
        // pass 1: exact matches keep their index (the common case: an
        // untouched ancestor component survives as an identical part)
        for (k, part) in parts.iter().enumerate() {
            let c0 = self.component_of[part[0]];
            if part.iter().all(|&n| self.component_of[n] == c0)
                && self.comp_size[c0] as usize == part.len()
                && !consumed[c0]
            {
                assignment[k] = c0;
                consumed[c0] = true;
            }
        }
        // pass 2: changed groups reuse the smallest unconsumed index among
        // their members' old components; genuinely new groups go fresh
        let mut fresh_needed = 0usize;
        for (k, part) in parts.iter().enumerate() {
            if assignment[k] != usize::MAX {
                continue;
            }
            let pick = part
                .iter()
                .map(|&n| self.component_of[n])
                .filter(|&c| !consumed[c])
                .min();
            if let Some(c) = pick {
                assignment[k] = c;
                consumed[c] = true;
            } else {
                fresh_needed += 1;
            }
        }
        if fresh_needed > 0 {
            self.reserve_components(self.comp_count + fresh_needed);
            for slot in assignment.iter_mut() {
                if *slot == usize::MAX {
                    *slot = self.comp_count;
                    self.comp_count += 1;
                    self.comp_size.push(0);
                }
            }
        }
        let mut dirty = DirtyRows::clean(self.comp_count);
        // dead slots: affected indices whose members all moved elsewhere (or
        // whose only member was just removed) — zeroed, never reused
        for &c in &affected {
            if !consumed[c] {
                self.comp_size[c] = 0;
                self.cyclic.remove(c);
                self.words[c * self.stride..(c + 1) * self.stride].fill(0);
                dirty.mark(c);
            }
        }
        // apply the assignment before any row math so successor lookups see
        // the final component indices
        for (k, part) in parts.iter().enumerate() {
            let c = assignment[k];
            for &n in part {
                self.component_of[n] = c;
            }
            self.comp_size[c] = u32::try_from(part.len()).expect("component size exceeds u32");
            if part.len() > 1 {
                self.cyclic.insert(c);
            } else {
                self.cyclic.remove(c);
            }
        }
        // --- row recomputation, sinks first ---
        let mut stamp = vec![usize::MAX; self.comp_count];
        for (k, part) in parts.iter().enumerate() {
            let c = assignment[k];
            let row_start = c * self.stride;
            self.words[row_start..row_start + self.stride].fill(0);
            self.words[row_start + c / 64] |= 1u64 << (c % 64);
            for &m in part {
                let mut succ_comps: Vec<usize> = Vec::new();
                succ_of(m, &mut |s| {
                    let Some(&cs) = self.component_of.get(s) else {
                        return;
                    };
                    if cs == usize::MAX || cs == c || stamp[cs] == k {
                        return;
                    }
                    stamp[cs] = k;
                    succ_comps.push(cs);
                });
                for cs in succ_comps {
                    union_rows(&mut self.words, self.stride, c, cs);
                }
            }
            dirty.mark(c);
        }
        dirty
    }

    /// Component indices whose rows hold bit `comp` — everything that can
    /// reach `comp`, itself included.
    fn rows_reaching(&self, comp: usize) -> Vec<usize> {
        let word = comp / 64;
        let mask = 1u64 << (comp % 64);
        (0..self.comp_count)
            .filter(|&u| self.words[u * self.stride + word] & mask != 0)
            .collect()
    }

    /// Member node indices of the components marked in `in_set` (one scan
    /// over `component_of`; only used on the removal slow paths).
    fn members_of_comps(&self, in_set: &[bool]) -> Vec<usize> {
        self.component_of
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c != usize::MAX && in_set.get(c).copied().unwrap_or(false))
            .map(|(n, _)| n)
            .collect()
    }

    /// Ensures the row buffer can hold `target` components, widening the
    /// (padded) stride when needed. `comp_count` itself is the caller's to
    /// update.
    fn reserve_components(&mut self, target: usize) {
        let new_stride = crate::kernels::pad_words(target.div_ceil(64));
        if new_stride != self.stride {
            // widen every row; component indices and row order are preserved
            let mut widened = vec![0u64; target * new_stride];
            for row in 0..self.comp_count {
                widened[row * new_stride..row * new_stride + self.stride]
                    .copy_from_slice(&self.words[row * self.stride..(row + 1) * self.stride]);
            }
            self.words = widened;
            self.stride = new_stride;
        } else {
            self.words.resize(target * self.stride, 0);
        }
        self.cyclic.grow(target);
    }

    fn row_has_bit(&self, row: usize, comp: usize) -> bool {
        self.words[row * self.stride + comp / 64] & (1u64 << (comp % 64)) != 0
    }

    fn component_index(&self, node: NodeId) -> Option<usize> {
        self.component_of
            .get(node.index())
            .copied()
            .filter(|&c| c != usize::MAX)
    }
}

/// Iterative Tarjan restricted to a node subset: edges leaving the subset
/// are ignored. Returns the strongly connected components of the induced
/// subgraph as lists of node indices. This is the split detector for
/// intra-component removals — O(|members| + induced edges), independent of
/// the full graph size.
fn scc_of_subset(members: &[usize], succ_of: &SuccFn) -> Vec<Vec<usize>> {
    use std::collections::HashMap;
    const UNVISITED: usize = usize::MAX;
    let local: HashMap<usize, usize> = members.iter().enumerate().map(|(i, &n)| (n, i)).collect();
    let n = members.len();
    // local successor lists materialised once (the callback shape does not
    // support cursor-style re-entry into a borrowed slice)
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, &m) in members.iter().enumerate() {
        succ_of(m, &mut |s| {
            if let Some(&j) = local.get(&s) {
                succs[i].push(j);
            }
        });
    }
    let mut index_of = vec![UNVISITED; n];
    let mut low_link = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut parts: Vec<Vec<usize>> = Vec::new();
    let mut next_index = 0usize;
    let mut call_stack: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if index_of[root] != UNVISITED {
            continue;
        }
        index_of[root] = next_index;
        low_link[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;
        call_stack.push((root, 0));
        while let Some(&mut (v, ref mut cursor)) = call_stack.last_mut() {
            if let Some(&w) = succs[v].get(*cursor) {
                *cursor += 1;
                if index_of[w] == UNVISITED {
                    index_of[w] = next_index;
                    low_link[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call_stack.push((w, 0));
                } else if on_stack[w] {
                    low_link[v] = low_link[v].min(index_of[w]);
                }
                continue;
            }
            call_stack.pop();
            if let Some(&(parent, _)) = call_stack.last() {
                low_link[parent] = low_link[parent].min(low_link[v]);
            }
            if low_link[v] == index_of[v] {
                let mut part = Vec::new();
                loop {
                    let w = stack.pop().expect("tarjan stack underflow");
                    on_stack[w] = false;
                    part.push(members[w]);
                    if w == v {
                        break;
                    }
                }
                parts.push(part);
            }
        }
    }
    parts
}

/// One borrowed row of a [`ReachMatrix`]: the set of components reachable
/// from a node, with word-level operations so consumers can answer
/// set-shaped questions (counts, intersections) without per-node queries.
#[derive(Debug, Clone, Copy)]
pub struct ReachRow<'a> {
    matrix: &'a ReachMatrix,
    words: &'a [u64],
}

impl ReachRow<'_> {
    /// Returns `true` iff `to` is reachable from the row's origin.
    #[must_use]
    pub fn contains(&self, to: NodeId) -> bool {
        self.matrix
            .component_index(to)
            .is_some_and(|c| self.words[c / 64] & (1u64 << (c % 64)) != 0)
    }

    /// Number of reachable *nodes* (origin included): popcount over the row,
    /// weighted by component member counts.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.components()
            .map(|c| self.matrix.comp_size[c] as usize)
            .sum()
    }

    /// Number of reachable *components* (a plain popcount).
    #[must_use]
    pub fn component_count(&self) -> usize {
        crate::kernels::popcount(self.words)
    }

    /// Iterates over the reachable component indices in ascending order.
    pub fn components(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            crate::bitset::OnesInWord { word }.map(move |bit| wi * 64 + bit)
        })
    }

    /// The raw row words (bit `j` ⇔ component `j` reachable).
    #[must_use]
    pub fn words(&self) -> &[u64] {
        self.words
    }

    /// Returns `true` iff the row shares a component with `mask`, given as
    /// raw words over component indices (same stride as the row).
    ///
    /// # Panics
    /// Panics if `mask` is shorter than the row.
    #[must_use]
    pub fn intersects_words(&self, mask: &[u64]) -> bool {
        assert!(
            mask.len() >= self.words.len(),
            "mask shorter than reachability row"
        );
        crate::kernels::and_any(self.words, mask)
    }
}

/// ORs row `src` into row `dst` in place. The rows are disjoint because the
/// condensation is acyclic and self-loop free, so `split_at_mut` yields one
/// mutable and one shared slice without copying either row.
fn union_rows(words: &mut [u64], stride: usize, dst: usize, src: usize) {
    debug_assert_ne!(dst, src, "condensation rows cannot self-union");
    if dst < src {
        let (head, tail) = words.split_at_mut(src * stride);
        let dst_row = &mut head[dst * stride..dst * stride + stride];
        let src_row = &tail[..stride];
        crate::kernels::or_into(dst_row, src_row);
    } else {
        let (head, tail) = words.split_at_mut(dst * stride);
        let src_row = &head[src * stride..src * stride + stride];
        let dst_row = &mut tail[..stride];
        crate::kernels::or_into(dst_row, src_row);
    }
}

/// Computes the set of ancestors of `node` (nodes that can reach it),
/// excluding the node itself.
pub fn ancestors<N, E>(graph: &DiGraph<N, E>, node: NodeId) -> Vec<NodeId> {
    let mut nodes = crate::traversal::bfs(graph, &[node], Direction::Backward);
    nodes.retain(|&n| n != node);
    nodes.sort_unstable();
    nodes
}

/// Computes the set of descendants of `node` (nodes it can reach), excluding
/// the node itself.
pub fn descendants<N, E>(graph: &DiGraph<N, E>, node: NodeId) -> Vec<NodeId> {
    let mut nodes = crate::traversal::bfs(graph, &[node], Direction::Forward);
    nodes.retain(|&n| n != node);
    nodes.sort_unstable();
    nodes
}

/// Produces one witness path demonstrating that `to` is reachable from
/// `from`, if any. Used by the validator to explain soundness violations and
/// spurious view dependencies to users.
pub fn witness_path<N, E>(graph: &DiGraph<N, E>, from: NodeId, to: NodeId) -> Option<Vec<NodeId>> {
    shortest_path(graph, from, to)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn diamond() -> (DiGraph<(), ()>, Vec<NodeId>) {
        let mut g = DiGraph::new();
        let n: Vec<NodeId> = (0..4).map(|_| g.add_node(())).collect();
        g.add_edge(n[0], n[1], ()).unwrap();
        g.add_edge(n[0], n[2], ()).unwrap();
        g.add_edge(n[1], n[3], ()).unwrap();
        g.add_edge(n[2], n[3], ()).unwrap();
        (g, n)
    }

    #[test]
    fn reachability_in_a_diamond() {
        let (g, n) = diamond();
        let r = ReachMatrix::build(&g).unwrap();
        assert!(r.reachable(n[0], n[3]));
        assert!(r.reachable(n[0], n[0]));
        assert!(!r.reachable(n[3], n[0]));
        assert!(!r.reachable(n[1], n[2]));
        assert!(r.strictly_reachable(n[0], n[1]));
        assert!(!r.strictly_reachable(n[1], n[1]));
    }

    #[test]
    fn reachability_through_a_cycle() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        g.add_edge(a, b, ()).unwrap();
        g.add_edge(b, c, ()).unwrap();
        g.add_edge(c, b, ()).unwrap();
        g.add_edge(c, d, ()).unwrap();
        let r = ReachMatrix::build(&g).unwrap();
        assert!(r.reachable(a, d));
        assert!(r.reachable(b, c));
        assert!(r.reachable(c, b));
        assert!(!r.reachable(d, a));
    }

    #[test]
    fn self_queries_are_strict_only_on_cycles() {
        // a -> b -> c -> b (b and c share a cycle), c -> d
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        g.add_edge(a, b, ()).unwrap();
        g.add_edge(b, c, ()).unwrap();
        g.add_edge(c, b, ()).unwrap();
        g.add_edge(c, d, ()).unwrap();
        let r = ReachMatrix::build(&g).unwrap();
        // on-cycle nodes strictly reach themselves (regression: this used to
        // unconditionally return false)
        assert!(r.strictly_reachable(b, b));
        assert!(r.strictly_reachable(c, c));
        // off-cycle nodes do not
        assert!(!r.strictly_reachable(a, a));
        assert!(!r.strictly_reachable(d, d));
        // unknown nodes do not
        assert!(!r.strictly_reachable(NodeId::from_index(50), NodeId::from_index(50)));
    }

    #[test]
    fn unknown_nodes_are_unreachable() {
        let (g, n) = diamond();
        let r = ReachMatrix::build(&g).unwrap();
        let ghost = NodeId::from_index(77);
        assert!(!r.reachable(ghost, n[0]));
        assert!(!r.reachable(n[0], ghost));
        assert!(r.reachable_row(ghost).is_none());
        assert_eq!(r.descendant_count(ghost), 0);
    }

    #[test]
    fn descendant_count_popcounts_scc_sizes() {
        // a -> {b <-> c} -> d: a reaches 4 nodes, b reaches 3, d reaches 1
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        g.add_edge(a, b, ()).unwrap();
        g.add_edge(b, c, ()).unwrap();
        g.add_edge(c, b, ()).unwrap();
        g.add_edge(c, d, ()).unwrap();
        let r = ReachMatrix::build(&g).unwrap();
        assert_eq!(r.descendant_count(a), 4);
        assert_eq!(r.descendant_count(b), 3);
        assert_eq!(r.descendant_count(c), 3);
        assert_eq!(r.descendant_count(d), 1);
    }

    #[test]
    fn rows_expose_word_level_algebra() {
        let (g, n) = diamond();
        let r = ReachMatrix::build(&g).unwrap();
        let row = r.reachable_row(n[0]).unwrap();
        assert!(row.contains(n[3]));
        assert_eq!(row.node_count(), 4);
        assert_eq!(row.component_count(), 4);
        assert_eq!(row.components().count(), 4);
        assert_eq!(row.words().len(), r.row_stride());
        // a mask holding only n[3]'s component intersects the row
        let mut mask = vec![0u64; r.row_stride()];
        let c3 = r.component_of(n[3]).unwrap();
        mask[c3 / 64] |= 1 << (c3 % 64);
        assert!(row.intersects_words(&mask));
        // the row of the sink intersects nothing but itself
        let sink_row = r.reachable_row(n[3]).unwrap();
        let mut other = vec![0u64; r.row_stride()];
        let c0 = r.component_of(n[0]).unwrap();
        other[c0 / 64] |= 1 << (c0 % 64);
        assert!(!sink_row.intersects_words(&other));
    }

    #[test]
    fn ancestors_and_descendants() {
        let (g, n) = diamond();
        assert_eq!(ancestors(&g, n[3]), vec![n[0], n[1], n[2]]);
        assert_eq!(descendants(&g, n[0]), vec![n[1], n[2], n[3]]);
        assert_eq!(ancestors(&g, n[0]), vec![]);
        assert_eq!(descendants(&g, n[3]), vec![]);
    }

    #[test]
    fn witness_path_matches_reachability() {
        let (g, n) = diamond();
        let r = ReachMatrix::build(&g).unwrap();
        let path = witness_path(&g, n[0], n[3]).unwrap();
        assert_eq!(path.first(), Some(&n[0]));
        assert_eq!(path.last(), Some(&n[3]));
        assert!(r.reachable(n[0], n[3]));
        assert!(witness_path(&g, n[3], n[0]).is_none());
    }

    #[test]
    fn matrix_handles_more_than_64_components() {
        // a 200-node chain spans multiple row words
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let nodes: Vec<NodeId> = (0..200).map(|_| g.add_node(())).collect();
        for w in nodes.windows(2) {
            g.add_edge(w[0], w[1], ()).unwrap();
        }
        let r = ReachMatrix::build(&g).unwrap();
        assert_eq!(r.row_stride(), 200usize.div_ceil(64));
        assert!(r.reachable(nodes[0], nodes[199]));
        assert!(!r.reachable(nodes[199], nodes[0]));
        assert_eq!(r.descendant_count(nodes[0]), 200);
        assert_eq!(r.descendant_count(nodes[120]), 80);
    }

    fn arbitrary_dag(max_nodes: usize) -> impl Strategy<Value = DiGraph<(), ()>> {
        (2..max_nodes)
            .prop_flat_map(|n| {
                let edges = proptest::collection::vec((0..n, 0..n), 0..(n * 2));
                (Just(n), edges)
            })
            .prop_map(|(n, raw_edges)| {
                let mut g: DiGraph<(), ()> = DiGraph::new();
                let nodes: Vec<NodeId> = (0..n).map(|_| g.add_node(())).collect();
                for (a, b) in raw_edges {
                    // orient edges from lower to higher index to guarantee a DAG
                    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                    if lo != hi {
                        let _ = g.add_edge_unique(nodes[lo], nodes[hi], ());
                    }
                }
                g
            })
    }

    /// Arbitrary digraphs *including cycles*: edges keep their raw
    /// orientation, so back edges (and thus non-trivial SCCs) are common.
    fn arbitrary_digraph(max_nodes: usize) -> impl Strategy<Value = DiGraph<(), ()>> {
        (2..max_nodes)
            .prop_flat_map(|n| {
                let edges = proptest::collection::vec((0..n, 0..n), 0..(n * 2));
                (Just(n), edges)
            })
            .prop_map(|(n, raw_edges)| {
                let mut g: DiGraph<(), ()> = DiGraph::new();
                let nodes: Vec<NodeId> = (0..n).map(|_| g.add_node(())).collect();
                for (a, b) in raw_edges {
                    if a != b {
                        let _ = g.add_edge_unique(nodes[a], nodes[b], ());
                    }
                }
                g
            })
    }

    fn assert_matrix_matches_bfs(g: &DiGraph<(), ()>) {
        let r = ReachMatrix::build(g).unwrap();
        let nodes: Vec<NodeId> = g.node_ids().collect();
        for &u in &nodes {
            let reach_bfs = crate::traversal::reachable_set(g, &[u], Direction::Forward);
            let row = r.reachable_row(u).unwrap();
            for &v in &nodes {
                assert_eq!(r.reachable(u, v), reach_bfs.contains(v.index()));
                assert_eq!(row.contains(v), reach_bfs.contains(v.index()));
            }
            assert_eq!(r.descendant_count(u), reach_bfs.count_ones());
            assert_eq!(row.node_count(), reach_bfs.count_ones());
        }
    }

    /// Asserts the incrementally maintained matrix answers every query
    /// exactly like a matrix rebuilt from scratch over the same graph.
    /// (Component *numbering* may differ after cycle merges; equality is
    /// checked on the query surface, which is what consumers observe.)
    fn assert_matches_fresh_build(incremental: &ReachMatrix, g: &DiGraph<(), ()>) {
        let fresh = ReachMatrix::build(g).unwrap();
        let nodes: Vec<NodeId> = g.node_ids().collect();
        for &u in &nodes {
            for &v in &nodes {
                assert_eq!(
                    incremental.reachable(u, v),
                    fresh.reachable(u, v),
                    "reachable({u:?}, {v:?})"
                );
                assert_eq!(
                    incremental.strictly_reachable(u, v),
                    fresh.strictly_reachable(u, v),
                    "strictly_reachable({u:?}, {v:?})"
                );
            }
            assert_eq!(
                incremental.descendant_count(u),
                fresh.descendant_count(u),
                "descendant_count({u:?})"
            );
            assert_eq!(
                incremental.reachable_row(u).unwrap().node_count(),
                fresh.reachable_row(u).unwrap().node_count(),
                "row node_count({u:?})"
            );
        }
    }

    #[test]
    fn insert_edge_propagates_to_ancestors() {
        // chain a -> b -> c, then insert c -> d (d appended after build)
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b, ()).unwrap();
        g.add_edge(b, c, ()).unwrap();
        let mut m = ReachMatrix::build(&g).unwrap();
        let d = g.add_node(());
        let out = m.insert_node(d);
        assert_eq!(out.class, DeltaClass::MonotoneSafe);
        assert_eq!(out.dirty.count(), Some(1));
        g.add_edge(c, d, ()).unwrap();
        let out = m.insert_edge(c, d).unwrap();
        assert_eq!(out.class, DeltaClass::MonotoneSafe);
        // a, b, c rows all gained d
        assert_eq!(out.dirty.count(), Some(3));
        assert_matches_fresh_build(&m, &g);
        assert!(m.reachable(a, d));
        assert!(!m.reachable(d, a));
    }

    #[test]
    fn insert_edge_already_reachable_is_a_clean_no_op() {
        let (mut g, n) = diamond();
        let mut m = ReachMatrix::build(&g).unwrap();
        // n0 already reaches n3 through both branches
        g.add_edge(n[0], n[3], ()).unwrap();
        let out = m.insert_edge(n[0], n[3]).unwrap();
        assert_eq!(out.class, DeltaClass::MonotoneSafe);
        assert!(out.dirty.is_clean());
        assert_matches_fresh_build(&m, &g);
    }

    #[test]
    fn insert_edge_closing_a_cycle_merges_rows_locally() {
        // a -> b -> c -> d, then insert d -> b: {b, c, d} become one cycle
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let nodes: Vec<NodeId> = (0..4).map(|_| g.add_node(())).collect();
        for w in nodes.windows(2) {
            g.add_edge(w[0], w[1], ()).unwrap();
        }
        let mut m = ReachMatrix::build(&g).unwrap();
        assert!(!m.strictly_reachable(nodes[2], nodes[2]));
        g.add_edge(nodes[3], nodes[1], ()).unwrap();
        let out = m.insert_edge(nodes[3], nodes[1]).unwrap();
        assert_eq!(out.class, DeltaClass::LocalRebuild);
        assert_matches_fresh_build(&m, &g);
        for &on_cycle in &nodes[1..] {
            assert!(m.strictly_reachable(on_cycle, on_cycle));
            assert_eq!(m.descendant_count(on_cycle), 3);
        }
        assert!(!m.strictly_reachable(nodes[0], nodes[0]));
        assert!(m.reachable(nodes[3], nodes[1]));
        assert!(!m.reachable(nodes[1], nodes[0]));
    }

    #[test]
    fn insert_node_widens_the_stride_past_block_boundaries() {
        // the stride is padded to 4-word (256-bit) blocks: build at 255
        // nodes, then append nodes across the 256-component boundary
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let nodes: Vec<NodeId> = (0..255).map(|_| g.add_node(())).collect();
        for w in nodes.windows(2) {
            g.add_edge(w[0], w[1], ()).unwrap();
        }
        let mut m = ReachMatrix::build(&g).unwrap();
        assert_eq!(m.row_stride(), 4);
        for _ in 0..3 {
            let fresh = g.add_node(());
            m.insert_node(fresh);
            let tail = *g
                .node_ids()
                .collect::<Vec<_>>()
                .iter()
                .rev()
                .nth(1)
                .unwrap();
            g.add_edge(tail, fresh, ()).unwrap();
            m.insert_edge(tail, fresh).unwrap();
        }
        assert_eq!(m.row_stride(), 8);
        assert!(m.reachable(nodes[0], g.node_ids().last().unwrap()));
        assert_eq!(m.descendant_count(nodes[0]), 258);
        assert_eq!(m.descendant_count(nodes[254]), 4);
    }

    #[test]
    fn small_matrices_are_padded_to_one_block() {
        let (g, _) = diamond();
        let m = ReachMatrix::build(&g).unwrap();
        assert_eq!(m.row_stride(), 4);
        for comp in 0..m.comp_count() {
            assert_eq!(m.row_words(comp).len(), 4);
        }
    }

    #[test]
    fn remove_edge_with_alternate_path_is_a_clean_no_op() {
        // 0 -> 1 -> 2 plus shortcut 0 -> 2: removing the shortcut changes
        // nothing in the closure
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let n: Vec<NodeId> = (0..3).map(|_| g.add_node(())).collect();
        g.add_edge(n[0], n[1], ()).unwrap();
        g.add_edge(n[1], n[2], ()).unwrap();
        let shortcut = g.add_edge(n[0], n[2], ()).unwrap();
        let mut m = ReachMatrix::build(&g).unwrap();
        g.remove_edge(shortcut).unwrap();
        let out = m.remove_edge(&g, n[0], n[2]).unwrap();
        assert_eq!(out.class, DeltaClass::Decremental);
        assert!(out.dirty.is_clean());
        assert_matches_fresh_build(&m, &g);
    }

    #[test]
    fn remove_edge_prunes_exactly_the_ancestor_rows() {
        // chain a -> b -> c -> d, remove c -> d: rows a, b, c lose d
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let n: Vec<NodeId> = (0..4).map(|_| g.add_node(())).collect();
        for w in n.windows(2) {
            g.add_edge(w[0], w[1], ()).unwrap();
        }
        let edge = g.find_edge(n[2], n[3]).unwrap();
        let mut m = ReachMatrix::build(&g).unwrap();
        assert!(m.reachable(n[0], n[3]));
        g.remove_edge(edge).unwrap();
        let out = m.remove_edge(&g, n[2], n[3]).unwrap();
        assert_eq!(out.class, DeltaClass::Decremental);
        assert_eq!(out.dirty.count(), Some(3));
        // d's own row was untouched
        let cd = m.component_of(n[3]).unwrap();
        assert!(!out.dirty.contains(cd));
        assert_matches_fresh_build(&m, &g);
        assert!(!m.reachable(n[0], n[3]));
        assert!(m.reachable(n[0], n[2]));
    }

    #[test]
    fn remove_edge_splits_a_cycle_into_stable_and_fresh_components() {
        // a -> b -> c -> d -> b: removing d -> b un-closes the cycle
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let n: Vec<NodeId> = (0..4).map(|_| g.add_node(())).collect();
        g.add_edge(n[0], n[1], ()).unwrap();
        g.add_edge(n[1], n[2], ()).unwrap();
        g.add_edge(n[2], n[3], ()).unwrap();
        let back = g.add_edge(n[3], n[1], ()).unwrap();
        let mut m = ReachMatrix::build(&g).unwrap();
        assert!(m.strictly_reachable(n[1], n[1]));
        let comp_count_before = m.comp_count();
        g.remove_edge(back).unwrap();
        let out = m.remove_edge(&g, n[3], n[1]).unwrap();
        assert_eq!(out.class, DeltaClass::Decremental);
        // the 3-member cycle split into 3 singleton components: 2 appended
        assert_eq!(m.comp_count(), comp_count_before + 2);
        assert_matches_fresh_build(&m, &g);
        for &v in &n {
            assert!(!m.strictly_reachable(v, v));
        }
        assert!(m.reachable(n[1], n[3]));
        assert!(!m.reachable(n[3], n[1]));
    }

    #[test]
    fn remove_edge_inside_a_redundant_cycle_is_clean() {
        // b <-> c with both b -> c -> b and c -> b via an extra node d:
        // b -> c, c -> d, d -> b, c -> b; removing c -> b keeps the SCC
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        g.add_edge(b, c, ()).unwrap();
        g.add_edge(c, d, ()).unwrap();
        g.add_edge(d, b, ()).unwrap();
        let redundant = g.add_edge(c, b, ()).unwrap();
        let mut m = ReachMatrix::build(&g).unwrap();
        g.remove_edge(redundant).unwrap();
        let out = m.remove_edge(&g, c, b).unwrap();
        assert_eq!(out.class, DeltaClass::Decremental);
        assert!(out.dirty.is_clean());
        assert_matches_fresh_build(&m, &g);
        assert!(m.strictly_reachable(b, b));
    }

    #[test]
    fn remove_node_leaves_a_dead_slot() {
        let (mut g, n) = diamond();
        let mut m = ReachMatrix::build(&g).unwrap();
        let comp_count_before = m.comp_count();
        g.remove_node(n[1]).unwrap();
        let out = m.remove_node(&g, n[1]).unwrap();
        assert_eq!(out.class, DeltaClass::Decremental);
        // indices stay stable, the slot just dies
        assert_eq!(m.comp_count(), comp_count_before);
        assert!(m.component_of(n[1]).is_none());
        assert!(!m.reachable(n[0], n[1]));
        assert!(!m.reachable(n[1], n[3]));
        assert_matches_fresh_build(&m, &g);
        // the diamond still closes through the other branch
        assert!(m.reachable(n[0], n[3]));
        assert_eq!(m.descendant_count(n[0]), 3);
    }

    #[test]
    fn remove_node_from_a_cycle_redecomposes_the_survivors() {
        // a -> b, cycle b -> c -> d -> b, d -> e; removing c splits the
        // cycle into singletons and breaks a's path to d and e... except
        // b -> d? no such edge, so a keeps only b
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let n: Vec<NodeId> = (0..5).map(|_| g.add_node(())).collect();
        g.add_edge(n[0], n[1], ()).unwrap();
        g.add_edge(n[1], n[2], ()).unwrap();
        g.add_edge(n[2], n[3], ()).unwrap();
        g.add_edge(n[3], n[1], ()).unwrap();
        g.add_edge(n[3], n[4], ()).unwrap();
        let mut m = ReachMatrix::build(&g).unwrap();
        assert_eq!(m.descendant_count(n[0]), 5);
        g.remove_node(n[2]).unwrap();
        let out = m.remove_node(&g, n[2]).unwrap();
        assert_eq!(out.class, DeltaClass::Decremental);
        assert_matches_fresh_build(&m, &g);
        assert!(!m.strictly_reachable(n[1], n[1]));
        assert!(!m.reachable(n[1], n[3]));
        assert!(m.reachable(n[3], n[1]));
        assert_eq!(m.descendant_count(n[0]), 2);
    }

    #[test]
    fn remove_edge_csr_variant_matches_the_graph_variant() {
        // pre-removal CSR snapshot serves the removal: same behaviour as
        // consulting the post-removal DiGraph
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let n: Vec<NodeId> = (0..5).map(|_| g.add_node(())).collect();
        g.add_edge(n[0], n[1], ()).unwrap();
        g.add_edge(n[1], n[2], ()).unwrap();
        g.add_edge(n[2], n[3], ()).unwrap();
        g.add_edge(n[3], n[1], ()).unwrap();
        g.add_edge(n[3], n[4], ()).unwrap();
        let pre_csr = Csr::from_graph(&g);
        let mut via_csr = ReachMatrix::build(&g).unwrap();
        let mut via_graph = via_csr.clone();
        let back = g.find_edge(n[3], n[1]).unwrap();
        g.remove_edge(back).unwrap();
        via_csr.remove_edge_csr(&pre_csr, n[3], n[1]).unwrap();
        via_graph.remove_edge(&g, n[3], n[1]).unwrap();
        assert_matches_fresh_build(&via_csr, &g);
        assert_matches_fresh_build(&via_graph, &g);
    }

    #[test]
    fn remove_node_csr_variant_matches_the_graph_variant() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let n: Vec<NodeId> = (0..5).map(|_| g.add_node(())).collect();
        g.add_edge(n[0], n[1], ()).unwrap();
        g.add_edge(n[1], n[2], ()).unwrap();
        g.add_edge(n[2], n[3], ()).unwrap();
        g.add_edge(n[3], n[1], ()).unwrap();
        g.add_edge(n[3], n[4], ()).unwrap();
        let pre_csr = Csr::from_graph(&g);
        let mut via_csr = ReachMatrix::build(&g).unwrap();
        g.remove_node(n[3]).unwrap();
        via_csr.remove_node_csr(&pre_csr, n[3]).unwrap();
        assert_matches_fresh_build(&via_csr, &g);
    }

    #[test]
    fn removals_reject_unknown_endpoints() {
        let (g, n) = diamond();
        let mut m = ReachMatrix::build(&g).unwrap();
        let ghost = NodeId::from_index(77);
        assert!(m.remove_edge(&g, n[0], ghost).is_err());
        assert!(m.remove_edge(&g, ghost, n[0]).is_err());
        assert!(m.remove_node(&g, ghost).is_err());
    }

    #[test]
    fn insert_edge_rejects_unknown_endpoints() {
        let (g, n) = diamond();
        let mut m = ReachMatrix::build(&g).unwrap();
        let ghost = NodeId::from_index(77);
        assert!(m.insert_edge(n[0], ghost).is_err());
        assert!(m.insert_edge(ghost, n[0]).is_err());
    }

    proptest! {
        #[test]
        fn prop_matrix_agrees_with_bfs(g in arbitrary_dag(24)) {
            assert_matrix_matches_bfs(&g);
        }

        /// Random mutation sequences (node appends + edge inserts, cycles
        /// allowed) keep the incrementally maintained matrix bit-identical
        /// in behaviour to a from-scratch rebuild after every single step —
        /// covering the monotone-safe and SCC-merge (local-rebuild) paths.
        #[test]
        fn prop_incremental_inserts_match_rebuild(
            start in 2usize..8,
            ops in proptest::collection::vec((0usize..3, 0usize..16, 0usize..16), 1..24)
        ) {
            let mut g: DiGraph<(), ()> = DiGraph::new();
            let mut nodes: Vec<NodeId> = (0..start).map(|_| g.add_node(())).collect();
            let mut m = ReachMatrix::build(&g).unwrap();
            for (op, raw_a, raw_b) in ops {
                if op == 0 {
                    let fresh = g.add_node(());
                    let out = m.insert_node(fresh);
                    prop_assert_eq!(out.class, DeltaClass::MonotoneSafe);
                    nodes.push(fresh);
                } else {
                    // op 1 biases towards DAG edges (low -> high), op 2 keeps
                    // the raw orientation so back edges (SCC merges) occur
                    let a = raw_a % nodes.len();
                    let b = raw_b % nodes.len();
                    let (from, to) = if op == 1 && a > b { (b, a) } else { (a, b) };
                    if from == to || g.find_edge(nodes[from], nodes[to]).is_some() {
                        continue;
                    }
                    g.add_edge(nodes[from], nodes[to], ()).unwrap();
                    let out = m.insert_edge(nodes[from], nodes[to]).unwrap();
                    // dirty rows must cover every row whose content changed:
                    // spot-check through the public surface below instead of
                    // reaching into the representation
                    prop_assert!(out.class != DeltaClass::Structural);
                }
                assert_matches_fresh_build(&m, &g);
            }
        }

        /// The dirty set is sound: rows NOT marked dirty answer identically
        /// before and after the delta.
        #[test]
        fn prop_clean_rows_are_really_unchanged(
            start in 3usize..10,
            edges in proptest::collection::vec((0usize..10, 0usize..10), 1..16)
        ) {
            let mut g: DiGraph<(), ()> = DiGraph::new();
            let nodes: Vec<NodeId> = (0..start).map(|_| g.add_node(())).collect();
            let mut m = ReachMatrix::build(&g).unwrap();
            for (raw_a, raw_b) in edges {
                let (a, b) = (raw_a % start, raw_b % start);
                if a == b || g.find_edge(nodes[a], nodes[b]).is_some() {
                    continue;
                }
                let before = m.clone();
                g.add_edge(nodes[a], nodes[b], ()).unwrap();
                let out = m.insert_edge(nodes[a], nodes[b]).unwrap();
                for &u in &nodes {
                    let comp = m.component_of(u).unwrap();
                    if out.dirty.contains(comp) {
                        continue;
                    }
                    for &v in &nodes {
                        prop_assert_eq!(before.reachable(u, v), m.reachable(u, v));
                        prop_assert_eq!(
                            before.strictly_reachable(u, v),
                            m.strictly_reachable(u, v)
                        );
                    }
                }
            }
        }

        /// Random *add/remove-interleaved* mutation scripts (node appends,
        /// DAG-biased and back-edge inserts, edge removals, node removals)
        /// keep the decrementally maintained matrix behaviourally identical
        /// to a from-scratch rebuild after every step — covering SCC splits,
        /// cycle un-closing, dead component slots and alternate-path no-ops.
        #[test]
        fn prop_interleaved_mutations_match_rebuild(
            start in 3usize..8,
            ops in proptest::collection::vec((0usize..5, 0usize..32, 0usize..32), 1..32)
        ) {
            let mut g: DiGraph<(), ()> = DiGraph::new();
            let mut nodes: Vec<NodeId> = (0..start).map(|_| g.add_node(())).collect();
            let mut m = ReachMatrix::build(&g).unwrap();
            for (op, raw_a, raw_b) in ops {
                match op {
                    0 => {
                        let fresh = g.add_node(());
                        m.insert_node(fresh);
                        nodes.push(fresh);
                    }
                    1 | 2 => {
                        let a = raw_a % nodes.len();
                        let b = raw_b % nodes.len();
                        // op 1 biases towards DAG edges, op 2 keeps the raw
                        // orientation so cycles form (and can later split)
                        let (from, to) = if op == 1 && a > b { (b, a) } else { (a, b) };
                        if from == to || g.find_edge(nodes[from], nodes[to]).is_some() {
                            continue;
                        }
                        g.add_edge(nodes[from], nodes[to], ()).unwrap();
                        m.insert_edge(nodes[from], nodes[to]).unwrap();
                    }
                    3 => {
                        // remove an existing edge, selected by index
                        let edges: Vec<_> = g.edge_ids().collect();
                        if edges.is_empty() {
                            continue;
                        }
                        let edge = edges[raw_a % edges.len()];
                        let (from, to) = g.edge_endpoints(edge).unwrap();
                        g.remove_edge(edge).unwrap();
                        let out = m.remove_edge(&g, from, to).unwrap();
                        prop_assert_eq!(out.class, DeltaClass::Decremental);
                    }
                    _ => {
                        // remove a node (keep at least 2 so edges stay possible)
                        if nodes.len() <= 2 {
                            continue;
                        }
                        let victim = nodes.remove(raw_a % nodes.len());
                        g.remove_node(victim).unwrap();
                        let out = m.remove_node(&g, victim).unwrap();
                        prop_assert_eq!(out.class, DeltaClass::Decremental);
                    }
                }
                assert_matches_fresh_build(&m, &g);
            }
        }

        /// The decremental dirty set is sound: rows NOT marked dirty answer
        /// identically before and after each removal.
        #[test]
        fn prop_clean_rows_survive_removals_unchanged(
            start in 3usize..8,
            edges in proptest::collection::vec((0usize..8, 0usize..8), 4..20),
            removals in proptest::collection::vec(0usize..32, 1..12)
        ) {
            let mut g: DiGraph<(), ()> = DiGraph::new();
            let nodes: Vec<NodeId> = (0..start).map(|_| g.add_node(())).collect();
            for (raw_a, raw_b) in edges {
                let (a, b) = (raw_a % start, raw_b % start);
                if a != b {
                    let _ = g.add_edge_unique(nodes[a], nodes[b], ());
                }
            }
            let mut m = ReachMatrix::build(&g).unwrap();
            for pick in removals {
                let existing: Vec<_> = g.edge_ids().collect();
                if existing.is_empty() {
                    break;
                }
                let edge = existing[pick % existing.len()];
                let (from, to) = g.edge_endpoints(edge).unwrap();
                let before = m.clone();
                g.remove_edge(edge).unwrap();
                let out = m.remove_edge(&g, from, to).unwrap();
                for &u in &nodes {
                    let comp = m.component_of(u).unwrap();
                    if out.dirty.contains(comp) {
                        continue;
                    }
                    for &v in &nodes {
                        prop_assert_eq!(before.reachable(u, v), m.reachable(u, v));
                        prop_assert_eq!(
                            before.strictly_reachable(u, v),
                            m.strictly_reachable(u, v)
                        );
                    }
                }
            }
        }

        #[test]
        fn prop_matrix_agrees_with_bfs_on_cyclic_graphs(g in arbitrary_digraph(20)) {
            assert_matrix_matches_bfs(&g);
        }

        #[test]
        fn prop_strict_self_reachability_detects_cycles(g in arbitrary_digraph(16)) {
            let r = ReachMatrix::build(&g).unwrap();
            for u in g.node_ids() {
                // u strictly reaches itself iff some successor path loops back
                let on_cycle = g
                    .successors(u)
                    .any(|s| {
                        crate::traversal::reachable_set(&g, &[s], Direction::Forward)
                            .contains(u.index())
                    });
                prop_assert_eq!(r.strictly_reachable(u, u), on_cycle);
            }
        }

        #[test]
        fn prop_reachability_is_transitive(g in arbitrary_digraph(16)) {
            let r = ReachMatrix::build(&g).unwrap();
            let nodes: Vec<NodeId> = g.node_ids().collect();
            for &a in &nodes {
                for &b in &nodes {
                    if !r.reachable(a, b) { continue; }
                    for &c in &nodes {
                        if r.reachable(b, c) {
                            prop_assert!(r.reachable(a, c));
                        }
                    }
                }
            }
        }
    }
}
