//! All-pairs reachability.
//!
//! Soundness checking (Definition 2.3 of the paper) reduces to many
//! `reach(u, v)` queries over the workflow specification. [`ReachMatrix`]
//! answers each query in O(1) after an O(V·E/64) bit-set propagation over a
//! topological order; cyclic inputs are handled by condensing strongly
//! connected components first.
//!
//! ## Storage layout
//!
//! The matrix is one flat row-major `Vec<u64>`: row `i` (the set of
//! components reachable from component `i`) occupies words
//! `i·stride .. (i+1)·stride` with `stride = comp_count.div_ceil(64)`.
//! Building the matrix unions successor rows *in place* through disjoint
//! row slices — no per-edge row clone, no per-row allocation — and
//! consumers can borrow whole rows ([`ReachMatrix::reachable_row`]) to run
//! word-level bitset algebra (mask intersections, popcounts) instead of
//! per-node `reachable()` loops.

use crate::csr::Csr;
use crate::digraph::DiGraph;
use crate::error::GraphError;
use crate::id::NodeId;
use crate::scc::{condense_to_csr, strongly_connected_components_csr};
use crate::topo::topological_sort_csr;
use crate::traversal::{shortest_path, Direction};

/// Dense all-pairs reachability over a directed graph.
///
/// `reachable(u, v)` is `true` iff there is a directed path from `u` to `v`
/// of length **zero or more** — i.e. every node reaches itself. This matches
/// the paper's use of "directed path between t1 and t2" where a composite
/// task containing a single boundary node is always sound.
#[derive(Debug, Clone)]
pub struct ReachMatrix {
    /// Row-major reachability words: row `i` is `words[i*stride..(i+1)*stride]`,
    /// bit `j` of row `i` set iff component `j` is reachable from component `i`.
    words: Vec<u64>,
    /// Words per row: `comp_count.div_ceil(64)`.
    stride: usize,
    /// Number of strongly connected components (= number of rows).
    comp_count: usize,
    /// Map from node index to component index (`usize::MAX` for removed nodes).
    component_of: Vec<usize>,
    /// Number of member nodes per component; components with more than one
    /// member are cycles.
    comp_size: Vec<u32>,
    node_bound: usize,
}

impl ReachMatrix {
    /// Builds the reachability matrix for `graph`.
    ///
    /// Cycles are permitted: the matrix is computed on the condensation, and
    /// all members of a strongly connected component mutually reach each
    /// other.
    ///
    /// # Errors
    /// Currently infallible for any well-formed graph; the `Result` is kept
    /// so future storage strategies (e.g. external memory) can fail cleanly.
    pub fn build<N, E>(graph: &DiGraph<N, E>) -> Result<Self, GraphError> {
        Ok(Self::build_from_csr(&Csr::from_graph(graph)))
    }

    /// Builds the matrix from an existing CSR snapshot: SCC decomposition,
    /// condensation (also in CSR form) and one in-place bit-row propagation
    /// over the reverse topological order.
    #[must_use]
    pub fn build_from_csr(csr: &Csr) -> Self {
        let scc = strongly_connected_components_csr(csr);
        let condensed = condense_to_csr(csr, &scc);
        let order = topological_sort_csr(&condensed).expect("condensation is always acyclic");
        let comp_count = scc.len();
        let stride = comp_count.div_ceil(64);
        let mut words = vec![0u64; comp_count * stride];
        // Process in reverse topological order so successor rows are complete
        // before they are unioned into their predecessors.
        for &comp in order.iter().rev() {
            let i = comp.index();
            words[i * stride + i / 64] |= 1u64 << (i % 64);
            for &succ in condensed.successors(comp) {
                union_rows(&mut words, stride, i, succ.index());
            }
        }
        let comp_size = scc
            .components
            .iter()
            .map(|members| u32::try_from(members.len()).expect("component size exceeds u32"))
            .collect();
        ReachMatrix {
            words,
            stride,
            comp_count,
            component_of: scc.component_of,
            comp_size,
            node_bound: csr.node_bound(),
        }
    }

    /// Returns `true` iff there is a directed path (possibly empty) from
    /// `from` to `to`.
    ///
    /// Unknown nodes are never reachable and reach nothing.
    #[must_use]
    pub fn reachable(&self, from: NodeId, to: NodeId) -> bool {
        let (Some(cf), Some(ct)) = (self.component_index(from), self.component_index(to)) else {
            return false;
        };
        self.words[cf * self.stride + ct / 64] & (1u64 << (ct % 64)) != 0
    }

    /// Returns `true` iff there is a path of length **one or more** from
    /// `from` to `to` (excludes the trivial empty path, unless the two nodes
    /// are on a common cycle).
    #[must_use]
    pub fn strictly_reachable(&self, from: NodeId, to: NodeId) -> bool {
        if from == to {
            // a node strictly reaches itself iff it lies on a cycle, i.e. its
            // strongly connected component has more than one member (DiGraph
            // rejects self-loops, so singleton components are cycle-free)
            return self
                .component_index(from)
                .is_some_and(|c| self.comp_size[c] > 1);
        }
        self.reachable(from, to)
    }

    /// Returns the number of nodes `from` can reach (including itself):
    /// a popcount over the node's reachability row, weighted by the member
    /// counts of the reached components. O(comp_count/64) words — no node
    /// list and no allocation.
    #[must_use]
    pub fn descendant_count(&self, from: NodeId) -> usize {
        self.reachable_row(from).map_or(0, |row| row.node_count())
    }

    /// Counts the members of `graph_nodes` reachable from `from`.
    #[deprecated(
        since = "0.1.0",
        note = "use `descendant_count(from)`, which popcounts the reachability \
                row instead of filtering a caller-supplied node list"
    )]
    #[must_use]
    pub fn descendant_count_among(&self, from: NodeId, graph_nodes: &[NodeId]) -> usize {
        graph_nodes
            .iter()
            .filter(|&&n| self.reachable(from, n))
            .count()
    }

    /// Borrows the reachability row of `from`'s strongly connected component,
    /// or `None` for unknown nodes. The row supports word-level set algebra;
    /// see [`ReachRow`].
    #[must_use]
    pub fn reachable_row(&self, from: NodeId) -> Option<ReachRow<'_>> {
        let comp = self.component_index(from)?;
        Some(ReachRow {
            matrix: self,
            words: self.row_words(comp),
        })
    }

    /// Number of strongly connected components (rows of the matrix).
    #[must_use]
    pub fn comp_count(&self) -> usize {
        self.comp_count
    }

    /// Words per reachability row (`comp_count.div_ceil(64)`).
    #[must_use]
    pub fn row_stride(&self) -> usize {
        self.stride
    }

    /// The component index of a node, or `None` for unknown/removed nodes.
    /// Component indices address matrix rows and row bits.
    #[must_use]
    pub fn component_of(&self, node: NodeId) -> Option<usize> {
        self.component_index(node)
    }

    /// Number of member nodes of a component (components with more than one
    /// member are cycles).
    ///
    /// # Panics
    /// Panics if `comp >= comp_count()`.
    #[must_use]
    pub fn component_size(&self, comp: usize) -> usize {
        self.comp_size[comp] as usize
    }

    /// The raw reachability words of one component's row; bit `j` is set iff
    /// component `j` is reachable. This is the substrate for bitset-algebra
    /// consumers (e.g. the definition-level validator's mask intersections).
    ///
    /// # Panics
    /// Panics if `comp >= comp_count()`.
    #[must_use]
    pub fn row_words(&self, comp: usize) -> &[u64] {
        &self.words[comp * self.stride..(comp + 1) * self.stride]
    }

    /// Upper bound on node indices this matrix was built for.
    #[must_use]
    pub fn node_bound(&self) -> usize {
        self.node_bound
    }

    fn component_index(&self, node: NodeId) -> Option<usize> {
        self.component_of
            .get(node.index())
            .copied()
            .filter(|&c| c != usize::MAX)
    }
}

/// One borrowed row of a [`ReachMatrix`]: the set of components reachable
/// from a node, with word-level operations so consumers can answer
/// set-shaped questions (counts, intersections) without per-node queries.
#[derive(Debug, Clone, Copy)]
pub struct ReachRow<'a> {
    matrix: &'a ReachMatrix,
    words: &'a [u64],
}

impl ReachRow<'_> {
    /// Returns `true` iff `to` is reachable from the row's origin.
    #[must_use]
    pub fn contains(&self, to: NodeId) -> bool {
        self.matrix
            .component_index(to)
            .is_some_and(|c| self.words[c / 64] & (1u64 << (c % 64)) != 0)
    }

    /// Number of reachable *nodes* (origin included): popcount over the row,
    /// weighted by component member counts.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.components()
            .map(|c| self.matrix.comp_size[c] as usize)
            .sum()
    }

    /// Number of reachable *components* (a plain popcount).
    #[must_use]
    pub fn component_count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates over the reachable component indices in ascending order.
    pub fn components(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            crate::bitset::OnesInWord { word }.map(move |bit| wi * 64 + bit)
        })
    }

    /// The raw row words (bit `j` ⇔ component `j` reachable).
    #[must_use]
    pub fn words(&self) -> &[u64] {
        self.words
    }

    /// Returns `true` iff the row shares a component with `mask`, given as
    /// raw words over component indices (same stride as the row).
    ///
    /// # Panics
    /// Panics if `mask` is shorter than the row.
    #[must_use]
    pub fn intersects_words(&self, mask: &[u64]) -> bool {
        assert!(
            mask.len() >= self.words.len(),
            "mask shorter than reachability row"
        );
        self.words.iter().zip(mask).any(|(a, b)| a & b != 0)
    }
}

/// ORs row `src` into row `dst` in place. The rows are disjoint because the
/// condensation is acyclic and self-loop free, so `split_at_mut` yields one
/// mutable and one shared slice without copying either row.
fn union_rows(words: &mut [u64], stride: usize, dst: usize, src: usize) {
    debug_assert_ne!(dst, src, "condensation rows cannot self-union");
    if dst < src {
        let (head, tail) = words.split_at_mut(src * stride);
        let dst_row = &mut head[dst * stride..dst * stride + stride];
        let src_row = &tail[..stride];
        for (d, s) in dst_row.iter_mut().zip(src_row) {
            *d |= *s;
        }
    } else {
        let (head, tail) = words.split_at_mut(dst * stride);
        let src_row = &head[src * stride..src * stride + stride];
        let dst_row = &mut tail[..stride];
        for (d, s) in dst_row.iter_mut().zip(src_row) {
            *d |= *s;
        }
    }
}

/// Computes the set of ancestors of `node` (nodes that can reach it),
/// excluding the node itself.
pub fn ancestors<N, E>(graph: &DiGraph<N, E>, node: NodeId) -> Vec<NodeId> {
    let mut nodes = crate::traversal::bfs(graph, &[node], Direction::Backward);
    nodes.retain(|&n| n != node);
    nodes.sort_unstable();
    nodes
}

/// Computes the set of descendants of `node` (nodes it can reach), excluding
/// the node itself.
pub fn descendants<N, E>(graph: &DiGraph<N, E>, node: NodeId) -> Vec<NodeId> {
    let mut nodes = crate::traversal::bfs(graph, &[node], Direction::Forward);
    nodes.retain(|&n| n != node);
    nodes.sort_unstable();
    nodes
}

/// Produces one witness path demonstrating that `to` is reachable from
/// `from`, if any. Used by the validator to explain soundness violations and
/// spurious view dependencies to users.
pub fn witness_path<N, E>(graph: &DiGraph<N, E>, from: NodeId, to: NodeId) -> Option<Vec<NodeId>> {
    shortest_path(graph, from, to)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn diamond() -> (DiGraph<(), ()>, Vec<NodeId>) {
        let mut g = DiGraph::new();
        let n: Vec<NodeId> = (0..4).map(|_| g.add_node(())).collect();
        g.add_edge(n[0], n[1], ()).unwrap();
        g.add_edge(n[0], n[2], ()).unwrap();
        g.add_edge(n[1], n[3], ()).unwrap();
        g.add_edge(n[2], n[3], ()).unwrap();
        (g, n)
    }

    #[test]
    fn reachability_in_a_diamond() {
        let (g, n) = diamond();
        let r = ReachMatrix::build(&g).unwrap();
        assert!(r.reachable(n[0], n[3]));
        assert!(r.reachable(n[0], n[0]));
        assert!(!r.reachable(n[3], n[0]));
        assert!(!r.reachable(n[1], n[2]));
        assert!(r.strictly_reachable(n[0], n[1]));
        assert!(!r.strictly_reachable(n[1], n[1]));
    }

    #[test]
    fn reachability_through_a_cycle() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        g.add_edge(a, b, ()).unwrap();
        g.add_edge(b, c, ()).unwrap();
        g.add_edge(c, b, ()).unwrap();
        g.add_edge(c, d, ()).unwrap();
        let r = ReachMatrix::build(&g).unwrap();
        assert!(r.reachable(a, d));
        assert!(r.reachable(b, c));
        assert!(r.reachable(c, b));
        assert!(!r.reachable(d, a));
    }

    #[test]
    fn self_queries_are_strict_only_on_cycles() {
        // a -> b -> c -> b (b and c share a cycle), c -> d
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        g.add_edge(a, b, ()).unwrap();
        g.add_edge(b, c, ()).unwrap();
        g.add_edge(c, b, ()).unwrap();
        g.add_edge(c, d, ()).unwrap();
        let r = ReachMatrix::build(&g).unwrap();
        // on-cycle nodes strictly reach themselves (regression: this used to
        // unconditionally return false)
        assert!(r.strictly_reachable(b, b));
        assert!(r.strictly_reachable(c, c));
        // off-cycle nodes do not
        assert!(!r.strictly_reachable(a, a));
        assert!(!r.strictly_reachable(d, d));
        // unknown nodes do not
        assert!(!r.strictly_reachable(NodeId::from_index(50), NodeId::from_index(50)));
    }

    #[test]
    fn unknown_nodes_are_unreachable() {
        let (g, n) = diamond();
        let r = ReachMatrix::build(&g).unwrap();
        let ghost = NodeId::from_index(77);
        assert!(!r.reachable(ghost, n[0]));
        assert!(!r.reachable(n[0], ghost));
        assert!(r.reachable_row(ghost).is_none());
        assert_eq!(r.descendant_count(ghost), 0);
    }

    #[test]
    fn descendant_count_popcounts_scc_sizes() {
        // a -> {b <-> c} -> d: a reaches 4 nodes, b reaches 3, d reaches 1
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        g.add_edge(a, b, ()).unwrap();
        g.add_edge(b, c, ()).unwrap();
        g.add_edge(c, b, ()).unwrap();
        g.add_edge(c, d, ()).unwrap();
        let r = ReachMatrix::build(&g).unwrap();
        assert_eq!(r.descendant_count(a), 4);
        assert_eq!(r.descendant_count(b), 3);
        assert_eq!(r.descendant_count(c), 3);
        assert_eq!(r.descendant_count(d), 1);
        #[allow(deprecated)]
        {
            let nodes = [a, b, c, d];
            for &n in &nodes {
                assert_eq!(r.descendant_count(n), r.descendant_count_among(n, &nodes));
            }
        }
    }

    #[test]
    fn rows_expose_word_level_algebra() {
        let (g, n) = diamond();
        let r = ReachMatrix::build(&g).unwrap();
        let row = r.reachable_row(n[0]).unwrap();
        assert!(row.contains(n[3]));
        assert_eq!(row.node_count(), 4);
        assert_eq!(row.component_count(), 4);
        assert_eq!(row.components().count(), 4);
        assert_eq!(row.words().len(), r.row_stride());
        // a mask holding only n[3]'s component intersects the row
        let mut mask = vec![0u64; r.row_stride()];
        let c3 = r.component_of(n[3]).unwrap();
        mask[c3 / 64] |= 1 << (c3 % 64);
        assert!(row.intersects_words(&mask));
        // the row of the sink intersects nothing but itself
        let sink_row = r.reachable_row(n[3]).unwrap();
        let mut other = vec![0u64; r.row_stride()];
        let c0 = r.component_of(n[0]).unwrap();
        other[c0 / 64] |= 1 << (c0 % 64);
        assert!(!sink_row.intersects_words(&other));
    }

    #[test]
    fn ancestors_and_descendants() {
        let (g, n) = diamond();
        assert_eq!(ancestors(&g, n[3]), vec![n[0], n[1], n[2]]);
        assert_eq!(descendants(&g, n[0]), vec![n[1], n[2], n[3]]);
        assert_eq!(ancestors(&g, n[0]), vec![]);
        assert_eq!(descendants(&g, n[3]), vec![]);
    }

    #[test]
    fn witness_path_matches_reachability() {
        let (g, n) = diamond();
        let r = ReachMatrix::build(&g).unwrap();
        let path = witness_path(&g, n[0], n[3]).unwrap();
        assert_eq!(path.first(), Some(&n[0]));
        assert_eq!(path.last(), Some(&n[3]));
        assert!(r.reachable(n[0], n[3]));
        assert!(witness_path(&g, n[3], n[0]).is_none());
    }

    #[test]
    fn matrix_handles_more_than_64_components() {
        // a 200-node chain spans multiple row words
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let nodes: Vec<NodeId> = (0..200).map(|_| g.add_node(())).collect();
        for w in nodes.windows(2) {
            g.add_edge(w[0], w[1], ()).unwrap();
        }
        let r = ReachMatrix::build(&g).unwrap();
        assert_eq!(r.row_stride(), 200usize.div_ceil(64));
        assert!(r.reachable(nodes[0], nodes[199]));
        assert!(!r.reachable(nodes[199], nodes[0]));
        assert_eq!(r.descendant_count(nodes[0]), 200);
        assert_eq!(r.descendant_count(nodes[120]), 80);
    }

    fn arbitrary_dag(max_nodes: usize) -> impl Strategy<Value = DiGraph<(), ()>> {
        (2..max_nodes)
            .prop_flat_map(|n| {
                let edges = proptest::collection::vec((0..n, 0..n), 0..(n * 2));
                (Just(n), edges)
            })
            .prop_map(|(n, raw_edges)| {
                let mut g: DiGraph<(), ()> = DiGraph::new();
                let nodes: Vec<NodeId> = (0..n).map(|_| g.add_node(())).collect();
                for (a, b) in raw_edges {
                    // orient edges from lower to higher index to guarantee a DAG
                    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                    if lo != hi {
                        let _ = g.add_edge_unique(nodes[lo], nodes[hi], ());
                    }
                }
                g
            })
    }

    /// Arbitrary digraphs *including cycles*: edges keep their raw
    /// orientation, so back edges (and thus non-trivial SCCs) are common.
    fn arbitrary_digraph(max_nodes: usize) -> impl Strategy<Value = DiGraph<(), ()>> {
        (2..max_nodes)
            .prop_flat_map(|n| {
                let edges = proptest::collection::vec((0..n, 0..n), 0..(n * 2));
                (Just(n), edges)
            })
            .prop_map(|(n, raw_edges)| {
                let mut g: DiGraph<(), ()> = DiGraph::new();
                let nodes: Vec<NodeId> = (0..n).map(|_| g.add_node(())).collect();
                for (a, b) in raw_edges {
                    if a != b {
                        let _ = g.add_edge_unique(nodes[a], nodes[b], ());
                    }
                }
                g
            })
    }

    fn assert_matrix_matches_bfs(g: &DiGraph<(), ()>) {
        let r = ReachMatrix::build(g).unwrap();
        let nodes: Vec<NodeId> = g.node_ids().collect();
        for &u in &nodes {
            let reach_bfs = crate::traversal::reachable_set(g, &[u], Direction::Forward);
            let row = r.reachable_row(u).unwrap();
            for &v in &nodes {
                assert_eq!(r.reachable(u, v), reach_bfs.contains(v.index()));
                assert_eq!(row.contains(v), reach_bfs.contains(v.index()));
            }
            assert_eq!(r.descendant_count(u), reach_bfs.count_ones());
            assert_eq!(row.node_count(), reach_bfs.count_ones());
        }
    }

    proptest! {
        #[test]
        fn prop_matrix_agrees_with_bfs(g in arbitrary_dag(24)) {
            assert_matrix_matches_bfs(&g);
        }

        #[test]
        fn prop_matrix_agrees_with_bfs_on_cyclic_graphs(g in arbitrary_digraph(20)) {
            assert_matrix_matches_bfs(&g);
        }

        #[test]
        fn prop_strict_self_reachability_detects_cycles(g in arbitrary_digraph(16)) {
            let r = ReachMatrix::build(&g).unwrap();
            for u in g.node_ids() {
                // u strictly reaches itself iff some successor path loops back
                let on_cycle = g
                    .successors(u)
                    .any(|s| {
                        crate::traversal::reachable_set(&g, &[s], Direction::Forward)
                            .contains(u.index())
                    });
                prop_assert_eq!(r.strictly_reachable(u, u), on_cycle);
            }
        }

        #[test]
        fn prop_reachability_is_transitive(g in arbitrary_digraph(16)) {
            let r = ReachMatrix::build(&g).unwrap();
            let nodes: Vec<NodeId> = g.node_ids().collect();
            for &a in &nodes {
                for &b in &nodes {
                    if !r.reachable(a, b) { continue; }
                    for &c in &nodes {
                        if r.reachable(b, c) {
                            prop_assert!(r.reachable(a, c));
                        }
                    }
                }
            }
        }
    }
}
