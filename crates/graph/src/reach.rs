//! All-pairs reachability.
//!
//! Soundness checking (Definition 2.3 of the paper) reduces to many
//! `reach(u, v)` queries over the workflow specification. [`ReachMatrix`]
//! answers each query in O(1) after an O(V·E/64) bit-set propagation over a
//! topological order; cyclic inputs are handled by condensing strongly
//! connected components first.

use crate::bitset::FixedBitSet;
use crate::digraph::DiGraph;
use crate::error::GraphError;
use crate::id::NodeId;
use crate::scc::{condensation, SccDecomposition};
use crate::topo::topological_sort;
use crate::traversal::{shortest_path, Direction};

/// Dense all-pairs reachability over a directed graph.
///
/// `reachable(u, v)` is `true` iff there is a directed path from `u` to `v`
/// of length **zero or more** — i.e. every node reaches itself. This matches
/// the paper's use of "directed path between t1 and t2" where a composite
/// task containing a single boundary node is always sound.
#[derive(Debug, Clone)]
pub struct ReachMatrix {
    /// Row `i`: set of component indices reachable from component `i`.
    rows: Vec<FixedBitSet>,
    /// Map from node index to component index.
    component_of: Vec<usize>,
    node_bound: usize,
}

impl ReachMatrix {
    /// Builds the reachability matrix for `graph`.
    ///
    /// Cycles are permitted: the matrix is computed on the condensation, and
    /// all members of a strongly connected component mutually reach each
    /// other.
    ///
    /// # Errors
    /// Currently infallible for any well-formed graph; the `Result` is kept
    /// so future storage strategies (e.g. external memory) can fail cleanly.
    pub fn build<N, E>(graph: &DiGraph<N, E>) -> Result<Self, GraphError> {
        let (condensed, scc) = condensation(graph);
        Ok(Self::from_condensation(
            &condensed,
            &scc,
            graph.node_bound(),
        ))
    }

    fn from_condensation(
        condensed: &DiGraph<Vec<NodeId>, ()>,
        scc: &SccDecomposition,
        node_bound: usize,
    ) -> Self {
        let comp_count = condensed.node_count();
        let order = topological_sort(condensed).expect("condensation is always acyclic");
        let mut rows: Vec<FixedBitSet> = (0..comp_count)
            .map(|_| FixedBitSet::with_capacity(comp_count))
            .collect();
        // Process in reverse topological order so successors are complete.
        for &comp_node in order.iter().rev() {
            let i = comp_node.index();
            let mut row = FixedBitSet::with_capacity(comp_count);
            row.insert(i);
            for succ in condensed.successors(comp_node) {
                row.insert(succ.index());
                let succ_row = rows[succ.index()].clone();
                row.union_with(&succ_row);
            }
            rows[i] = row;
        }
        ReachMatrix {
            rows,
            component_of: scc.component_of.clone(),
            node_bound,
        }
    }

    /// Returns `true` iff there is a directed path (possibly empty) from
    /// `from` to `to`.
    ///
    /// Unknown nodes are never reachable and reach nothing.
    #[must_use]
    pub fn reachable(&self, from: NodeId, to: NodeId) -> bool {
        let (Some(cf), Some(ct)) = (self.component_index(from), self.component_index(to)) else {
            return false;
        };
        self.rows[cf].contains(ct)
    }

    /// Returns `true` iff there is a path of length **one or more** from
    /// `from` to `to` (excludes the trivial empty path, unless the two nodes
    /// are on a common cycle).
    #[must_use]
    pub fn strictly_reachable(&self, from: NodeId, to: NodeId) -> bool {
        if from == to {
            // only true when the node lies on a cycle, which DiGraph's lack of
            // self loops means "its SCC has more than one member"; detect via
            // component sharing with a different node is not possible here, so
            // report false for singleton components.
            return false;
        }
        self.reachable(from, to)
    }

    /// Returns the number of nodes `from` can reach (including itself).
    #[must_use]
    pub fn descendant_count(&self, from: NodeId, graph_nodes: &[NodeId]) -> usize {
        graph_nodes
            .iter()
            .filter(|&&n| self.reachable(from, n))
            .count()
    }

    /// Upper bound on node indices this matrix was built for.
    #[must_use]
    pub fn node_bound(&self) -> usize {
        self.node_bound
    }

    fn component_index(&self, node: NodeId) -> Option<usize> {
        self.component_of
            .get(node.index())
            .copied()
            .filter(|&c| c != usize::MAX)
    }
}

/// Computes the set of ancestors of `node` (nodes that can reach it),
/// excluding the node itself.
pub fn ancestors<N, E>(graph: &DiGraph<N, E>, node: NodeId) -> Vec<NodeId> {
    let mut nodes = crate::traversal::bfs(graph, &[node], Direction::Backward);
    nodes.retain(|&n| n != node);
    nodes.sort_unstable();
    nodes
}

/// Computes the set of descendants of `node` (nodes it can reach), excluding
/// the node itself.
pub fn descendants<N, E>(graph: &DiGraph<N, E>, node: NodeId) -> Vec<NodeId> {
    let mut nodes = crate::traversal::bfs(graph, &[node], Direction::Forward);
    nodes.retain(|&n| n != node);
    nodes.sort_unstable();
    nodes
}

/// Produces one witness path demonstrating that `to` is reachable from
/// `from`, if any. Used by the validator to explain soundness violations and
/// spurious view dependencies to users.
pub fn witness_path<N, E>(graph: &DiGraph<N, E>, from: NodeId, to: NodeId) -> Option<Vec<NodeId>> {
    shortest_path(graph, from, to)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn diamond() -> (DiGraph<(), ()>, Vec<NodeId>) {
        let mut g = DiGraph::new();
        let n: Vec<NodeId> = (0..4).map(|_| g.add_node(())).collect();
        g.add_edge(n[0], n[1], ()).unwrap();
        g.add_edge(n[0], n[2], ()).unwrap();
        g.add_edge(n[1], n[3], ()).unwrap();
        g.add_edge(n[2], n[3], ()).unwrap();
        (g, n)
    }

    #[test]
    fn reachability_in_a_diamond() {
        let (g, n) = diamond();
        let r = ReachMatrix::build(&g).unwrap();
        assert!(r.reachable(n[0], n[3]));
        assert!(r.reachable(n[0], n[0]));
        assert!(!r.reachable(n[3], n[0]));
        assert!(!r.reachable(n[1], n[2]));
        assert!(r.strictly_reachable(n[0], n[1]));
        assert!(!r.strictly_reachable(n[1], n[1]));
    }

    #[test]
    fn reachability_through_a_cycle() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        g.add_edge(a, b, ()).unwrap();
        g.add_edge(b, c, ()).unwrap();
        g.add_edge(c, b, ()).unwrap();
        g.add_edge(c, d, ()).unwrap();
        let r = ReachMatrix::build(&g).unwrap();
        assert!(r.reachable(a, d));
        assert!(r.reachable(b, c));
        assert!(r.reachable(c, b));
        assert!(!r.reachable(d, a));
    }

    #[test]
    fn unknown_nodes_are_unreachable() {
        let (g, n) = diamond();
        let r = ReachMatrix::build(&g).unwrap();
        let ghost = NodeId::from_index(77);
        assert!(!r.reachable(ghost, n[0]));
        assert!(!r.reachable(n[0], ghost));
    }

    #[test]
    fn ancestors_and_descendants() {
        let (g, n) = diamond();
        assert_eq!(ancestors(&g, n[3]), vec![n[0], n[1], n[2]]);
        assert_eq!(descendants(&g, n[0]), vec![n[1], n[2], n[3]]);
        assert_eq!(ancestors(&g, n[0]), vec![]);
        assert_eq!(descendants(&g, n[3]), vec![]);
    }

    #[test]
    fn witness_path_matches_reachability() {
        let (g, n) = diamond();
        let r = ReachMatrix::build(&g).unwrap();
        let path = witness_path(&g, n[0], n[3]).unwrap();
        assert_eq!(path.first(), Some(&n[0]));
        assert_eq!(path.last(), Some(&n[3]));
        assert!(r.reachable(n[0], n[3]));
        assert!(witness_path(&g, n[3], n[0]).is_none());
    }

    fn arbitrary_dag(max_nodes: usize) -> impl Strategy<Value = DiGraph<(), ()>> {
        (2..max_nodes)
            .prop_flat_map(|n| {
                let edges = proptest::collection::vec((0..n, 0..n), 0..(n * 2));
                (Just(n), edges)
            })
            .prop_map(|(n, raw_edges)| {
                let mut g: DiGraph<(), ()> = DiGraph::new();
                let nodes: Vec<NodeId> = (0..n).map(|_| g.add_node(())).collect();
                for (a, b) in raw_edges {
                    // orient edges from lower to higher index to guarantee a DAG
                    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                    if lo != hi {
                        let _ = g.add_edge_unique(nodes[lo], nodes[hi], ());
                    }
                }
                g
            })
    }

    proptest! {
        #[test]
        fn prop_matrix_agrees_with_bfs(g in arbitrary_dag(24)) {
            let r = ReachMatrix::build(&g).unwrap();
            let nodes: Vec<NodeId> = g.node_ids().collect();
            for &u in &nodes {
                let reach_bfs = crate::traversal::reachable_set(&g, &[u], Direction::Forward);
                for &v in &nodes {
                    prop_assert_eq!(r.reachable(u, v), reach_bfs.contains(v.index()));
                }
            }
        }

        #[test]
        fn prop_reachability_is_transitive(g in arbitrary_dag(20)) {
            let r = ReachMatrix::build(&g).unwrap();
            let nodes: Vec<NodeId> = g.node_ids().collect();
            for &a in &nodes {
                for &b in &nodes {
                    if !r.reachable(a, b) { continue; }
                    for &c in &nodes {
                        if r.reachable(b, c) {
                            prop_assert!(r.reachable(a, c));
                        }
                    }
                }
            }
        }
    }
}
