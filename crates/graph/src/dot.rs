//! Graphviz DOT export.
//!
//! The WOLVES demo GUI (paper Figure 4) renders workflows and views as
//! interactive diagrams; the reproduction exports DOT so users can obtain
//! equivalent pictures with standard tooling, and the CLI displayer embeds
//! this output.

use std::fmt::Write as _;

use crate::digraph::DiGraph;
use crate::id::NodeId;

/// Options controlling DOT output.
#[derive(Debug, Clone)]
pub struct DotOptions {
    /// Name of the digraph in the DOT source.
    pub graph_name: String,
    /// Rank direction, e.g. `"LR"` or `"TB"`.
    pub rankdir: String,
    /// Nodes to highlight (drawn filled red) — the validator uses this for
    /// unsound composite tasks, mirroring the paper's GUI.
    pub highlighted: Vec<NodeId>,
    /// Optional clusters: `(label, members)` drawn as subgraphs. The view
    /// displayer uses one cluster per composite task.
    pub clusters: Vec<(String, Vec<NodeId>)>,
}

impl Default for DotOptions {
    fn default() -> Self {
        DotOptions {
            graph_name: "wolves".to_owned(),
            rankdir: "LR".to_owned(),
            highlighted: Vec::new(),
            clusters: Vec::new(),
        }
    }
}

/// Renders the graph to DOT, labelling nodes with `label_of`.
pub fn to_dot<N, E>(
    graph: &DiGraph<N, E>,
    options: &DotOptions,
    mut label_of: impl FnMut(NodeId, &N) -> String,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {} {{", sanitize_id(&options.graph_name));
    let _ = writeln!(out, "  rankdir={};", options.rankdir);
    let _ = writeln!(out, "  node [shape=box, fontname=\"Helvetica\"];");

    let clustered: Vec<NodeId> = options
        .clusters
        .iter()
        .flat_map(|(_, members)| members.iter().copied())
        .collect();

    for (ci, (label, members)) in options.clusters.iter().enumerate() {
        let _ = writeln!(out, "  subgraph cluster_{ci} {{");
        let _ = writeln!(out, "    label=\"{}\";", escape(label));
        for &node in members {
            if let Ok(weight) = graph.node_weight(node) {
                let _ = writeln!(
                    out,
                    "    {} [label=\"{}\"{}];",
                    node_id(node),
                    escape(&label_of(node, weight)),
                    highlight_attr(options, node)
                );
            }
        }
        let _ = writeln!(out, "  }}");
    }

    for (node, weight) in graph.nodes() {
        if clustered.contains(&node) {
            continue;
        }
        let _ = writeln!(
            out,
            "  {} [label=\"{}\"{}];",
            node_id(node),
            escape(&label_of(node, weight)),
            highlight_attr(options, node)
        );
    }

    for (_, source, target, _) in graph.edges() {
        let _ = writeln!(out, "  {} -> {};", node_id(source), node_id(target));
    }
    let _ = writeln!(out, "}}");
    out
}

fn highlight_attr(options: &DotOptions, node: NodeId) -> &'static str {
    if options.highlighted.contains(&node) {
        ", style=filled, fillcolor=\"#ff9999\""
    } else {
        ""
    }
}

fn node_id(node: NodeId) -> String {
    format!("n{}", node.index())
}

fn sanitize_id(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if cleaned.is_empty() {
        "g".to_owned()
    } else {
        cleaned
    }
}

fn escape(text: &str) -> String {
    text.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_output_contains_nodes_and_edges() {
        let mut g: DiGraph<&str, ()> = DiGraph::new();
        let a = g.add_node("select");
        let b = g.add_node("split");
        g.add_edge(a, b, ()).unwrap();
        let dot = to_dot(&g, &DotOptions::default(), |_, w| (*w).to_owned());
        assert!(dot.starts_with("digraph wolves {"));
        assert!(dot.contains("n0 [label=\"select\"]"));
        assert!(dot.contains("n0 -> n1;"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn highlighted_nodes_are_filled() {
        let mut g: DiGraph<&str, ()> = DiGraph::new();
        let a = g.add_node("bad");
        let options = DotOptions {
            highlighted: vec![a],
            ..DotOptions::default()
        };
        let dot = to_dot(&g, &options, |_, w| (*w).to_owned());
        assert!(dot.contains("fillcolor"));
    }

    #[test]
    fn clusters_render_as_subgraphs() {
        let mut g: DiGraph<&str, ()> = DiGraph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        g.add_edge(a, b, ()).unwrap();
        g.add_edge(b, c, ()).unwrap();
        let options = DotOptions {
            clusters: vec![("Composite".to_owned(), vec![a, b])],
            ..DotOptions::default()
        };
        let dot = to_dot(&g, &options, |_, w| (*w).to_owned());
        assert!(dot.contains("subgraph cluster_0"));
        assert!(dot.contains("label=\"Composite\""));
        // the un-clustered node still appears at top level
        assert!(dot.contains("n2 [label=\"c\"]"));
    }

    #[test]
    fn labels_are_escaped() {
        let mut g: DiGraph<String, ()> = DiGraph::new();
        g.add_node("say \"hi\"".to_owned());
        let dot = to_dot(&g, &DotOptions::default(), |_, w| w.clone());
        assert!(dot.contains("say \\\"hi\\\""));
    }

    #[test]
    fn graph_names_are_sanitized() {
        let g: DiGraph<(), ()> = DiGraph::new();
        let options = DotOptions {
            graph_name: "my graph!".to_owned(),
            ..DotOptions::default()
        };
        let dot = to_dot(&g, &options, |_, _| String::new());
        assert!(dot.starts_with("digraph my_graph_ {"));
    }
}
