//! Typed index newtypes for graph nodes and edges.
//!
//! Using dedicated wrapper types instead of bare `usize` prevents an entire
//! class of index-mixup bugs (e.g. using a node index to address an edge
//! table) at compile time, while still being `Copy` and cheap to pass around.

use std::fmt;

/// Identifier of a node inside a [`crate::DiGraph`].
///
/// Node ids are dense, stable indices: they are never re-used after a node is
/// removed, which makes them safe to store in external structures such as
/// workflow views, partitions and provenance records.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

/// Identifier of an edge inside a [`crate::DiGraph`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub(crate) u32);

impl NodeId {
    /// Creates a node id from a raw index.
    ///
    /// This is primarily useful for tests and for deserialising external
    /// formats; ids produced this way are only meaningful for the graph they
    /// were taken from.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index exceeds u32 range"))
    }

    /// Returns the raw index backing this id.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// Creates an edge id from a raw index.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        EdgeId(u32::try_from(index).expect("edge index exceeds u32 range"))
    }

    /// Returns the raw index backing this id.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trips_through_index() {
        let id = NodeId::from_index(42);
        assert_eq!(id.index(), 42);
    }

    #[test]
    fn edge_id_round_trips_through_index() {
        let id = EdgeId::from_index(7);
        assert_eq!(id.index(), 7);
    }

    #[test]
    fn ids_format_compactly() {
        assert_eq!(format!("{}", NodeId::from_index(3)), "n3");
        assert_eq!(format!("{:?}", EdgeId::from_index(9)), "e9");
    }

    #[test]
    fn ids_order_by_index() {
        assert!(NodeId::from_index(1) < NodeId::from_index(2));
        assert!(EdgeId::from_index(0) < EdgeId::from_index(10));
    }
}
