//! Error type shared by the graph algorithms.

use std::fmt;

use crate::NodeId;

/// Errors produced by graph construction and graph algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A node id referenced a node that does not exist (or was removed).
    InvalidNode(NodeId),
    /// An edge id referenced an edge that does not exist (or was removed).
    InvalidEdge(crate::EdgeId),
    /// The requested algorithm requires an acyclic graph but a cycle was
    /// found. The payload carries one node that participates in a cycle.
    CycleDetected(NodeId),
    /// An operation attempted to add a self-loop where self-loops are not
    /// permitted (workflow specifications never contain them).
    SelfLoop(NodeId),
    /// A duplicate edge between the same endpoints was rejected.
    DuplicateEdge(NodeId, NodeId),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::InvalidNode(n) => write!(f, "node {n} does not exist"),
            GraphError::InvalidEdge(e) => write!(f, "edge {e} does not exist"),
            GraphError::CycleDetected(n) => {
                write!(f, "graph contains a cycle through node {n}")
            }
            GraphError::SelfLoop(n) => write!(f, "self loop on node {n} is not permitted"),
            GraphError::DuplicateEdge(a, b) => {
                write!(f, "duplicate edge {a} -> {b} rejected")
            }
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_human_readable_messages() {
        let n = NodeId::from_index(1);
        assert!(GraphError::InvalidNode(n).to_string().contains("n1"));
        assert!(GraphError::CycleDetected(n).to_string().contains("cycle"));
        assert!(GraphError::SelfLoop(n).to_string().contains("self loop"));
    }
}
