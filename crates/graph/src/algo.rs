//! Miscellaneous DAG utilities used by workload generators, renderers and
//! the view-construction heuristics.

use crate::digraph::DiGraph;
use crate::error::GraphError;
use crate::id::NodeId;
use crate::reach::ReachMatrix;
use crate::topo::topological_sort;

/// Returns the nodes with no incoming edges (sources), in id order.
pub fn roots<N, E>(graph: &DiGraph<N, E>) -> Vec<NodeId> {
    graph
        .node_ids()
        .filter(|&n| graph.in_degree(n) == 0)
        .collect()
}

/// Returns the nodes with no outgoing edges (sinks), in id order.
pub fn leaves<N, E>(graph: &DiGraph<N, E>) -> Vec<NodeId> {
    graph
        .node_ids()
        .filter(|&n| graph.out_degree(n) == 0)
        .collect()
}

/// Assigns every node to a layer: sources are layer 0, and every other node
/// sits one past the maximum layer of its predecessors (longest-path
/// layering). Returns a dense table indexed by [`NodeId::index`], with
/// removed nodes at `usize::MAX`.
///
/// # Errors
/// Fails on cyclic graphs.
pub fn layering<N, E>(graph: &DiGraph<N, E>) -> Result<Vec<usize>, GraphError> {
    let order = topological_sort(graph)?;
    let mut layer = vec![usize::MAX; graph.node_bound()];
    for &node in &order {
        let max_pred = graph
            .predecessors(node)
            .map(|p| layer[p.index()])
            .filter(|&l| l != usize::MAX)
            .max();
        layer[node.index()] = match max_pred {
            Some(l) => l + 1,
            None => 0,
        };
    }
    Ok(layer)
}

/// Groups nodes by their layer (see [`layering`]); entry `i` lists the nodes
/// of layer `i` in id order.
///
/// # Errors
/// Fails on cyclic graphs.
pub fn layers<N, E>(graph: &DiGraph<N, E>) -> Result<Vec<Vec<NodeId>>, GraphError> {
    let table = layering(graph)?;
    let depth = table
        .iter()
        .filter(|&&l| l != usize::MAX)
        .max()
        .map_or(0, |&m| m + 1);
    let mut out = vec![Vec::new(); depth];
    for node in graph.node_ids() {
        out[table[node.index()]].push(node);
    }
    Ok(out)
}

/// Length (in edges) of the longest directed path in the DAG.
///
/// # Errors
/// Fails on cyclic graphs.
pub fn longest_path_length<N, E>(graph: &DiGraph<N, E>) -> Result<usize, GraphError> {
    let table = layering(graph)?;
    Ok(table
        .iter()
        .filter(|&&l| l != usize::MAX)
        .max()
        .copied()
        .unwrap_or(0))
}

/// Lists the edges that are *transitively redundant*: edges `(u, v)` such
/// that `v` is still reachable from `u` after removing the edge. Workflow
/// generators use this to control graph density; the view renderer uses it to
/// declutter drawings.
///
/// # Errors
/// Fails on cyclic graphs.
pub fn transitive_redundant_edges<N, E>(
    graph: &DiGraph<N, E>,
) -> Result<Vec<(NodeId, NodeId)>, GraphError> {
    // An edge (u, v) in a DAG is redundant iff some other successor w of u
    // reaches v.
    let reach = ReachMatrix::build(graph)?;
    let mut redundant = Vec::new();
    for (_, u, v, _) in graph.edges() {
        let bypass = graph.successors(u).any(|w| w != v && reach.reachable(w, v));
        if bypass {
            redundant.push((u, v));
        }
    }
    Ok(redundant)
}

/// Density of the graph relative to the densest possible DAG on the same
/// number of nodes: `edges / (n·(n−1)/2)`. Returns 0.0 for graphs with fewer
/// than two nodes.
pub fn dag_density<N, E>(graph: &DiGraph<N, E>) -> f64 {
    let n = graph.node_count();
    if n < 2 {
        return 0.0;
    }
    let max_edges = (n * (n - 1)) / 2;
    graph.edge_count() as f64 / max_edges as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (DiGraph<(), ()>, Vec<NodeId>) {
        // 0 -> 1 -> 3 -> 4
        // 0 -> 2 -> 3
        // 0 -> 4 (redundant)
        let mut g = DiGraph::new();
        let n: Vec<NodeId> = (0..5).map(|_| g.add_node(())).collect();
        g.add_edge(n[0], n[1], ()).unwrap();
        g.add_edge(n[0], n[2], ()).unwrap();
        g.add_edge(n[1], n[3], ()).unwrap();
        g.add_edge(n[2], n[3], ()).unwrap();
        g.add_edge(n[3], n[4], ()).unwrap();
        g.add_edge(n[0], n[4], ()).unwrap();
        (g, n)
    }

    #[test]
    fn roots_and_leaves() {
        let (g, n) = sample();
        assert_eq!(roots(&g), vec![n[0]]);
        assert_eq!(leaves(&g), vec![n[4]]);
    }

    #[test]
    fn layering_assigns_longest_path_depth() {
        let (g, n) = sample();
        let layer = layering(&g).unwrap();
        assert_eq!(layer[n[0].index()], 0);
        assert_eq!(layer[n[1].index()], 1);
        assert_eq!(layer[n[2].index()], 1);
        assert_eq!(layer[n[3].index()], 2);
        assert_eq!(layer[n[4].index()], 3);
        assert_eq!(longest_path_length(&g).unwrap(), 3);
    }

    #[test]
    fn layers_group_nodes() {
        let (g, n) = sample();
        let ls = layers(&g).unwrap();
        assert_eq!(ls.len(), 4);
        assert_eq!(ls[0], vec![n[0]]);
        assert_eq!(ls[1], vec![n[1], n[2]]);
    }

    #[test]
    fn redundant_edge_detection() {
        let (g, n) = sample();
        let redundant = transitive_redundant_edges(&g).unwrap();
        assert_eq!(redundant, vec![(n[0], n[4])]);
    }

    #[test]
    fn density_of_small_graphs() {
        let (g, _) = sample();
        let d = dag_density(&g);
        assert!(d > 0.0 && d <= 1.0);
        let empty: DiGraph<(), ()> = DiGraph::new();
        assert_eq!(dag_density(&empty), 0.0);
    }

    #[test]
    fn empty_graph_has_no_roots_or_leaves() {
        let g: DiGraph<(), ()> = DiGraph::new();
        assert!(roots(&g).is_empty());
        assert!(leaves(&g).is_empty());
        assert_eq!(longest_path_length(&g).unwrap(), 0);
    }
}
