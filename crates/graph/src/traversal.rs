//! Breadth-first and depth-first traversal helpers.
//!
//! The BFS core (`bfs_over`) is generic over the neighbour source: the
//! [`DiGraph`] entry points here and [`crate::csr::Csr::bfs`] share the one
//! implementation, each paying only its own neighbour-access cost (a
//! one-shot walk over a `DiGraph` stays O(reached region); a walk over an
//! already-taken CSR snapshot streams contiguous slices).

use std::collections::VecDeque;

use crate::bitset::FixedBitSet;
use crate::digraph::DiGraph;
use crate::id::NodeId;

/// Direction in which a traversal follows edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Follow edges from source to target (descendants).
    Forward,
    /// Follow edges from target to source (ancestors).
    Backward,
}

/// The shared breadth-first core: visits each reachable node exactly once
/// (start nodes included, unknown starts skipped) in level order. The
/// returned vector doubles as the frontier queue during the walk, so the
/// only allocations are the visited set and the result itself.
pub(crate) fn bfs_over(
    node_bound: usize,
    starts: &[NodeId],
    is_live: impl Fn(NodeId) -> bool,
    mut visit_neighbours: impl FnMut(NodeId, &mut dyn FnMut(NodeId)),
) -> Vec<NodeId> {
    let mut visited = FixedBitSet::with_capacity(node_bound);
    let mut order = Vec::new();
    for &start in starts {
        if is_live(start) && visited.insert(start.index()) {
            order.push(start);
        }
    }
    let mut head = 0;
    while head < order.len() {
        let node = order[head];
        head += 1;
        visit_neighbours(node, &mut |next| {
            if visited.insert(next.index()) {
                order.push(next);
            }
        });
    }
    order
}

/// Breadth-first traversal from a set of start nodes.
///
/// Visits each reachable node exactly once, including the start nodes.
pub fn bfs<N, E>(graph: &DiGraph<N, E>, starts: &[NodeId], direction: Direction) -> Vec<NodeId> {
    bfs_over(
        graph.node_bound(),
        starts,
        |node| graph.contains_node(node),
        |node, visit| match direction {
            Direction::Forward => graph.successors(node).for_each(visit),
            Direction::Backward => graph.predecessors(node).for_each(visit),
        },
    )
}

/// Depth-first preorder traversal from a set of start nodes.
pub fn dfs<N, E>(graph: &DiGraph<N, E>, starts: &[NodeId], direction: Direction) -> Vec<NodeId> {
    let mut visited = FixedBitSet::with_capacity(graph.node_bound());
    let mut stack: Vec<NodeId> = Vec::new();
    let mut order = Vec::new();
    for &start in starts.iter().rev() {
        if graph.contains_node(start) {
            stack.push(start);
        }
    }
    let mut neighbours: Vec<NodeId> = Vec::new();
    while let Some(node) = stack.pop() {
        if !visited.insert(node.index()) {
            continue;
        }
        order.push(node);
        // preorder needs the first neighbour popped first, so buffer and
        // reverse — into a scratch vector reused across iterations
        neighbours.clear();
        match direction {
            Direction::Forward => neighbours.extend(graph.successors(node)),
            Direction::Backward => neighbours.extend(graph.predecessors(node)),
        }
        for &next in neighbours.iter().rev() {
            if !visited.contains(next.index()) {
                stack.push(next);
            }
        }
    }
    order
}

/// Returns the set of nodes reachable from `starts` (inclusive) as a bit set
/// indexed by [`NodeId::index`].
pub fn reachable_set<N, E>(
    graph: &DiGraph<N, E>,
    starts: &[NodeId],
    direction: Direction,
) -> FixedBitSet {
    let mut set = FixedBitSet::with_capacity(graph.node_bound());
    for node in bfs(graph, starts, direction) {
        set.insert(node.index());
    }
    set
}

/// Finds one shortest directed path from `from` to `to` (inclusive of both
/// endpoints), or `None` if `to` is unreachable. A path from a node to itself
/// is the single-node path `[from]`.
pub fn shortest_path<N, E>(graph: &DiGraph<N, E>, from: NodeId, to: NodeId) -> Option<Vec<NodeId>> {
    if !graph.contains_node(from) || !graph.contains_node(to) {
        return None;
    }
    if from == to {
        return Some(vec![from]);
    }
    let bound = graph.node_bound();
    let mut visited = FixedBitSet::with_capacity(bound);
    let mut parent: Vec<Option<NodeId>> = vec![None; bound];
    let mut queue = VecDeque::new();
    visited.insert(from.index());
    queue.push_back(from);
    while let Some(node) = queue.pop_front() {
        for next in graph.successors(node) {
            if visited.insert(next.index()) {
                parent[next.index()] = Some(node);
                if next == to {
                    let mut path = vec![to];
                    let mut cur = to;
                    while let Some(p) = parent[cur.index()] {
                        path.push(p);
                        cur = p;
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(next);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_with_branch() -> (DiGraph<usize, ()>, Vec<NodeId>) {
        // 0 -> 1 -> 2 -> 4
        //       \-> 3 ---^
        let mut g = DiGraph::new();
        let n: Vec<NodeId> = (0..5).map(|i| g.add_node(i)).collect();
        g.add_edge(n[0], n[1], ()).unwrap();
        g.add_edge(n[1], n[2], ()).unwrap();
        g.add_edge(n[1], n[3], ()).unwrap();
        g.add_edge(n[2], n[4], ()).unwrap();
        g.add_edge(n[3], n[4], ()).unwrap();
        (g, n)
    }

    #[test]
    fn bfs_visits_each_node_once_in_level_order() {
        let (g, n) = chain_with_branch();
        let order = bfs(&g, &[n[0]], Direction::Forward);
        assert_eq!(order, vec![n[0], n[1], n[2], n[3], n[4]]);
    }

    #[test]
    fn bfs_backward_finds_ancestors() {
        let (g, n) = chain_with_branch();
        let order = bfs(&g, &[n[4]], Direction::Backward);
        assert_eq!(order.len(), 5);
        assert_eq!(order[0], n[4]);
        assert!(order.contains(&n[0]));
    }

    #[test]
    fn dfs_preorder_is_depth_first() {
        let (g, n) = chain_with_branch();
        let order = dfs(&g, &[n[0]], Direction::Forward);
        assert_eq!(order[0], n[0]);
        assert_eq!(order[1], n[1]);
        // after n[2] the traversal must dive to n[4] before visiting n[3]
        assert_eq!(order[2], n[2]);
        assert_eq!(order[3], n[4]);
        assert_eq!(order[4], n[3]);
    }

    #[test]
    fn reachable_set_contains_start_and_descendants() {
        let (g, n) = chain_with_branch();
        let set = reachable_set(&g, &[n[1]], Direction::Forward);
        assert!(set.contains(n[1].index()));
        assert!(set.contains(n[4].index()));
        assert!(!set.contains(n[0].index()));
    }

    #[test]
    fn shortest_path_finds_a_minimal_route() {
        let (g, n) = chain_with_branch();
        let path = shortest_path(&g, n[0], n[4]).unwrap();
        assert_eq!(path.len(), 4);
        assert_eq!(path[0], n[0]);
        assert_eq!(path[3], n[4]);
        assert_eq!(shortest_path(&g, n[4], n[0]), None);
        assert_eq!(shortest_path(&g, n[2], n[2]), Some(vec![n[2]]));
    }

    #[test]
    fn traversal_from_multiple_starts() {
        let (g, n) = chain_with_branch();
        let order = bfs(&g, &[n[2], n[3]], Direction::Forward);
        assert_eq!(order.len(), 3);
        assert!(order.contains(&n[4]));
    }

    #[test]
    fn traversal_ignores_unknown_starts() {
        let (g, _) = chain_with_branch();
        let order = bfs(&g, &[NodeId::from_index(99)], Direction::Forward);
        assert!(order.is_empty());
    }
}
