//! Provenance (lineage) queries at the workflow level and at the view level.
//!
//! Both queries answer the question "which tasks are in the provenance of
//! the output of task X?" and additionally report how many graph edges the
//! traversal touched, so the paper's efficiency argument — view-level
//! transitive closures are cheaper because the view graph is much smaller —
//! can be measured directly (experiment E6).

use std::collections::BTreeSet;

use wolves_graph::ReachMatrix;
use wolves_workflow::{CompositeTaskId, TaskId, WorkflowSpec, WorkflowView};

/// Result of a provenance query.
#[derive(Debug, Clone)]
pub struct ProvenanceAnswer {
    /// The task whose output was queried.
    pub subject: TaskId,
    /// Tasks reported to be in the provenance of the subject's output
    /// (excluding the subject itself).
    pub tasks: BTreeSet<TaskId>,
    /// Composite tasks reported in the provenance (empty for workflow-level
    /// queries).
    pub composites: BTreeSet<CompositeTaskId>,
    /// Number of directed edges traversed while answering.
    pub edges_traversed: usize,
}

/// Workflow-level provenance: the exact set of tasks with a directed path to
/// `subject`, computed by a backward traversal of the specification. This is
/// the ground truth every view-level answer is compared against.
#[must_use]
pub fn workflow_level_provenance(spec: &WorkflowSpec, subject: TaskId) -> ProvenanceAnswer {
    let mut visited: BTreeSet<TaskId> = BTreeSet::new();
    let mut stack = vec![subject];
    let mut edges = 0usize;
    while let Some(task) = stack.pop() {
        for pred in spec.predecessors(task) {
            edges += 1;
            if visited.insert(pred) {
                stack.push(pred);
            }
        }
    }
    visited.remove(&subject);
    ProvenanceAnswer {
        subject,
        tasks: visited,
        composites: BTreeSet::new(),
        edges_traversed: edges,
    }
}

/// Forward provenance (*impact*): the exact set of tasks whose inputs
/// transitively depend on `subject`'s output. Answered straight off the
/// specification's cached reachability matrix — one row borrow plus an O(V)
/// membership filter, no graph traversal at all (`edges_traversed` is 0).
#[must_use]
pub fn workflow_level_impact(spec: &WorkflowSpec, subject: TaskId) -> ProvenanceAnswer {
    let reach = spec.reachability();
    let tasks: BTreeSet<TaskId> = match reach.reachable_row(subject) {
        Some(row) => spec
            .task_ids()
            .filter(|&t| t != subject && row.contains(t))
            .collect(),
        None => BTreeSet::new(),
    };
    ProvenanceAnswer {
        subject,
        tasks,
        composites: BTreeSet::new(),
        edges_traversed: 0,
    }
}

/// A reusable, matrix-backed index answering view-level provenance queries.
///
/// [`view_level_provenance`] rebuilds the induced view graph and walks it on
/// every call; a server answering many queries against the same `(spec,
/// view)` pair should build this index once and reuse it — each query is
/// then O(composites) reachability lookups against the view-level
/// [`ReachMatrix`] plus the member collection, with no per-request graph
/// construction.
#[derive(Debug, Clone)]
pub struct ViewProvenanceIndex {
    induced: wolves_workflow::view::InducedViewGraph,
    view_reach: ReachMatrix,
}

impl ViewProvenanceIndex {
    /// Builds the index: the induced view graph plus its reachability
    /// matrix.
    #[must_use]
    pub fn new(spec: &WorkflowSpec, view: &WorkflowView) -> Self {
        let induced = view.induced_graph(spec);
        // CSR-routed build: one frozen adjacency snapshot feeds SCC,
        // condensation and the blocked-kernel closure propagation
        let view_reach =
            ReachMatrix::build_from_csr(&wolves_graph::Csr::from_graph(&induced.graph));
        ViewProvenanceIndex {
            induced,
            view_reach,
        }
    }

    /// Answers the same question as [`view_level_provenance`], from the
    /// index: every composite with a view-level path **to** the subject's
    /// composite (the subject's own composite included exactly when it lies
    /// on a view-level cycle), expanded to member tasks. `edges_traversed`
    /// is 0 — no edges are walked.
    #[must_use]
    pub fn provenance(&self, view: &WorkflowView, subject: TaskId) -> ProvenanceAnswer {
        let Some(start_composite) = view.composite_of(subject) else {
            return ProvenanceAnswer {
                subject,
                tasks: BTreeSet::new(),
                composites: BTreeSet::new(),
                edges_traversed: 0,
            };
        };
        let mut composites: BTreeSet<CompositeTaskId> = BTreeSet::new();
        if let Some(start_node) = self.induced.node_of(start_composite) {
            for (id, _) in view.composites() {
                let Some(node) = self.induced.node_of(id) else {
                    continue;
                };
                // strictly_reachable makes the self query come out true only
                // when the composite sits on a view-level cycle, matching
                // the backward traversal of `view_level_provenance`
                if self.view_reach.strictly_reachable(node, start_node) {
                    composites.insert(id);
                }
            }
        }
        let mut tasks: BTreeSet<TaskId> = BTreeSet::new();
        if let Ok(own) = view.composite(start_composite) {
            tasks.extend(own.members().iter().copied().filter(|&t| t != subject));
        }
        for &composite in &composites {
            if let Ok(c) = view.composite(composite) {
                tasks.extend(c.members().iter().copied());
            }
        }
        ProvenanceAnswer {
            subject,
            tasks,
            composites,
            edges_traversed: 0,
        }
    }
}

/// View-level provenance: traverse the induced view graph backwards from the
/// composite containing `subject` and report every member task of every
/// composite reached — this is what a user analysing provenance *through the
/// view* would conclude (paper §1). For unsound views the answer may contain
/// tasks that are not really upstream of the subject.
#[must_use]
pub fn view_level_provenance(
    spec: &WorkflowSpec,
    view: &WorkflowView,
    subject: TaskId,
) -> ProvenanceAnswer {
    let induced = view.induced_graph(spec);
    let Some(start_composite) = view.composite_of(subject) else {
        return ProvenanceAnswer {
            subject,
            tasks: BTreeSet::new(),
            composites: BTreeSet::new(),
            edges_traversed: 0,
        };
    };
    let mut composites: BTreeSet<CompositeTaskId> = BTreeSet::new();
    let mut edges = 0usize;
    if let Some(start_node) = induced.node_of(start_composite) {
        let mut visited: BTreeSet<wolves_graph::NodeId> = BTreeSet::new();
        let mut stack = vec![start_node];
        while let Some(node) = stack.pop() {
            for pred in induced.graph.predecessors(node) {
                edges += 1;
                if visited.insert(pred) {
                    stack.push(pred);
                }
            }
        }
        for node in visited {
            if let Some(composite) = induced.composite_of(node) {
                composites.insert(composite);
            }
        }
    }
    // Everything inside the subject's own composite (other than the subject)
    // is also presented as provenance by the view, since the composite is an
    // opaque unit to the user.
    let mut tasks: BTreeSet<TaskId> = BTreeSet::new();
    if let Ok(own) = view.composite(start_composite) {
        tasks.extend(own.members().iter().copied().filter(|&t| t != subject));
    }
    for &composite in &composites {
        if let Ok(c) = view.composite(composite) {
            tasks.extend(c.members().iter().copied());
        }
    }
    ProvenanceAnswer {
        subject,
        tasks,
        composites,
        edges_traversed: edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wolves_core::correct::{correct_view, StrongCorrector};
    use wolves_repo::figure1;

    #[test]
    fn workflow_level_provenance_is_the_ancestor_set() {
        let fixture = figure1();
        // provenance of Format alignment (8): 1, 2, 6, 7
        let answer = workflow_level_provenance(&fixture.spec, fixture.task(8));
        let expected: BTreeSet<TaskId> = [
            fixture.task(1),
            fixture.task(2),
            fixture.task(6),
            fixture.task(7),
        ]
        .into_iter()
        .collect();
        assert_eq!(answer.tasks, expected);
        assert!(answer.edges_traversed >= expected.len());
    }

    #[test]
    fn unsound_view_reports_spurious_provenance() {
        // This is the paper's motivating example: through the unsound view,
        // the output of composite 18 (Format alignment) appears to depend on
        // composite 14 (Extract annotations), i.e. on task 3.
        let fixture = figure1();
        let answer = view_level_provenance(&fixture.spec, &fixture.view, fixture.task(8));
        assert!(
            answer.tasks.contains(&fixture.task(3)),
            "spurious task 3 reported"
        );
        let truth = workflow_level_provenance(&fixture.spec, fixture.task(8));
        assert!(!truth.tasks.contains(&fixture.task(3)));
        // composites 13, 14, 15, 16 are all reported, as the paper states
        assert_eq!(answer.composites.len(), 4);
    }

    #[test]
    fn corrected_view_answers_match_the_ground_truth() {
        let fixture = figure1();
        let (corrected, _) =
            correct_view(&fixture.spec, &fixture.view, &StrongCorrector::new()).unwrap();
        let answer = view_level_provenance(&fixture.spec, &corrected, fixture.task(8));
        let truth = workflow_level_provenance(&fixture.spec, fixture.task(8));
        assert_eq!(answer.tasks, truth.tasks);
    }

    #[test]
    fn view_level_queries_traverse_fewer_edges() {
        let fixture = figure1();
        let view_answer = view_level_provenance(&fixture.spec, &fixture.view, fixture.task(11));
        let workflow_answer = workflow_level_provenance(&fixture.spec, fixture.task(11));
        assert!(view_answer.edges_traversed <= workflow_answer.edges_traversed);
    }

    #[test]
    fn unknown_subjects_yield_empty_answers() {
        let fixture = figure1();
        let ghost = TaskId::from_index(500);
        let answer = view_level_provenance(&fixture.spec, &fixture.view, ghost);
        assert!(answer.tasks.is_empty());
        assert_eq!(answer.edges_traversed, 0);
        let index = ViewProvenanceIndex::new(&fixture.spec, &fixture.view);
        assert!(index.provenance(&fixture.view, ghost).tasks.is_empty());
        assert!(workflow_level_impact(&fixture.spec, ghost).tasks.is_empty());
    }

    #[test]
    fn impact_is_the_descendant_set() {
        let fixture = figure1();
        // impact of Create alignment (7): 8, 11, 12
        let answer = workflow_level_impact(&fixture.spec, fixture.task(7));
        let expected: BTreeSet<TaskId> = [fixture.task(8), fixture.task(11), fixture.task(12)]
            .into_iter()
            .collect();
        assert_eq!(answer.tasks, expected);
        assert_eq!(answer.edges_traversed, 0);
        // impact and provenance are converses
        for &t in &answer.tasks {
            let upstream = workflow_level_provenance(&fixture.spec, t);
            assert!(upstream.tasks.contains(&fixture.task(7)));
        }
    }

    #[test]
    fn index_answers_match_the_traversal_for_every_subject() {
        let fixture = figure1();
        let index = ViewProvenanceIndex::new(&fixture.spec, &fixture.view);
        for subject in fixture.spec.task_ids() {
            let walked = view_level_provenance(&fixture.spec, &fixture.view, subject);
            let indexed = index.provenance(&fixture.view, subject);
            assert_eq!(indexed.tasks, walked.tasks, "tasks for {subject:?}");
            assert_eq!(
                indexed.composites, walked.composites,
                "composites for {subject:?}"
            );
        }
    }

    #[test]
    fn index_matches_traversal_through_a_view_level_cycle() {
        // two composites with edges both ways: a <-> b at the view level
        // (the spec is a DAG; the cycle exists only after grouping)
        use wolves_workflow::{AtomicTask, DataDependency, WorkflowView};
        let mut spec = wolves_workflow::WorkflowSpec::new("viewcycle");
        let t: Vec<TaskId> = (0..4)
            .map(|i| spec.add_task(AtomicTask::new(format!("t{i}"))).unwrap())
            .collect();
        // t0 -> t1 (a -> b), t2 -> t3 (b -> a)
        spec.add_dependency(t[0], t[1], DataDependency::unnamed())
            .unwrap();
        spec.add_dependency(t[2], t[3], DataDependency::unnamed())
            .unwrap();
        let view = WorkflowView::from_groups(
            &spec,
            "cyclic-view",
            vec![
                ("a".into(), vec![t[0], t[3]]),
                ("b".into(), vec![t[1], t[2]]),
            ],
        )
        .unwrap();
        let index = ViewProvenanceIndex::new(&spec, &view);
        for &subject in &t {
            let walked = view_level_provenance(&spec, &view, subject);
            let indexed = index.provenance(&view, subject);
            assert_eq!(indexed.tasks, walked.tasks);
            assert_eq!(indexed.composites, walked.composites);
            // both composites sit on the view-level cycle, so both appear
            assert_eq!(indexed.composites.len(), 2);
        }
    }
}
