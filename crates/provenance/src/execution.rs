//! Workflow-execution simulation.
//!
//! Real provenance systems record, for every run, which task invocation read
//! and produced which data items. No such traces ship with the paper, so the
//! simulator executes a specification once per run: every task becomes one
//! invocation, every data dependency becomes one data item flowing between
//! the corresponding invocations (the paper's Figure 1 notes that data items
//! are omitted from the drawing "for simplicity"; here they are explicit).

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wolves_graph::{DiGraph, NodeId};
use wolves_workflow::{TaskId, WorkflowSpec};

/// A node of the provenance graph.
#[derive(Debug, Clone, PartialEq)]
pub enum ProvNode {
    /// One invocation of an atomic task.
    Invocation {
        /// The workflow task that was invoked.
        task: TaskId,
        /// Task name (copied so the provenance graph is self-contained).
        name: String,
        /// Simulated execution duration in milliseconds.
        duration_ms: u64,
    },
    /// One data item produced by an invocation and consumed by another.
    Data {
        /// Human-readable label of the data item.
        label: String,
        /// Simulated payload size in bytes.
        size_bytes: u64,
    },
}

impl ProvNode {
    /// `true` for invocation nodes.
    #[must_use]
    pub fn is_invocation(&self) -> bool {
        matches!(self, ProvNode::Invocation { .. })
    }
}

/// A simulated execution (run) of a workflow: the provenance graph plus the
/// mapping from workflow tasks to their invocation nodes.
#[derive(Debug, Clone)]
pub struct Execution {
    /// Identifier of the run (the simulation seed).
    pub run_id: u64,
    /// The provenance graph: invocation and data nodes, edges directed along
    /// the dataflow (producer → data → consumer).
    pub graph: DiGraph<ProvNode, ()>,
    invocation_of: BTreeMap<TaskId, NodeId>,
}

impl Execution {
    /// The invocation node of a workflow task, if the task was executed.
    #[must_use]
    pub fn invocation_of(&self, task: TaskId) -> Option<NodeId> {
        self.invocation_of.get(&task).copied()
    }

    /// Number of invocation nodes.
    #[must_use]
    pub fn invocation_count(&self) -> usize {
        self.graph
            .nodes()
            .filter(|(_, n)| n.is_invocation())
            .count()
    }

    /// Number of data-item nodes.
    #[must_use]
    pub fn data_item_count(&self) -> usize {
        self.graph.node_count() - self.invocation_count()
    }
}

/// Simulates one run of the workflow. The structure is deterministic;
/// durations and data sizes vary with the seed.
#[must_use]
pub fn simulate_execution(spec: &WorkflowSpec, run_id: u64) -> Execution {
    let mut rng = StdRng::seed_from_u64(run_id);
    let mut graph: DiGraph<ProvNode, ()> = DiGraph::with_capacity(
        spec.task_count() + spec.dependency_count(),
        spec.dependency_count() * 2,
    );
    let mut invocation_of = BTreeMap::new();
    for (task, payload) in spec.tasks() {
        let node = graph.add_node(ProvNode::Invocation {
            task,
            name: payload.name.clone(),
            duration_ms: rng.gen_range(5..5_000),
        });
        invocation_of.insert(task, node);
    }
    for (from, to) in spec.dependencies() {
        let from_name = spec.task(from).map(|t| t.name.clone()).unwrap_or_default();
        let to_name = spec.task(to).map(|t| t.name.clone()).unwrap_or_default();
        let data = graph.add_node(ProvNode::Data {
            label: format!("{from_name} -> {to_name}"),
            size_bytes: rng.gen_range(1_024..10_000_000),
        });
        graph
            .add_edge(invocation_of[&from], data, ())
            .expect("valid producer edge");
        graph
            .add_edge(data, invocation_of[&to], ())
            .expect("valid consumer edge");
    }
    Execution {
        run_id,
        graph,
        invocation_of,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wolves_repo::figure1;

    #[test]
    fn execution_mirrors_the_workflow_structure() {
        let fixture = figure1();
        let run = simulate_execution(&fixture.spec, 1);
        assert_eq!(run.invocation_count(), fixture.spec.task_count());
        assert_eq!(run.data_item_count(), fixture.spec.dependency_count());
        // every workflow edge becomes producer -> data -> consumer
        assert_eq!(run.graph.edge_count(), fixture.spec.dependency_count() * 2);
    }

    #[test]
    fn provenance_graph_is_acyclic() {
        let fixture = figure1();
        let run = simulate_execution(&fixture.spec, 2);
        assert!(wolves_graph::topo::is_acyclic(&run.graph));
    }

    #[test]
    fn invocation_lookup_and_determinism() {
        let fixture = figure1();
        let a = simulate_execution(&fixture.spec, 7);
        let b = simulate_execution(&fixture.spec, 7);
        for task in fixture.spec.task_ids() {
            assert!(a.invocation_of(task).is_some());
            assert_eq!(a.invocation_of(task), b.invocation_of(task));
        }
        assert!(a
            .invocation_of(wolves_workflow::TaskId::from_index(999))
            .is_none());
    }

    #[test]
    fn runs_differ_in_measured_values_not_structure() {
        let fixture = figure1();
        let a = simulate_execution(&fixture.spec, 1);
        let b = simulate_execution(&fixture.spec, 2);
        assert_eq!(a.graph.node_count(), b.graph.node_count());
        let durations = |e: &Execution| -> Vec<u64> {
            e.graph
                .nodes()
                .filter_map(|(_, n)| match n {
                    ProvNode::Invocation { duration_ms, .. } => Some(*duration_ms),
                    ProvNode::Data { .. } => None,
                })
                .collect()
        };
        assert_ne!(durations(&a), durations(&b));
    }
}
