//! Accuracy of view-level provenance answers.

use std::collections::BTreeSet;

use wolves_workflow::TaskId;

use crate::query::ProvenanceAnswer;

/// Precision/recall of a view-level provenance answer against the
/// workflow-level ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct ProvenanceAccuracy {
    /// Fraction of reported tasks that are truly in the provenance
    /// (1.0 when nothing spurious is reported; 1.0 for empty reports).
    pub precision: f64,
    /// Fraction of true provenance tasks that were reported.
    pub recall: f64,
    /// Tasks reported although they are not in the true provenance.
    pub spurious: BTreeSet<TaskId>,
    /// True provenance tasks that were not reported.
    pub missing: BTreeSet<TaskId>,
}

impl ProvenanceAccuracy {
    /// `true` when the answer is exactly the ground truth.
    #[must_use]
    pub fn is_exact(&self) -> bool {
        self.spurious.is_empty() && self.missing.is_empty()
    }
}

/// Compares a view-level answer against the workflow-level ground truth for
/// the same subject.
///
/// # Panics
/// Panics if the two answers refer to different subjects — comparing them
/// would be meaningless.
#[must_use]
pub fn compare_to_ground_truth(
    truth: &ProvenanceAnswer,
    answer: &ProvenanceAnswer,
) -> ProvenanceAccuracy {
    assert_eq!(
        truth.subject, answer.subject,
        "accuracy comparison requires answers about the same task"
    );
    let spurious: BTreeSet<TaskId> = answer.tasks.difference(&truth.tasks).copied().collect();
    let missing: BTreeSet<TaskId> = truth.tasks.difference(&answer.tasks).copied().collect();
    let true_positives = answer.tasks.len() - spurious.len();
    let precision = if answer.tasks.is_empty() {
        1.0
    } else {
        true_positives as f64 / answer.tasks.len() as f64
    };
    let recall = if truth.tasks.is_empty() {
        1.0
    } else {
        true_positives as f64 / truth.tasks.len() as f64
    };
    ProvenanceAccuracy {
        precision,
        recall,
        spurious,
        missing,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{view_level_provenance, workflow_level_provenance};
    use wolves_core::correct::{correct_view, StrongCorrector};
    use wolves_repo::figure1;

    #[test]
    fn unsound_views_lose_precision_but_not_recall() {
        let fixture = figure1();
        let subject = fixture.task(8);
        let truth = workflow_level_provenance(&fixture.spec, subject);
        let answer = view_level_provenance(&fixture.spec, &fixture.view, subject);
        let accuracy = compare_to_ground_truth(&truth, &answer);
        assert!(
            accuracy.precision < 1.0,
            "spurious provenance must hurt precision"
        );
        assert!(
            (accuracy.recall - 1.0).abs() < 1e-9,
            "views never hide true provenance"
        );
        assert!(accuracy.spurious.contains(&fixture.task(3)));
        assert!(accuracy.missing.is_empty());
        assert!(!accuracy.is_exact());
    }

    #[test]
    fn corrected_views_are_exact() {
        let fixture = figure1();
        let (corrected, _) =
            correct_view(&fixture.spec, &fixture.view, &StrongCorrector::new()).unwrap();
        let subject = fixture.task(8);
        let truth = workflow_level_provenance(&fixture.spec, subject);
        let answer = view_level_provenance(&fixture.spec, &corrected, subject);
        let accuracy = compare_to_ground_truth(&truth, &answer);
        assert!(accuracy.is_exact());
        assert!((accuracy.precision - 1.0).abs() < 1e-9);
        assert!((accuracy.recall - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "same task")]
    fn comparing_different_subjects_panics() {
        let fixture = figure1();
        let a = workflow_level_provenance(&fixture.spec, fixture.task(8));
        let b = workflow_level_provenance(&fixture.spec, fixture.task(11));
        let _ = compare_to_ground_truth(&a, &b);
    }

    #[test]
    fn empty_answers_score_perfect_precision() {
        let fixture = figure1();
        // task 1 has no provenance at all
        let truth = workflow_level_provenance(&fixture.spec, fixture.task(1));
        let answer = view_level_provenance(&fixture.spec, &fixture.view, fixture.task(1));
        let accuracy = compare_to_ground_truth(&truth, &answer);
        assert!(truth.tasks.is_empty());
        // the view groups task 1 with task 2, so the composite's other
        // member is reported; recall is vacuously 1.0
        assert!((accuracy.recall - 1.0).abs() < 1e-9);
    }
}
