//! # wolves-provenance
//!
//! Provenance substrate for the WOLVES reproduction.
//!
//! The paper motivates workflow views with provenance analysis: the
//! provenance of a data item is the set of upstream steps and data that
//! produced it, queried as a transitive closure over a provenance graph.
//! Views make those queries cheaper (the view graph is much smaller), but an
//! *unsound* view returns wrong answers — the Figure 1 example reports task
//! (14) as provenance of task (18)'s output although no such dependency
//! exists.
//!
//! This crate provides:
//!
//! * [`execution`] — simulation of workflow runs producing provenance graphs
//!   (task invocations + data items), standing in for the traces a workflow
//!   engine would record.
//! * [`query`] — provenance (lineage) queries at the workflow level and at
//!   the view level, with traversal-cost accounting so the efficiency claim
//!   can be measured.
//! * [`accuracy`] — precision/recall of view-level provenance answers
//!   against the workflow-level ground truth, quantifying how much damage an
//!   unsound view does and verifying that corrected views answer correctly.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod accuracy;
pub mod execution;
pub mod query;

pub use accuracy::{compare_to_ground_truth, ProvenanceAccuracy};
pub use execution::{simulate_execution, Execution, ProvNode};
pub use query::{
    view_level_provenance, workflow_level_impact, workflow_level_provenance, ProvenanceAnswer,
    ViewProvenanceIndex,
};
