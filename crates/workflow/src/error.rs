//! Errors of the workflow model layer.

use std::fmt;

use crate::task::TaskId;
use crate::view::CompositeTaskId;

/// Errors raised while building or manipulating workflow specifications and
/// views.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkflowError {
    /// A task id does not belong to the specification.
    UnknownTask(TaskId),
    /// A task name was not found during name-based lookup.
    UnknownTaskName(String),
    /// Two tasks with the same name were added to one specification.
    DuplicateTaskName(String),
    /// No data dependency exists between the two tasks.
    UnknownDependency(TaskId, TaskId),
    /// A composite task id does not belong to the view.
    UnknownComposite(CompositeTaskId),
    /// A composite task would be empty.
    EmptyComposite(String),
    /// The groups supplied for a view do not partition the specification's
    /// tasks: `missing` lists uncovered tasks, `duplicated` lists tasks
    /// assigned to more than one composite.
    NotAPartition {
        /// Tasks of the specification not covered by any composite.
        missing: Vec<TaskId>,
        /// Tasks assigned to more than one composite.
        duplicated: Vec<TaskId>,
    },
    /// The workflow specification must be acyclic but a cycle was found.
    CyclicSpecification(TaskId),
    /// A persisted spec/view/mutation line could not be parsed (see
    /// [`crate::persist`]).
    Persist(String),
    /// Error bubbled up from the graph substrate.
    Graph(wolves_graph::GraphError),
}

impl fmt::Display for WorkflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkflowError::UnknownTask(t) => write!(f, "unknown task {t}"),
            WorkflowError::UnknownTaskName(name) => write!(f, "unknown task name '{name}'"),
            WorkflowError::DuplicateTaskName(name) => {
                write!(f, "duplicate task name '{name}'")
            }
            WorkflowError::UnknownDependency(from, to) => {
                write!(f, "no data dependency {from} -> {to}")
            }
            WorkflowError::UnknownComposite(c) => write!(f, "unknown composite task {c}"),
            WorkflowError::EmptyComposite(name) => {
                write!(f, "composite task '{name}' has no members")
            }
            WorkflowError::NotAPartition {
                missing,
                duplicated,
            } => write!(
                f,
                "view is not a partition of the workflow tasks ({} missing, {} duplicated)",
                missing.len(),
                duplicated.len()
            ),
            WorkflowError::CyclicSpecification(t) => {
                write!(f, "workflow specification has a cycle through {t}")
            }
            WorkflowError::Persist(message) => write!(f, "persist error: {message}"),
            WorkflowError::Graph(e) => write!(f, "graph error: {e}"),
        }
    }
}

impl std::error::Error for WorkflowError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WorkflowError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<wolves_graph::GraphError> for WorkflowError {
    fn from(e: wolves_graph::GraphError) -> Self {
        WorkflowError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_messages() {
        let e = WorkflowError::UnknownTaskName("frobnicate".into());
        assert!(e.to_string().contains("frobnicate"));
        let e = WorkflowError::NotAPartition {
            missing: vec![TaskId::from_index(1)],
            duplicated: vec![],
        };
        assert!(e.to_string().contains("1 missing"));
    }

    #[test]
    fn graph_errors_convert() {
        let ge = wolves_graph::GraphError::SelfLoop(TaskId::from_index(0));
        let we: WorkflowError = ge.into();
        assert!(matches!(we, WorkflowError::Graph(_)));
    }
}
