//! Typed spec mutations, the delta log and mutation epochs.
//!
//! The paper's correction loop is interactive: users iteratively refine a
//! workflow and its views. Each edit to a [`crate::WorkflowSpec`] is a small
//! delta whose impact on reachability is locally boundable, so instead of
//! throwing away every derived structure per edit, the spec
//!
//! * applies each [`SpecMutation`] through one entry point
//!   ([`crate::WorkflowSpec::apply`]),
//! * bumps a monotone **epoch** counter and appends a [`SpecDelta`] to its
//!   log, and
//! * maintains its cached reachability matrix *in place* where the delta
//!   class allows, reporting exactly which matrix rows changed
//!   ([`MutationReport`]).
//!
//! Downstream caches (the definition-level validator's
//! `DefinitionIndex`, the serving layer's per-composite verdict caches) key
//! their entries on the epoch and consume the dirty rows to invalidate only
//! what an edit could have changed.

use wolves_graph::{DeltaClass, DirtyRows};

use crate::task::TaskId;

/// A typed edit to a workflow specification, applied through
/// [`crate::WorkflowSpec::apply`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecMutation {
    /// Add a new atomic task with the given (unique) name.
    AddTask {
        /// Name of the new task.
        name: String,
    },
    /// Remove a task and every data dependency touching it.
    RemoveTask {
        /// The task to remove.
        task: TaskId,
    },
    /// Add a data dependency `from -> to`.
    AddDependency {
        /// Source task.
        from: TaskId,
        /// Target task.
        to: TaskId,
    },
    /// Remove the data dependency `from -> to`.
    RemoveDependency {
        /// Source task.
        from: TaskId,
        /// Target task.
        to: TaskId,
    },
}

/// One entry of a specification's delta log: what changed, at which epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecDelta {
    /// The epoch this delta produced (the log is strictly increasing).
    pub epoch: u64,
    /// What changed.
    pub kind: SpecDeltaKind,
}

/// The change recorded by a [`SpecDelta`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecDeltaKind {
    /// A task was added.
    TaskAdded(TaskId),
    /// A task (and its incident dependencies) was removed.
    TaskRemoved(TaskId),
    /// A dependency was added.
    DependencyAdded(TaskId, TaskId),
    /// A dependency was removed.
    DependencyRemoved(TaskId, TaskId),
}

/// Outcome of applying one [`SpecMutation`].
#[derive(Debug, Clone)]
pub struct MutationReport {
    /// The specification's epoch after the mutation.
    pub epoch: u64,
    /// How the cached reachability matrix absorbed the delta: inserts are
    /// monotone-safe or local rebuilds, removals run the decremental path.
    /// [`DeltaClass::Structural`] means the matrix was discarded and will be
    /// rebuilt from scratch on next use (only reported when no matrix was
    /// cached yet, or on a defensive fallback).
    pub class: DeltaClass,
    /// Matrix rows (component indices) this mutation dirtied. `all` for
    /// structural deltas.
    pub dirty: DirtyRows,
    /// The task created by [`SpecMutation::AddTask`], if any.
    pub task: Option<TaskId>,
}
