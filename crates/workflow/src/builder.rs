//! Fluent builders for workflow specifications and views.

use crate::error::WorkflowError;
use crate::spec::WorkflowSpec;
use crate::task::{AtomicTask, DataDependency, TaskId};
use crate::view::WorkflowView;

/// Incremental builder for a [`WorkflowSpec`].
///
/// The builder keeps adding tasks and dependencies and performs the
/// acyclicity check once at [`WorkflowBuilder::build`] time, which is both
/// cheaper and gives better error locality than checking after every edge.
#[derive(Debug)]
pub struct WorkflowBuilder {
    spec: WorkflowSpec,
    pending_error: Option<WorkflowError>,
}

impl WorkflowBuilder {
    /// Starts a new builder for a workflow with the given name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        WorkflowBuilder {
            spec: WorkflowSpec::new(name),
            pending_error: None,
        }
    }

    /// Adds a task by name and returns its id.
    ///
    /// Duplicate names are recorded as a deferred error reported by
    /// [`WorkflowBuilder::build`]; the returned id in that case refers to the
    /// previously added task so that call sites can keep chaining.
    pub fn task(&mut self, name: impl Into<String>) -> TaskId {
        self.task_full(AtomicTask::new(name))
    }

    /// Adds a fully specified task and returns its id (same deferred-error
    /// contract as [`WorkflowBuilder::task`]).
    pub fn task_full(&mut self, task: AtomicTask) -> TaskId {
        let name = task.name.clone();
        match self.spec.add_task(task) {
            Ok(id) => id,
            Err(e) => {
                if self.pending_error.is_none() {
                    self.pending_error = Some(e);
                }
                self.spec
                    .task_by_name(&name)
                    .expect("duplicate name implies the task exists")
            }
        }
    }

    /// Adds a data dependency between two previously added tasks.
    ///
    /// # Errors
    /// Fails immediately on unknown endpoints, self-loops or duplicates.
    pub fn edge(&mut self, from: TaskId, to: TaskId) -> Result<&mut Self, WorkflowError> {
        self.spec
            .add_dependency(from, to, DataDependency::unnamed())?;
        Ok(self)
    }

    /// Adds a labelled data dependency.
    ///
    /// # Errors
    /// Same as [`WorkflowBuilder::edge`].
    pub fn edge_named(
        &mut self,
        from: TaskId,
        to: TaskId,
        data: impl Into<String>,
    ) -> Result<&mut Self, WorkflowError> {
        self.spec
            .add_dependency(from, to, DataDependency::named(data))?;
        Ok(self)
    }

    /// Adds a chain of dependencies `tasks[0] -> tasks[1] -> …`.
    ///
    /// # Errors
    /// Same as [`WorkflowBuilder::edge`].
    pub fn chain(&mut self, tasks: &[TaskId]) -> Result<&mut Self, WorkflowError> {
        for pair in tasks.windows(2) {
            self.edge(pair[0], pair[1])?;
        }
        Ok(self)
    }

    /// Finishes the build, checking deferred errors and acyclicity.
    ///
    /// # Errors
    /// Reports the first duplicate-name error, or a cycle in the resulting
    /// specification.
    pub fn build(self) -> Result<WorkflowSpec, WorkflowError> {
        if let Some(e) = self.pending_error {
            return Err(e);
        }
        self.spec.ensure_acyclic()?;
        Ok(self.spec)
    }
}

/// Builder for [`WorkflowView`]s over an existing specification, allowing
/// groups to be declared by task id or by task name.
#[derive(Debug)]
pub struct ViewBuilder<'a> {
    spec: &'a WorkflowSpec,
    name: String,
    groups: Vec<(String, Vec<TaskId>)>,
    pending_error: Option<WorkflowError>,
}

impl<'a> ViewBuilder<'a> {
    /// Starts building a view named `name` over `spec`.
    #[must_use]
    pub fn new(spec: &'a WorkflowSpec, name: impl Into<String>) -> Self {
        ViewBuilder {
            spec,
            name: name.into(),
            groups: Vec::new(),
            pending_error: None,
        }
    }

    /// Adds a composite task with explicit member ids.
    #[must_use]
    pub fn group(mut self, name: impl Into<String>, members: Vec<TaskId>) -> Self {
        self.groups.push((name.into(), members));
        self
    }

    /// Adds a composite task whose members are given by task name.
    #[must_use]
    pub fn group_by_name(mut self, name: impl Into<String>, members: &[&str]) -> Self {
        let mut ids = Vec::with_capacity(members.len());
        for &member in members {
            match self.spec.task_by_name(member) {
                Some(id) => ids.push(id),
                None => {
                    if self.pending_error.is_none() {
                        self.pending_error =
                            Some(WorkflowError::UnknownTaskName(member.to_owned()));
                    }
                }
            }
        }
        self.groups.push((name.into(), ids));
        self
    }

    /// Puts every task not mentioned by a previous group into its own
    /// singleton composite named after the task.
    #[must_use]
    pub fn singletons_for_rest(mut self) -> Self {
        let covered: std::collections::BTreeSet<TaskId> = self
            .groups
            .iter()
            .flat_map(|(_, members)| members.iter().copied())
            .collect();
        for (id, task) in self.spec.tasks() {
            if !covered.contains(&id) {
                self.groups.push((task.name.clone(), vec![id]));
            }
        }
        self
    }

    /// Builds the view.
    ///
    /// # Errors
    /// Reports unknown task names and partition violations.
    pub fn build(self) -> Result<WorkflowView, WorkflowError> {
        if let Some(e) = self.pending_error {
            return Err(e);
        }
        WorkflowView::from_groups(self.spec, self.name, self.groups)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_constructs_a_valid_spec() {
        let mut b = WorkflowBuilder::new("demo");
        let s = b.task("select");
        let p = b.task("process");
        let d = b.task("display");
        b.chain(&[s, p, d]).unwrap();
        let spec = b.build().unwrap();
        assert_eq!(spec.task_count(), 3);
        assert!(spec.reaches(s, d));
    }

    #[test]
    fn builder_reports_duplicate_names_at_build_time() {
        let mut b = WorkflowBuilder::new("demo");
        let a1 = b.task("same");
        let a2 = b.task("same");
        assert_eq!(a1, a2);
        assert!(matches!(
            b.build(),
            Err(WorkflowError::DuplicateTaskName(_))
        ));
    }

    #[test]
    fn builder_rejects_cycles_at_build_time() {
        let mut b = WorkflowBuilder::new("demo");
        let a = b.task("a");
        let c = b.task("b");
        b.edge(a, c).unwrap();
        b.edge(c, a).unwrap();
        assert!(matches!(
            b.build(),
            Err(WorkflowError::CyclicSpecification(_))
        ));
    }

    #[test]
    fn view_builder_by_name_and_rest() {
        let mut b = WorkflowBuilder::new("demo");
        let s = b.task("select");
        let p = b.task("process");
        let d = b.task("display");
        b.chain(&[s, p, d]).unwrap();
        let spec = b.build().unwrap();

        let view = ViewBuilder::new(&spec, "grouped")
            .group_by_name("prepare", &["select", "process"])
            .singletons_for_rest()
            .build()
            .unwrap();
        assert_eq!(view.composite_count(), 2);
        assert_eq!(view.composite_of(s), view.composite_of(p));
        assert_ne!(view.composite_of(s), view.composite_of(d));
    }

    #[test]
    fn view_builder_flags_unknown_names() {
        let mut b = WorkflowBuilder::new("demo");
        b.task("only");
        let spec = b.build().unwrap();
        let err = ViewBuilder::new(&spec, "v")
            .group_by_name("g", &["missing"])
            .build()
            .unwrap_err();
        assert!(matches!(err, WorkflowError::UnknownTaskName(_)));
    }

    #[test]
    fn edge_named_carries_data_label() {
        let mut b = WorkflowBuilder::new("demo");
        let a = b.task("a");
        let c = b.task("b");
        b.edge_named(a, c, "sequences").unwrap();
        let spec = b.build().unwrap();
        assert_eq!(spec.dependency_count(), 1);
    }
}
