//! Workflow specifications.

use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};

use wolves_graph::{Csr, DeltaClass, DiGraph, DirtyRows, ReachMatrix};

use crate::error::WorkflowError;
use crate::mutation::{MutationReport, SpecDelta, SpecDeltaKind, SpecMutation};
use crate::task::{AtomicTask, DataDependency, TaskId};

/// A workflow specification: a DAG of atomic tasks connected by data
/// dependencies (paper Figure 1(a)).
///
/// The specification owns a lazily computed all-pairs reachability matrix;
/// every soundness question ultimately reduces to `reach(t1, t2)` queries
/// against it. Mutations run through the epoch machinery (see
/// [`crate::mutation`]): each edit bumps the epoch, appends to the delta
/// log, and maintains the cached matrix *in place* where the delta class
/// allows — additive edits (task/dependency inserts) propagate rows
/// forward, removals run the decremental path (SCC split detection plus
/// bounded ancestor re-derivation over the cached CSR snapshot). No single
/// edit pays a full rebuild once the matrix exists.
#[derive(Debug)]
pub struct WorkflowSpec {
    name: String,
    graph: DiGraph<AtomicTask, DataDependency>,
    by_name: BTreeMap<String, TaskId>,
    reach: OnceLock<ReachMatrix>,
    /// Shared CSR snapshot of `graph`, built on first demand and dropped by
    /// every mutation. All read-side consumers (SCC, closure build,
    /// provenance induced graphs, decremental reverse-BFS) reuse this one
    /// snapshot instead of re-walking the adjacency lists each.
    csr: OnceLock<Arc<Csr>>,
    epoch: u64,
    /// Matrix rows dirtied since the last [`WorkflowSpec::take_dirty`].
    dirty: DirtyRows,
    log: Vec<SpecDelta>,
    /// Upper bound on retained delta-log entries (see
    /// [`WorkflowSpec::set_delta_log_cap`]).
    log_cap: usize,
}

impl Clone for WorkflowSpec {
    /// Cloning preserves the epoch, the delta log **and** the cached
    /// reachability matrix, so copy-on-write holders (e.g. the serving
    /// layer's `Arc::make_mut`) stay incremental across clones.
    fn clone(&self) -> Self {
        let reach = OnceLock::new();
        if let Some(matrix) = self.reach.get() {
            let _ = reach.set(matrix.clone());
        }
        let csr = OnceLock::new();
        if let Some(snapshot) = self.csr.get() {
            let _ = csr.set(Arc::clone(snapshot));
        }
        WorkflowSpec {
            name: self.name.clone(),
            graph: self.graph.clone(),
            by_name: self.by_name.clone(),
            reach,
            csr,
            epoch: self.epoch,
            dirty: self.dirty.clone(),
            log: self.log.clone(),
            log_cap: self.log_cap,
        }
    }
}

impl WorkflowSpec {
    /// Creates an empty specification.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        WorkflowSpec {
            name: name.into(),
            graph: DiGraph::new(),
            by_name: BTreeMap::new(),
            reach: OnceLock::new(),
            csr: OnceLock::new(),
            epoch: 0,
            dirty: DirtyRows::clean(0),
            log: Vec::new(),
            log_cap: Self::DELTA_LOG_CAP,
        }
    }

    /// Rebuilds a specification from restored parts — the storage layer's
    /// recovery path. The graph must carry the exact slot layout (including
    /// tombstones) of the serialised spec so future task/dependency ids are
    /// assigned identically; `epoch` resumes the mutation counter and the
    /// delta log restarts empty (every retained delta was consumed by the
    /// write-ahead log before the snapshot was taken).
    pub(crate) fn restore(
        name: String,
        graph: DiGraph<AtomicTask, DataDependency>,
        by_name: BTreeMap<String, TaskId>,
        epoch: u64,
        log_cap: usize,
    ) -> Self {
        WorkflowSpec {
            name,
            graph,
            by_name,
            reach: OnceLock::new(),
            csr: OnceLock::new(),
            epoch,
            // a restored spec has no incremental history: consumers must
            // treat every derived row as dirty until they rebuild
            dirty: DirtyRows::all(),
            log: Vec::new(),
            log_cap,
        }
    }

    /// The specification's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of atomic tasks.
    #[must_use]
    pub fn task_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Number of data dependencies.
    #[must_use]
    pub fn dependency_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// Adds an atomic task.
    ///
    /// # Errors
    /// Fails if a task with the same name already exists.
    pub fn add_task(&mut self, task: AtomicTask) -> Result<TaskId, WorkflowError> {
        self.add_task_mutation(task)
            .map(|report| report.task.expect("AddTask reports the created task"))
    }

    /// Adds a data dependency `from -> to`.
    ///
    /// Duplicate dependencies between the same tasks are rejected — a data
    /// dependency either exists or it does not.
    ///
    /// # Errors
    /// Fails on unknown endpoints, self-loops and duplicates.
    pub fn add_dependency(
        &mut self,
        from: TaskId,
        to: TaskId,
        dependency: DataDependency,
    ) -> Result<(), WorkflowError> {
        self.add_dependency_mutation(from, to, dependency)
            .map(|_| ())
    }

    /// Removes the data dependency `from -> to`.
    ///
    /// # Errors
    /// Fails if no such dependency exists.
    pub fn remove_dependency(&mut self, from: TaskId, to: TaskId) -> Result<(), WorkflowError> {
        self.remove_dependency_mutation(from, to).map(|_| ())
    }

    /// Removes a task and every dependency touching it, returning its
    /// payload.
    ///
    /// # Errors
    /// Fails if the id does not belong to this specification.
    pub fn remove_task(&mut self, id: TaskId) -> Result<AtomicTask, WorkflowError> {
        self.remove_task_mutation(id).map(|(task, _)| task)
    }

    fn remove_task_mutation(
        &mut self,
        id: TaskId,
    ) -> Result<(AtomicTask, MutationReport), WorkflowError> {
        // take the CSR snapshot *before* editing the graph: the decremental
        // path walks the pre-removal adjacency and skips the dead node
        let snapshot = std::mem::take(&mut self.csr).into_inner();
        let task = match self.graph.remove_node(id) {
            Ok(task) => task,
            Err(_) => {
                if let Some(csr) = snapshot {
                    let _ = self.csr.set(csr);
                }
                return Err(WorkflowError::UnknownTask(id));
            }
        };
        self.by_name.remove(&task.name);
        let (class, dirty) = match self.reach.get_mut() {
            Some(matrix) => {
                let outcome = match snapshot {
                    Some(csr) => matrix.remove_node_csr(&csr, id),
                    None => matrix.remove_node(&self.graph, id),
                };
                match outcome {
                    Ok(outcome) => (outcome.class, outcome.dirty),
                    // defensive: a node the matrix never saw forces a
                    // rebuild (cannot happen when tasks enter via add_task)
                    Err(_) => {
                        self.reach = OnceLock::new();
                        (DeltaClass::Structural, DirtyRows::all())
                    }
                }
            }
            None => (DeltaClass::Structural, DirtyRows::all()),
        };
        let report = self.record(SpecDeltaKind::TaskRemoved(id), class, dirty, None);
        Ok((task, report))
    }

    /// Applies one typed mutation, returning the epoch, delta class and
    /// dirty rows the edit produced. This is the entry point the serving
    /// layer's `mutate` requests go through; the granular methods
    /// ([`WorkflowSpec::add_task`] etc.) share the same machinery.
    ///
    /// # Errors
    /// Propagates the underlying edit's failure (duplicate names, unknown
    /// endpoints, missing dependencies).
    pub fn apply(&mut self, mutation: SpecMutation) -> Result<MutationReport, WorkflowError> {
        match mutation {
            SpecMutation::AddTask { name } => self.add_task_mutation(AtomicTask::new(name)),
            SpecMutation::RemoveTask { task } => {
                self.remove_task_mutation(task).map(|(_, report)| report)
            }
            SpecMutation::AddDependency { from, to } => {
                self.add_dependency_mutation(from, to, DataDependency::unnamed())
            }
            SpecMutation::RemoveDependency { from, to } => {
                self.remove_dependency_mutation(from, to)
            }
        }
    }

    /// The specification's mutation epoch: 0 at creation, bumped by every
    /// successful mutation. Caches derived from the spec key their validity
    /// on this counter.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The typed delta log, in epoch order. The log is bounded: once it
    /// reaches the configured cap ([`WorkflowSpec::delta_log_cap`],
    /// default [`WorkflowSpec::DELTA_LOG_CAP`]) the oldest half is dropped,
    /// so long-lived specs (e.g. in the serving layer, where every
    /// copy-on-write clone copies the log) hold the most recent edits only —
    /// each entry still carries its epoch, so gaps are detectable.
    #[must_use]
    pub fn delta_log(&self) -> &[SpecDelta] {
        &self.log
    }

    /// The contiguous slice of deltas newer than `epoch`, in epoch order —
    /// the fan-out hook for consumers that tail the bounded log (the serving
    /// layer's write-ahead log and its change-data-capture subscribers).
    /// Returns `None` when the bound already evicted part of the requested
    /// range, so a consumer that fell behind sees the gap instead of a
    /// silently holed stream.
    #[must_use]
    pub fn deltas_since(&self, epoch: u64) -> Option<Vec<SpecDelta>> {
        if self.epoch == epoch {
            return Some(Vec::new());
        }
        if self.epoch < epoch {
            return None;
        }
        let fresh: Vec<SpecDelta> = self
            .log
            .iter()
            .filter(|delta| delta.epoch > epoch)
            .cloned()
            .collect();
        let contiguous = fresh.first().map(|delta| delta.epoch) == Some(epoch + 1)
            && fresh.len() as u64 == self.epoch - epoch;
        contiguous.then_some(fresh)
    }

    /// Default upper bound on retained delta-log entries.
    pub const DELTA_LOG_CAP: usize = 1024;

    /// The configured upper bound on retained delta-log entries.
    #[must_use]
    pub fn delta_log_cap(&self) -> usize {
        self.log_cap
    }

    /// Reconfigures the delta-log bound (clamped to at least 2 so the
    /// drop-oldest-half eviction always retains the newest entry).
    ///
    /// Consumers that tail the log — the serving layer's write-ahead log
    /// consumes each delta synchronously under the shard write lock — can
    /// lower the cap to bound clone cost, or raise it when deltas are
    /// drained in larger batches. Eviction only ever drops entries that are
    /// older than the cap allows; a consumer that falls behind detects the
    /// gap through the per-entry epochs.
    pub fn set_delta_log_cap(&mut self, cap: usize) {
        self.log_cap = cap.max(2);
        if self.log.len() >= self.log_cap {
            let drop = self.log.len() - self.log_cap / 2;
            self.log.drain(..drop);
        }
    }

    /// The matrix rows dirtied since the last [`WorkflowSpec::take_dirty`]
    /// (union over all mutations in between).
    #[must_use]
    pub fn dirty_rows(&self) -> &DirtyRows {
        &self.dirty
    }

    /// Takes and resets the accumulated dirty-row set. Incremental
    /// consumers call this once per refresh; the returned set covers every
    /// mutation since the previous take.
    pub fn take_dirty(&mut self) -> DirtyRows {
        let comp_count = self.reach.get().map_or(0, ReachMatrix::comp_count);
        std::mem::replace(&mut self.dirty, DirtyRows::clean(comp_count))
    }

    fn add_task_mutation(&mut self, task: AtomicTask) -> Result<MutationReport, WorkflowError> {
        if self.by_name.contains_key(&task.name) {
            return Err(WorkflowError::DuplicateTaskName(task.name));
        }
        let name = task.name.clone();
        let id = self.graph.add_node(task);
        self.by_name.insert(name, id);
        self.csr = OnceLock::new();
        let (class, dirty) = match self.reach.get_mut() {
            Some(matrix) => {
                let outcome = matrix.insert_node(id);
                (outcome.class, outcome.dirty)
            }
            None => (DeltaClass::Structural, DirtyRows::all()),
        };
        Ok(self.record(SpecDeltaKind::TaskAdded(id), class, dirty, Some(id)))
    }

    fn add_dependency_mutation(
        &mut self,
        from: TaskId,
        to: TaskId,
        dependency: DataDependency,
    ) -> Result<MutationReport, WorkflowError> {
        self.graph.add_edge_unique(from, to, dependency)?;
        self.csr = OnceLock::new();
        let (class, dirty) = match self.reach.get_mut() {
            Some(matrix) => match matrix.insert_edge(from, to) {
                Ok(outcome) => (outcome.class, outcome.dirty),
                // defensive: an endpoint the matrix never saw forces a
                // rebuild (cannot happen when tasks enter via add_task)
                Err(_) => {
                    self.reach = OnceLock::new();
                    (DeltaClass::Structural, DirtyRows::all())
                }
            },
            None => (DeltaClass::Structural, DirtyRows::all()),
        };
        Ok(self.record(SpecDeltaKind::DependencyAdded(from, to), class, dirty, None))
    }

    fn remove_dependency_mutation(
        &mut self,
        from: TaskId,
        to: TaskId,
    ) -> Result<MutationReport, WorkflowError> {
        let edge = self
            .graph
            .find_edge(from, to)
            .ok_or(WorkflowError::UnknownDependency(from, to))?;
        // the pre-removal CSR snapshot (if warm) drives the decremental
        // maintenance below; the removal invalidates it either way
        let snapshot = std::mem::take(&mut self.csr).into_inner();
        self.graph.remove_edge(edge)?;
        let (class, dirty) = match self.reach.get_mut() {
            Some(matrix) => {
                let outcome = match snapshot {
                    Some(csr) => matrix.remove_edge_csr(&csr, from, to),
                    None => matrix.remove_edge(&self.graph, from, to),
                };
                match outcome {
                    Ok(outcome) => (outcome.class, outcome.dirty),
                    Err(_) => {
                        self.reach = OnceLock::new();
                        (DeltaClass::Structural, DirtyRows::all())
                    }
                }
            }
            None => (DeltaClass::Structural, DirtyRows::all()),
        };
        Ok(self.record(
            SpecDeltaKind::DependencyRemoved(from, to),
            class,
            dirty,
            None,
        ))
    }

    fn record(
        &mut self,
        kind: SpecDeltaKind,
        class: DeltaClass,
        dirty: DirtyRows,
        task: Option<TaskId>,
    ) -> MutationReport {
        self.epoch += 1;
        if self.log.len() >= self.log_cap {
            // drop the oldest half in one move; amortised O(1) per mutation
            self.log.drain(..self.log_cap.div_ceil(2));
        }
        self.log.push(SpecDelta {
            epoch: self.epoch,
            kind,
        });
        self.dirty.union(&dirty);
        MutationReport {
            epoch: self.epoch,
            class,
            dirty,
            task,
        }
    }

    /// Looks up a task id by name.
    #[must_use]
    pub fn task_by_name(&self, name: &str) -> Option<TaskId> {
        self.by_name.get(name).copied()
    }

    /// Returns the task payload for an id.
    ///
    /// # Errors
    /// Fails if the id does not belong to this specification.
    pub fn task(&self, id: TaskId) -> Result<&AtomicTask, WorkflowError> {
        self.graph
            .node_weight(id)
            .map_err(|_| WorkflowError::UnknownTask(id))
    }

    /// Returns `true` if `id` names a task of this specification.
    #[must_use]
    pub fn contains_task(&self, id: TaskId) -> bool {
        self.graph.contains_node(id)
    }

    /// Iterates over all task ids in id order.
    pub fn task_ids(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.graph.node_ids()
    }

    /// Iterates over `(id, task)` pairs.
    pub fn tasks(&self) -> impl Iterator<Item = (TaskId, &AtomicTask)> + '_ {
        self.graph.nodes()
    }

    /// Iterates over all `(from, to)` data dependencies.
    pub fn dependencies(&self) -> impl Iterator<Item = (TaskId, TaskId)> + '_ {
        self.graph.edges().map(|(_, s, t, _)| (s, t))
    }

    /// Direct successors (downstream tasks) of a task.
    pub fn successors(&self, id: TaskId) -> impl Iterator<Item = TaskId> + '_ {
        self.graph.successors(id)
    }

    /// Direct predecessors (upstream tasks) of a task.
    pub fn predecessors(&self, id: TaskId) -> impl Iterator<Item = TaskId> + '_ {
        self.graph.predecessors(id)
    }

    /// The underlying graph, for algorithms that need direct access (layout,
    /// DOT export, provenance simulation).
    #[must_use]
    pub fn graph(&self) -> &DiGraph<AtomicTask, DataDependency> {
        &self.graph
    }

    /// Checks that the specification is a DAG.
    ///
    /// # Errors
    /// Returns [`WorkflowError::CyclicSpecification`] naming a task on a
    /// cycle.
    pub fn ensure_acyclic(&self) -> Result<(), WorkflowError> {
        match wolves_graph::topo::topological_sort(&self.graph) {
            Ok(_) => Ok(()),
            Err(wolves_graph::GraphError::CycleDetected(n)) => {
                Err(WorkflowError::CyclicSpecification(n))
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Returns the all-pairs reachability matrix, computing it on first use.
    ///
    /// `reachability().reachable(a, b)` is `true` iff there is a directed
    /// path (of length ≥ 0) from `a` to `b` in the specification — exactly
    /// the "directed path in the workflow specification" of Definitions 2.1
    /// and 2.3.
    #[must_use]
    pub fn reachability(&self) -> &ReachMatrix {
        self.reach
            .get_or_init(|| ReachMatrix::build_from_csr(&self.csr_snapshot()))
    }

    /// A shared CSR snapshot of the current dependency graph, built on first
    /// demand and reused by every read-side consumer (reachability builds,
    /// SCC, provenance induced graphs, decremental removal maintenance)
    /// until the next mutation invalidates it.
    #[must_use]
    pub fn csr_snapshot(&self) -> Arc<Csr> {
        Arc::clone(
            self.csr
                .get_or_init(|| Arc::new(Csr::from_graph(&self.graph))),
        )
    }

    /// Convenience wrapper for a single reachability query.
    #[must_use]
    pub fn reaches(&self, from: TaskId, to: TaskId) -> bool {
        self.reachability().reachable(from, to)
    }

    /// A deterministic topological order of the tasks.
    ///
    /// # Errors
    /// Fails if the specification is cyclic.
    pub fn topological_order(&self) -> Result<Vec<TaskId>, WorkflowError> {
        wolves_graph::topo::topological_sort(&self.graph).map_err(Into::into)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_spec() -> (WorkflowSpec, Vec<TaskId>) {
        let mut spec = WorkflowSpec::new("linear");
        let ids: Vec<TaskId> = (0..4)
            .map(|i| spec.add_task(AtomicTask::new(format!("t{i}"))).unwrap())
            .collect();
        for w in ids.windows(2) {
            spec.add_dependency(w[0], w[1], DataDependency::unnamed())
                .unwrap();
        }
        (spec, ids)
    }

    #[test]
    fn build_and_query_tasks() {
        let (spec, ids) = linear_spec();
        assert_eq!(spec.task_count(), 4);
        assert_eq!(spec.dependency_count(), 3);
        assert_eq!(spec.task(ids[0]).unwrap().name, "t0");
        assert_eq!(spec.task_by_name("t2"), Some(ids[2]));
        assert_eq!(spec.task_by_name("zzz"), None);
        assert!(spec.contains_task(ids[3]));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut spec = WorkflowSpec::new("dups");
        spec.add_task(AtomicTask::new("same")).unwrap();
        assert!(matches!(
            spec.add_task(AtomicTask::new("same")),
            Err(WorkflowError::DuplicateTaskName(_))
        ));
    }

    #[test]
    fn duplicate_dependencies_rejected() {
        let (mut spec, ids) = linear_spec();
        assert!(spec
            .add_dependency(ids[0], ids[1], DataDependency::unnamed())
            .is_err());
    }

    #[test]
    fn reachability_follows_paths() {
        let (spec, ids) = linear_spec();
        assert!(spec.reaches(ids[0], ids[3]));
        assert!(spec.reaches(ids[2], ids[2]));
        assert!(!spec.reaches(ids[3], ids[0]));
    }

    #[test]
    fn reachability_cache_invalidated_on_mutation() {
        let (mut spec, ids) = linear_spec();
        assert!(!spec.reaches(ids[3], ids[0]));
        let extra = spec.add_task(AtomicTask::new("extra")).unwrap();
        spec.add_dependency(ids[3], extra, DataDependency::unnamed())
            .unwrap();
        assert!(spec.reaches(ids[0], extra));
    }

    #[test]
    fn acyclicity_check() {
        let (spec, _) = linear_spec();
        assert!(spec.ensure_acyclic().is_ok());
        // the graph substrate allows cycles (imported workflows might have
        // them); ensure_acyclic must flag them
        let mut cyclic = WorkflowSpec::new("cyclic");
        let a = cyclic.add_task(AtomicTask::new("a")).unwrap();
        let b = cyclic.add_task(AtomicTask::new("b")).unwrap();
        cyclic
            .add_dependency(a, b, DataDependency::unnamed())
            .unwrap();
        cyclic
            .add_dependency(b, a, DataDependency::unnamed())
            .unwrap();
        assert!(matches!(
            cyclic.ensure_acyclic(),
            Err(WorkflowError::CyclicSpecification(_))
        ));
    }

    #[test]
    fn topological_order_respects_dependencies() {
        let (spec, ids) = linear_spec();
        let order = spec.topological_order().unwrap();
        assert_eq!(order, ids);
    }

    #[test]
    fn clone_preserves_structure() {
        let (spec, ids) = linear_spec();
        let cloned = spec.clone();
        assert_eq!(cloned.task_count(), 4);
        assert!(cloned.reaches(ids[0], ids[3]));
    }

    #[test]
    fn clone_preserves_the_reach_cache_and_epoch() {
        let (mut spec, ids) = linear_spec();
        let _ = spec.reachability();
        spec.add_dependency(ids[0], ids[2], DataDependency::unnamed())
            .unwrap();
        let epoch = spec.epoch();
        let cloned = spec.clone();
        assert_eq!(cloned.epoch(), epoch);
        assert_eq!(cloned.delta_log().len(), spec.delta_log().len());
        // the clone answers from the carried-over matrix without a rebuild
        assert!(cloned.reaches(ids[0], ids[3]));
        assert!(!cloned.dirty_rows().is_clean());
    }

    #[test]
    fn epoch_counts_every_mutation() {
        let (mut spec, ids) = linear_spec();
        // 4 task adds + 3 dependency adds
        assert_eq!(spec.epoch(), 7);
        assert_eq!(spec.delta_log().len(), 7);
        spec.remove_dependency(ids[0], ids[1]).unwrap();
        assert_eq!(spec.epoch(), 8);
        assert!(matches!(
            spec.delta_log().last().unwrap().kind,
            SpecDeltaKind::DependencyRemoved(_, _)
        ));
        // failed mutations bump nothing
        assert!(spec.remove_dependency(ids[0], ids[1]).is_err());
        assert_eq!(spec.epoch(), 8);
    }

    #[test]
    fn apply_routes_all_four_mutations() {
        let (mut spec, ids) = linear_spec();
        let _ = spec.reachability();
        let report = spec
            .apply(SpecMutation::AddTask {
                name: "late".to_owned(),
            })
            .unwrap();
        let late = report.task.unwrap();
        assert_eq!(report.class, DeltaClass::MonotoneSafe);
        let report = spec
            .apply(SpecMutation::AddDependency {
                from: ids[3],
                to: late,
            })
            .unwrap();
        assert_eq!(report.class, DeltaClass::MonotoneSafe);
        assert!(spec.reaches(ids[0], late));
        let report = spec
            .apply(SpecMutation::RemoveDependency {
                from: ids[3],
                to: late,
            })
            .unwrap();
        assert_eq!(report.class, DeltaClass::Decremental);
        assert!(!report.dirty.is_all());
        assert!(!spec.reaches(ids[0], late));
        let report = spec.apply(SpecMutation::RemoveTask { task: late }).unwrap();
        assert_eq!(report.class, DeltaClass::Decremental);
        assert!(!report.dirty.is_all());
        assert_eq!(spec.task_by_name("late"), None);
        assert!(spec.apply(SpecMutation::RemoveTask { task: late }).is_err());
    }

    #[test]
    fn removals_maintain_the_matrix_in_place() {
        let (mut spec, ids) = linear_spec();
        let _ = spec.reachability();
        let _ = spec.take_dirty();
        // warm CSR snapshot: the removal must reuse it (and invalidate it)
        let snapshot = spec.csr_snapshot();
        let report = spec
            .apply(SpecMutation::RemoveDependency {
                from: ids[1],
                to: ids[2],
            })
            .unwrap();
        assert_eq!(report.class, DeltaClass::Decremental);
        assert!(!spec.reaches(ids[0], ids[3]));
        assert!(spec.reaches(ids[0], ids[1]));
        assert!(spec.reaches(ids[2], ids[3]));
        // the ancestors of the cut point are dirty, the downstream rows not
        assert!(!report.dirty.is_all());
        assert!(report.dirty.count().unwrap_or(0) >= 1);
        // a fresh snapshot reflects the removal
        let fresh = spec.csr_snapshot();
        assert!(!Arc::ptr_eq(&snapshot, &fresh));
        // removing a task decrementally keeps answering queries in place
        let report = spec
            .apply(SpecMutation::RemoveTask { task: ids[0] })
            .unwrap();
        assert_eq!(report.class, DeltaClass::Decremental);
        assert!(spec.reaches(ids[2], ids[3]));
        assert!(!spec.reaches(ids[1], ids[2]));
    }

    #[test]
    fn incremental_edge_inserts_keep_the_matrix_live() {
        let (mut spec, ids) = linear_spec();
        let _ = spec.reachability();
        let _ = spec.take_dirty();
        // a cross edge that changes nothing: t0 already reaches t2
        let report = spec
            .apply(SpecMutation::AddDependency {
                from: ids[0],
                to: ids[2],
            })
            .unwrap();
        assert_eq!(report.class, DeltaClass::MonotoneSafe);
        assert!(report.dirty.is_clean());
        // a back edge closes a cycle: local row merge, not a rebuild
        let report = spec
            .apply(SpecMutation::AddDependency {
                from: ids[3],
                to: ids[1],
            })
            .unwrap();
        assert_eq!(report.class, DeltaClass::LocalRebuild);
        assert!(!report.dirty.is_clean());
        assert!(spec.reaches(ids[3], ids[1]));
        assert!(spec.reachability().strictly_reachable(ids[2], ids[2]));
        // accumulated dirt covers both mutations and resets on take
        assert!(!spec.dirty_rows().is_clean());
        let taken = spec.take_dirty();
        assert!(!taken.is_clean());
        assert!(spec.dirty_rows().is_clean());
    }

    #[test]
    fn delta_log_is_bounded_but_epochs_keep_counting() {
        let mut spec = WorkflowSpec::new("bounded");
        let a = spec.add_task(AtomicTask::new("a")).unwrap();
        let b = spec.add_task(AtomicTask::new("b")).unwrap();
        for _ in 0..WorkflowSpec::DELTA_LOG_CAP {
            spec.add_dependency(a, b, DataDependency::unnamed())
                .unwrap();
            spec.remove_dependency(a, b).unwrap();
        }
        assert!(spec.delta_log().len() <= WorkflowSpec::DELTA_LOG_CAP);
        let expected_epoch = 2 + 2 * WorkflowSpec::DELTA_LOG_CAP as u64;
        assert_eq!(spec.epoch(), expected_epoch);
        // the retained tail is the newest contiguous run
        let log = spec.delta_log();
        assert_eq!(log.last().unwrap().epoch, expected_epoch);
        for window in log.windows(2) {
            assert_eq!(window[1].epoch, window[0].epoch + 1);
        }
    }

    #[test]
    fn delta_log_cap_is_configurable() {
        let mut spec = WorkflowSpec::new("capped");
        let a = spec.add_task(AtomicTask::new("a")).unwrap();
        let b = spec.add_task(AtomicTask::new("b")).unwrap();
        assert_eq!(spec.delta_log_cap(), WorkflowSpec::DELTA_LOG_CAP);
        spec.set_delta_log_cap(8);
        assert_eq!(spec.delta_log_cap(), 8);
        for _ in 0..16 {
            spec.add_dependency(a, b, DataDependency::unnamed())
                .unwrap();
            spec.remove_dependency(a, b).unwrap();
        }
        assert!(spec.delta_log().len() <= 8);
        // the retained tail stays contiguous and newest-first
        let log = spec.delta_log();
        assert_eq!(log.last().unwrap().epoch, spec.epoch());
        for window in log.windows(2) {
            assert_eq!(window[1].epoch, window[0].epoch + 1);
        }
        // shrinking below the current length trims immediately; the floor
        // of 2 keeps the newest entry alive
        spec.set_delta_log_cap(0);
        assert_eq!(spec.delta_log_cap(), 2);
        assert!(spec.delta_log().len() <= 2);
        assert_eq!(spec.delta_log().last().unwrap().epoch, spec.epoch());
        // the clone carries the configured cap
        assert_eq!(spec.clone().delta_log_cap(), 2);
    }

    #[test]
    fn mutations_without_a_built_matrix_mark_everything_dirty() {
        let mut spec = WorkflowSpec::new("fresh");
        let a = spec.add_task(AtomicTask::new("a")).unwrap();
        let b = spec.add_task(AtomicTask::new("b")).unwrap();
        spec.add_dependency(a, b, DataDependency::unnamed())
            .unwrap();
        assert!(spec.dirty_rows().is_all());
        // first query builds the matrix; later additive edits are tracked
        assert!(spec.reaches(a, b));
        let _ = spec.take_dirty();
        let c = spec.add_task(AtomicTask::new("c")).unwrap();
        spec.add_dependency(b, c, DataDependency::unnamed())
            .unwrap();
        assert!(!spec.dirty_rows().is_all());
        assert!(spec.reaches(a, c));
    }
}
