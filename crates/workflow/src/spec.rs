//! Workflow specifications.

use std::collections::BTreeMap;
use std::sync::OnceLock;

use wolves_graph::{DiGraph, ReachMatrix};

use crate::error::WorkflowError;
use crate::task::{AtomicTask, DataDependency, TaskId};

/// A workflow specification: a DAG of atomic tasks connected by data
/// dependencies (paper Figure 1(a)).
///
/// The specification owns a lazily computed all-pairs reachability matrix;
/// every soundness question ultimately reduces to `reach(t1, t2)` queries
/// against it. Mutating the specification invalidates the cache.
#[derive(Debug)]
pub struct WorkflowSpec {
    name: String,
    graph: DiGraph<AtomicTask, DataDependency>,
    by_name: BTreeMap<String, TaskId>,
    reach: OnceLock<ReachMatrix>,
}

impl Clone for WorkflowSpec {
    fn clone(&self) -> Self {
        WorkflowSpec {
            name: self.name.clone(),
            graph: self.graph.clone(),
            by_name: self.by_name.clone(),
            reach: OnceLock::new(),
        }
    }
}

impl WorkflowSpec {
    /// Creates an empty specification.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        WorkflowSpec {
            name: name.into(),
            graph: DiGraph::new(),
            by_name: BTreeMap::new(),
            reach: OnceLock::new(),
        }
    }

    /// The specification's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of atomic tasks.
    #[must_use]
    pub fn task_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Number of data dependencies.
    #[must_use]
    pub fn dependency_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// Adds an atomic task.
    ///
    /// # Errors
    /// Fails if a task with the same name already exists.
    pub fn add_task(&mut self, task: AtomicTask) -> Result<TaskId, WorkflowError> {
        if self.by_name.contains_key(&task.name) {
            return Err(WorkflowError::DuplicateTaskName(task.name));
        }
        let name = task.name.clone();
        let id = self.graph.add_node(task);
        self.by_name.insert(name, id);
        self.invalidate();
        Ok(id)
    }

    /// Adds a data dependency `from -> to`.
    ///
    /// Duplicate dependencies between the same tasks are rejected — a data
    /// dependency either exists or it does not.
    ///
    /// # Errors
    /// Fails on unknown endpoints, self-loops and duplicates.
    pub fn add_dependency(
        &mut self,
        from: TaskId,
        to: TaskId,
        dependency: DataDependency,
    ) -> Result<(), WorkflowError> {
        self.graph.add_edge_unique(from, to, dependency)?;
        self.invalidate();
        Ok(())
    }

    /// Looks up a task id by name.
    #[must_use]
    pub fn task_by_name(&self, name: &str) -> Option<TaskId> {
        self.by_name.get(name).copied()
    }

    /// Returns the task payload for an id.
    ///
    /// # Errors
    /// Fails if the id does not belong to this specification.
    pub fn task(&self, id: TaskId) -> Result<&AtomicTask, WorkflowError> {
        self.graph
            .node_weight(id)
            .map_err(|_| WorkflowError::UnknownTask(id))
    }

    /// Returns `true` if `id` names a task of this specification.
    #[must_use]
    pub fn contains_task(&self, id: TaskId) -> bool {
        self.graph.contains_node(id)
    }

    /// Iterates over all task ids in id order.
    pub fn task_ids(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.graph.node_ids()
    }

    /// Iterates over `(id, task)` pairs.
    pub fn tasks(&self) -> impl Iterator<Item = (TaskId, &AtomicTask)> + '_ {
        self.graph.nodes()
    }

    /// Iterates over all `(from, to)` data dependencies.
    pub fn dependencies(&self) -> impl Iterator<Item = (TaskId, TaskId)> + '_ {
        self.graph.edges().map(|(_, s, t, _)| (s, t))
    }

    /// Direct successors (downstream tasks) of a task.
    pub fn successors(&self, id: TaskId) -> impl Iterator<Item = TaskId> + '_ {
        self.graph.successors(id)
    }

    /// Direct predecessors (upstream tasks) of a task.
    pub fn predecessors(&self, id: TaskId) -> impl Iterator<Item = TaskId> + '_ {
        self.graph.predecessors(id)
    }

    /// The underlying graph, for algorithms that need direct access (layout,
    /// DOT export, provenance simulation).
    #[must_use]
    pub fn graph(&self) -> &DiGraph<AtomicTask, DataDependency> {
        &self.graph
    }

    /// Checks that the specification is a DAG.
    ///
    /// # Errors
    /// Returns [`WorkflowError::CyclicSpecification`] naming a task on a
    /// cycle.
    pub fn ensure_acyclic(&self) -> Result<(), WorkflowError> {
        match wolves_graph::topo::topological_sort(&self.graph) {
            Ok(_) => Ok(()),
            Err(wolves_graph::GraphError::CycleDetected(n)) => {
                Err(WorkflowError::CyclicSpecification(n))
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Returns the all-pairs reachability matrix, computing it on first use.
    ///
    /// `reachability().reachable(a, b)` is `true` iff there is a directed
    /// path (of length ≥ 0) from `a` to `b` in the specification — exactly
    /// the "directed path in the workflow specification" of Definitions 2.1
    /// and 2.3.
    #[must_use]
    pub fn reachability(&self) -> &ReachMatrix {
        self.reach
            .get_or_init(|| ReachMatrix::build(&self.graph).expect("reachability is infallible"))
    }

    /// Convenience wrapper for a single reachability query.
    #[must_use]
    pub fn reaches(&self, from: TaskId, to: TaskId) -> bool {
        self.reachability().reachable(from, to)
    }

    /// A deterministic topological order of the tasks.
    ///
    /// # Errors
    /// Fails if the specification is cyclic.
    pub fn topological_order(&self) -> Result<Vec<TaskId>, WorkflowError> {
        wolves_graph::topo::topological_sort(&self.graph).map_err(Into::into)
    }

    fn invalidate(&mut self) {
        self.reach = OnceLock::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_spec() -> (WorkflowSpec, Vec<TaskId>) {
        let mut spec = WorkflowSpec::new("linear");
        let ids: Vec<TaskId> = (0..4)
            .map(|i| spec.add_task(AtomicTask::new(format!("t{i}"))).unwrap())
            .collect();
        for w in ids.windows(2) {
            spec.add_dependency(w[0], w[1], DataDependency::unnamed())
                .unwrap();
        }
        (spec, ids)
    }

    #[test]
    fn build_and_query_tasks() {
        let (spec, ids) = linear_spec();
        assert_eq!(spec.task_count(), 4);
        assert_eq!(spec.dependency_count(), 3);
        assert_eq!(spec.task(ids[0]).unwrap().name, "t0");
        assert_eq!(spec.task_by_name("t2"), Some(ids[2]));
        assert_eq!(spec.task_by_name("zzz"), None);
        assert!(spec.contains_task(ids[3]));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut spec = WorkflowSpec::new("dups");
        spec.add_task(AtomicTask::new("same")).unwrap();
        assert!(matches!(
            spec.add_task(AtomicTask::new("same")),
            Err(WorkflowError::DuplicateTaskName(_))
        ));
    }

    #[test]
    fn duplicate_dependencies_rejected() {
        let (mut spec, ids) = linear_spec();
        assert!(spec
            .add_dependency(ids[0], ids[1], DataDependency::unnamed())
            .is_err());
    }

    #[test]
    fn reachability_follows_paths() {
        let (spec, ids) = linear_spec();
        assert!(spec.reaches(ids[0], ids[3]));
        assert!(spec.reaches(ids[2], ids[2]));
        assert!(!spec.reaches(ids[3], ids[0]));
    }

    #[test]
    fn reachability_cache_invalidated_on_mutation() {
        let (mut spec, ids) = linear_spec();
        assert!(!spec.reaches(ids[3], ids[0]));
        let extra = spec.add_task(AtomicTask::new("extra")).unwrap();
        spec.add_dependency(ids[3], extra, DataDependency::unnamed())
            .unwrap();
        assert!(spec.reaches(ids[0], extra));
    }

    #[test]
    fn acyclicity_check() {
        let (spec, _) = linear_spec();
        assert!(spec.ensure_acyclic().is_ok());
        // the graph substrate allows cycles (imported workflows might have
        // them); ensure_acyclic must flag them
        let mut cyclic = WorkflowSpec::new("cyclic");
        let a = cyclic.add_task(AtomicTask::new("a")).unwrap();
        let b = cyclic.add_task(AtomicTask::new("b")).unwrap();
        cyclic
            .add_dependency(a, b, DataDependency::unnamed())
            .unwrap();
        cyclic
            .add_dependency(b, a, DataDependency::unnamed())
            .unwrap();
        assert!(matches!(
            cyclic.ensure_acyclic(),
            Err(WorkflowError::CyclicSpecification(_))
        ));
    }

    #[test]
    fn topological_order_respects_dependencies() {
        let (spec, ids) = linear_spec();
        let order = spec.topological_order().unwrap();
        assert_eq!(order, ids);
    }

    #[test]
    fn clone_preserves_structure() {
        let (spec, ids) = linear_spec();
        let cloned = spec.clone();
        assert_eq!(cloned.task_count(), 4);
        assert!(cloned.reaches(ids[0], ids[3]));
    }
}
