//! Composite-task boundaries (`T.in` / `T.out`, Definition 2.2).

use std::collections::BTreeSet;

use crate::spec::WorkflowSpec;
use crate::task::TaskId;

/// The boundary of a set of atomic tasks with respect to a workflow
/// specification.
///
/// Following Definition 2.2 of the paper: for a composite task `T`,
/// `T.in` is the set of member tasks that receive input from some task
/// outside `T`, and `T.out` is the set of member tasks that send output to
/// some task outside `T`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Boundary {
    /// `T.in` — members with at least one incoming dependency from outside.
    pub inputs: Vec<TaskId>,
    /// `T.out` — members with at least one outgoing dependency to outside.
    pub outputs: Vec<TaskId>,
}

impl Boundary {
    /// Computes the boundary of `members` within `spec`.
    ///
    /// Tasks that are sources of the whole workflow do **not** appear in
    /// `inputs` (they receive no input at all), and global sinks do not
    /// appear in `outputs`; this mirrors the paper's definition, which only
    /// considers inputs/outputs crossing the composite-task border.
    #[must_use]
    pub fn compute(spec: &WorkflowSpec, members: &BTreeSet<TaskId>) -> Self {
        let mut inputs = Vec::new();
        let mut outputs = Vec::new();
        for &task in members {
            if spec.predecessors(task).any(|p| !members.contains(&p)) {
                inputs.push(task);
            }
            if spec.successors(task).any(|s| !members.contains(&s)) {
                outputs.push(task);
            }
        }
        Boundary { inputs, outputs }
    }

    /// `true` if the composite receives no external input (its soundness is
    /// then vacuous).
    #[must_use]
    pub fn has_no_inputs(&self) -> bool {
        self.inputs.is_empty()
    }

    /// `true` if the composite sends no external output.
    #[must_use]
    pub fn has_no_outputs(&self) -> bool {
        self.outputs.is_empty()
    }

    /// Number of `(input, output)` pairs the soundness check must examine.
    #[must_use]
    pub fn pair_count(&self) -> usize {
        self.inputs.len() * self.outputs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{AtomicTask, DataDependency};

    /// Builds the small workflow  s -> a -> b -> t  with an extra edge s -> b.
    fn spec() -> (WorkflowSpec, Vec<TaskId>) {
        let mut spec = WorkflowSpec::new("boundary-test");
        let ids: Vec<TaskId> = ["s", "a", "b", "t"]
            .iter()
            .map(|n| spec.add_task(AtomicTask::new(*n)).unwrap())
            .collect();
        spec.add_dependency(ids[0], ids[1], DataDependency::unnamed())
            .unwrap();
        spec.add_dependency(ids[1], ids[2], DataDependency::unnamed())
            .unwrap();
        spec.add_dependency(ids[2], ids[3], DataDependency::unnamed())
            .unwrap();
        spec.add_dependency(ids[0], ids[2], DataDependency::unnamed())
            .unwrap();
        (spec, ids)
    }

    #[test]
    fn boundary_of_interior_group() {
        let (spec, ids) = spec();
        let members: BTreeSet<TaskId> = [ids[1], ids[2]].into_iter().collect();
        let b = Boundary::compute(&spec, &members);
        // a receives from s (outside); b receives from s (outside)
        assert_eq!(b.inputs, vec![ids[1], ids[2]]);
        // only b sends outside (to t)
        assert_eq!(b.outputs, vec![ids[2]]);
        assert_eq!(b.pair_count(), 2);
    }

    #[test]
    fn sources_and_sinks_do_not_join_the_boundary() {
        let (spec, ids) = spec();
        let all: BTreeSet<TaskId> = ids.iter().copied().collect();
        let b = Boundary::compute(&spec, &all);
        assert!(b.has_no_inputs());
        assert!(b.has_no_outputs());
    }

    #[test]
    fn singleton_boundary() {
        let (spec, ids) = spec();
        let members: BTreeSet<TaskId> = [ids[2]].into_iter().collect();
        let b = Boundary::compute(&spec, &members);
        assert_eq!(b.inputs, vec![ids[2]]);
        assert_eq!(b.outputs, vec![ids[2]]);
    }

    #[test]
    fn source_only_group_has_outputs_but_no_inputs() {
        let (spec, ids) = spec();
        let members: BTreeSet<TaskId> = [ids[0]].into_iter().collect();
        let b = Boundary::compute(&spec, &members);
        assert!(b.has_no_inputs());
        assert_eq!(b.outputs, vec![ids[0]]);
    }
}
