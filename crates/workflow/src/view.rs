//! Workflow views: partitions of a specification's tasks into composite
//! tasks, and the induced view-level graph.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use wolves_graph::{DiGraph, NodeId};

use crate::error::WorkflowError;
use crate::spec::WorkflowSpec;
use crate::task::TaskId;

/// Identifier of a composite task within a [`WorkflowView`].
///
/// Composite ids are stable: splitting or merging composites never renumbers
/// the untouched ones.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CompositeTaskId(u32);

impl CompositeTaskId {
    /// Creates a composite id from a raw index (mainly for tests / formats).
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        CompositeTaskId(u32::try_from(index).expect("composite index exceeds u32"))
    }

    /// Raw index of the id.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for CompositeTaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl fmt::Display for CompositeTaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A composite task: a named, non-empty set of atomic tasks (paper §1 —
/// "abstracting groups of tasks in a workflow into high level composite
/// tasks").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompositeTask {
    /// Display name of the composite task (e.g. *"Build Phylo Tree"*).
    pub name: String,
    members: BTreeSet<TaskId>,
}

impl CompositeTask {
    /// Creates a composite task from a name and member set.
    ///
    /// # Errors
    /// Fails if the member set is empty.
    pub fn new(
        name: impl Into<String>,
        members: impl IntoIterator<Item = TaskId>,
    ) -> Result<Self, WorkflowError> {
        let name = name.into();
        let members: BTreeSet<TaskId> = members.into_iter().collect();
        if members.is_empty() {
            return Err(WorkflowError::EmptyComposite(name));
        }
        Ok(CompositeTask { name, members })
    }

    /// The member atomic tasks, in ascending id order.
    #[must_use]
    pub fn members(&self) -> &BTreeSet<TaskId> {
        &self.members
    }

    /// Number of member atomic tasks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` for composites wrapping exactly one atomic task.
    #[must_use]
    pub fn is_singleton(&self) -> bool {
        self.members.len() == 1
    }

    /// Never true — composites are non-empty by construction. Provided for
    /// API symmetry with collections.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Membership test.
    #[must_use]
    pub fn contains(&self, task: TaskId) -> bool {
        self.members.contains(&task)
    }
}

/// A workflow view: a partition of the atomic tasks of one specification
/// into composite tasks (paper Figure 1(b)).
#[derive(Debug, Clone)]
pub struct WorkflowView {
    name: String,
    composites: Vec<Option<CompositeTask>>,
    task_to_composite: BTreeMap<TaskId, CompositeTaskId>,
}

impl WorkflowView {
    /// Builds a view from named groups of task ids.
    ///
    /// # Errors
    /// Fails if the groups are not a partition of the specification's tasks
    /// (some task missing or assigned twice), reference unknown tasks, or if
    /// any group is empty.
    pub fn from_groups(
        spec: &WorkflowSpec,
        name: impl Into<String>,
        groups: Vec<(String, Vec<TaskId>)>,
    ) -> Result<Self, WorkflowError> {
        let mut view = WorkflowView {
            name: name.into(),
            composites: Vec::with_capacity(groups.len()),
            task_to_composite: BTreeMap::new(),
        };
        let mut duplicated = Vec::new();
        for (group_name, members) in groups {
            for &m in &members {
                if !spec.contains_task(m) {
                    return Err(WorkflowError::UnknownTask(m));
                }
            }
            let composite = CompositeTask::new(group_name, members)?;
            let id = CompositeTaskId::from_index(view.composites.len());
            for &m in composite.members() {
                if view.task_to_composite.insert(m, id).is_some() {
                    duplicated.push(m);
                }
            }
            view.composites.push(Some(composite));
        }
        let missing: Vec<TaskId> = spec
            .task_ids()
            .filter(|t| !view.task_to_composite.contains_key(t))
            .collect();
        if !missing.is_empty() || !duplicated.is_empty() {
            return Err(WorkflowError::NotAPartition {
                missing,
                duplicated,
            });
        }
        Ok(view)
    }

    /// Builds the finest view: one composite task per atomic task, named
    /// after the task.
    #[must_use]
    pub fn singletons(spec: &WorkflowSpec, name: impl Into<String>) -> Self {
        let groups = spec
            .tasks()
            .map(|(id, task)| (task.name.clone(), vec![id]))
            .collect();
        Self::from_groups(spec, name, groups).expect("singleton view is always a partition")
    }

    /// The view's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of live composite tasks.
    #[must_use]
    pub fn composite_count(&self) -> usize {
        self.composites.iter().flatten().count()
    }

    /// Number of composite slots ever allocated, including tombstones left
    /// by splits, merges and member removals. Composite ids are slot
    /// indices, so persistent storage must reproduce this bound exactly for
    /// ids assigned after a restore to match the live view's.
    #[must_use]
    pub fn composite_slot_count(&self) -> usize {
        self.composites.len()
    }

    /// Rebuilds a view from explicit composite slots, `None` marking a
    /// tombstone — the storage layer's recovery path, the slot-level inverse
    /// of [`WorkflowView::composites`] plus
    /// [`WorkflowView::composite_slot_count`]. Whether the slots partition a
    /// specification's tasks is *not* checked here (the spec is restored
    /// separately); callers follow up with
    /// [`WorkflowView::validate_against`].
    ///
    /// # Errors
    /// Fails if a task belongs to more than one slot.
    pub fn from_slots(
        name: impl Into<String>,
        slots: Vec<Option<CompositeTask>>,
    ) -> Result<Self, WorkflowError> {
        let mut task_to_composite = BTreeMap::new();
        let mut duplicated = Vec::new();
        for (index, slot) in slots.iter().enumerate() {
            let Some(composite) = slot else { continue };
            let id = CompositeTaskId::from_index(index);
            for &member in composite.members() {
                if task_to_composite.insert(member, id).is_some() {
                    duplicated.push(member);
                }
            }
        }
        if !duplicated.is_empty() {
            return Err(WorkflowError::NotAPartition {
                missing: Vec::new(),
                duplicated,
            });
        }
        Ok(WorkflowView {
            name: name.into(),
            composites: slots,
            task_to_composite,
        })
    }

    /// Iterates over `(id, composite)` pairs in id order.
    pub fn composites(&self) -> impl Iterator<Item = (CompositeTaskId, &CompositeTask)> + '_ {
        self.composites
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.as_ref().map(|c| (CompositeTaskId::from_index(i), c)))
    }

    /// Iterates over live composite ids.
    pub fn composite_ids(&self) -> impl Iterator<Item = CompositeTaskId> + '_ {
        self.composites().map(|(id, _)| id)
    }

    /// Returns a composite task by id.
    ///
    /// # Errors
    /// Fails for unknown or removed ids.
    pub fn composite(&self, id: CompositeTaskId) -> Result<&CompositeTask, WorkflowError> {
        self.composites
            .get(id.index())
            .and_then(|c| c.as_ref())
            .ok_or(WorkflowError::UnknownComposite(id))
    }

    /// Returns the composite task containing `task`, if any.
    #[must_use]
    pub fn composite_of(&self, task: TaskId) -> Option<CompositeTaskId> {
        self.task_to_composite.get(&task).copied()
    }

    /// Checks that the view is still a partition of `spec`'s tasks (used
    /// after specs and views are loaded from separate files).
    ///
    /// # Errors
    /// Returns [`WorkflowError::NotAPartition`] describing the mismatch.
    pub fn validate_against(&self, spec: &WorkflowSpec) -> Result<(), WorkflowError> {
        let missing: Vec<TaskId> = spec
            .task_ids()
            .filter(|t| !self.task_to_composite.contains_key(t))
            .collect();
        let unknown: Vec<TaskId> = self
            .task_to_composite
            .keys()
            .copied()
            .filter(|t| !spec.contains_task(*t))
            .collect();
        if missing.is_empty() && unknown.is_empty() {
            Ok(())
        } else {
            Err(WorkflowError::NotAPartition {
                missing,
                duplicated: unknown,
            })
        }
    }

    /// Replaces one composite task by several smaller ones covering exactly
    /// the same member tasks — the *split* operation used by the view
    /// correctors (paper §2.2).
    ///
    /// Part names are derived from the original name (`"name/1"`, `"name/2"`,
    /// …) unless only one part is supplied, which keeps the original name.
    ///
    /// # Errors
    /// Fails if the id is unknown, any part is empty, or the parts do not
    /// partition the original member set.
    pub fn split_composite(
        &mut self,
        id: CompositeTaskId,
        parts: Vec<Vec<TaskId>>,
    ) -> Result<Vec<CompositeTaskId>, WorkflowError> {
        let original = self.composite(id)?.clone();
        // verify the parts partition the original members
        let mut seen: BTreeSet<TaskId> = BTreeSet::new();
        let mut duplicated = Vec::new();
        for part in &parts {
            if part.is_empty() {
                return Err(WorkflowError::EmptyComposite(original.name.clone()));
            }
            for &t in part {
                if !original.contains(t) {
                    return Err(WorkflowError::UnknownTask(t));
                }
                if !seen.insert(t) {
                    duplicated.push(t);
                }
            }
        }
        let missing: Vec<TaskId> = original
            .members()
            .iter()
            .copied()
            .filter(|t| !seen.contains(t))
            .collect();
        if !missing.is_empty() || !duplicated.is_empty() {
            return Err(WorkflowError::NotAPartition {
                missing,
                duplicated,
            });
        }
        // perform the replacement
        self.composites[id.index()] = None;
        let single = parts.len() == 1;
        let mut new_ids = Vec::with_capacity(parts.len());
        for (i, part) in parts.into_iter().enumerate() {
            let name = if single {
                original.name.clone()
            } else {
                format!("{}/{}", original.name, i + 1)
            };
            let composite = CompositeTask::new(name, part)?;
            let new_id = CompositeTaskId::from_index(self.composites.len());
            for &m in composite.members() {
                self.task_to_composite.insert(m, new_id);
            }
            self.composites.push(Some(composite));
            new_ids.push(new_id);
        }
        Ok(new_ids)
    }

    /// Merges several composite tasks into one — the *Create Composite Task*
    /// feedback operation of the demo (paper §3.2).
    ///
    /// # Errors
    /// Fails if fewer than one id is given or any id is unknown.
    pub fn merge_composites(
        &mut self,
        ids: &[CompositeTaskId],
        name: impl Into<String>,
    ) -> Result<CompositeTaskId, WorkflowError> {
        let name = name.into();
        if ids.is_empty() {
            return Err(WorkflowError::EmptyComposite(name));
        }
        let mut members: BTreeSet<TaskId> = BTreeSet::new();
        for &id in ids {
            let composite = self.composite(id)?;
            members.extend(composite.members().iter().copied());
        }
        for &id in ids {
            self.composites[id.index()] = None;
        }
        let composite = CompositeTask::new(name, members)?;
        let new_id = CompositeTaskId::from_index(self.composites.len());
        for &m in composite.members() {
            self.task_to_composite.insert(m, new_id);
        }
        self.composites.push(Some(composite));
        Ok(new_id)
    }

    /// Adds a new composite task covering `members`, none of which may
    /// already belong to a composite. This is how views track spec-level
    /// task additions: the serving layer wraps each freshly added task in a
    /// singleton composite so the view stays a partition.
    ///
    /// # Errors
    /// Fails on empty member sets and on members already assigned.
    pub fn add_composite(
        &mut self,
        name: impl Into<String>,
        members: Vec<TaskId>,
    ) -> Result<CompositeTaskId, WorkflowError> {
        let composite = CompositeTask::new(name, members)?;
        let duplicated: Vec<TaskId> = composite
            .members()
            .iter()
            .copied()
            .filter(|m| self.task_to_composite.contains_key(m))
            .collect();
        if !duplicated.is_empty() {
            return Err(WorkflowError::NotAPartition {
                missing: Vec::new(),
                duplicated,
            });
        }
        let id = CompositeTaskId::from_index(self.composites.len());
        for &m in composite.members() {
            self.task_to_composite.insert(m, id);
        }
        self.composites.push(Some(composite));
        Ok(id)
    }

    /// Removes `task` from its composite (tracking a spec-level task
    /// removal). A composite left empty is dropped from the view. Returns
    /// the composite the task belonged to.
    ///
    /// # Errors
    /// Fails if the task belongs to no composite.
    pub fn remove_member(&mut self, task: TaskId) -> Result<CompositeTaskId, WorkflowError> {
        let id = self
            .composite_of(task)
            .ok_or(WorkflowError::UnknownTask(task))?;
        self.task_to_composite.remove(&task);
        let slot = self.composites[id.index()]
            .as_mut()
            .expect("composite_of points at a live composite");
        slot.members.remove(&task);
        if slot.members.is_empty() {
            self.composites[id.index()] = None;
        }
        Ok(id)
    }

    /// Builds the induced view-level graph: one node per composite task, and
    /// an edge `A -> B` whenever the specification has a data dependency from
    /// a member of `A` to a member of `B` (A ≠ B). This is the graph users
    /// query for provenance at the view level.
    #[must_use]
    pub fn induced_graph(&self, spec: &WorkflowSpec) -> InducedViewGraph {
        let mut graph: DiGraph<CompositeTaskId, ()> = DiGraph::new();
        let mut node_of: BTreeMap<CompositeTaskId, NodeId> = BTreeMap::new();
        for (id, _) in self.composites() {
            let node = graph.add_node(id);
            node_of.insert(id, node);
        }
        for (from, to) in spec.dependencies() {
            let (Some(cf), Some(ct)) = (self.composite_of(from), self.composite_of(to)) else {
                continue;
            };
            if cf != ct {
                let _ = graph.add_edge_unique(node_of[&cf], node_of[&ct], ());
            }
        }
        InducedViewGraph { graph, node_of }
    }
}

/// The view-level graph induced by a [`WorkflowView`] over a specification,
/// plus the mapping between composite ids and graph nodes.
#[derive(Debug, Clone)]
pub struct InducedViewGraph {
    /// The induced graph; node payloads are composite ids.
    pub graph: DiGraph<CompositeTaskId, ()>,
    node_of: BTreeMap<CompositeTaskId, NodeId>,
}

impl InducedViewGraph {
    /// The graph node representing a composite task.
    #[must_use]
    pub fn node_of(&self, composite: CompositeTaskId) -> Option<NodeId> {
        self.node_of.get(&composite).copied()
    }

    /// The composite task represented by a graph node.
    #[must_use]
    pub fn composite_of(&self, node: NodeId) -> Option<CompositeTaskId> {
        self.graph.node_weight(node).ok().copied()
    }

    /// `true` iff the view has a direct edge from one composite to another.
    #[must_use]
    pub fn has_edge(&self, from: CompositeTaskId, to: CompositeTaskId) -> bool {
        match (self.node_of(from), self.node_of(to)) {
            (Some(f), Some(t)) => self.graph.find_edge(f, t).is_some(),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{AtomicTask, DataDependency};

    fn spec_chain(n: usize) -> (WorkflowSpec, Vec<TaskId>) {
        let mut spec = WorkflowSpec::new("chain");
        let ids: Vec<TaskId> = (0..n)
            .map(|i| spec.add_task(AtomicTask::new(format!("t{i}"))).unwrap())
            .collect();
        for w in ids.windows(2) {
            spec.add_dependency(w[0], w[1], DataDependency::unnamed())
                .unwrap();
        }
        (spec, ids)
    }

    #[test]
    fn from_groups_requires_a_partition() {
        let (spec, ids) = spec_chain(4);
        // missing ids[3]
        let err = WorkflowView::from_groups(
            &spec,
            "v",
            vec![
                ("a".into(), vec![ids[0], ids[1]]),
                ("b".into(), vec![ids[2]]),
            ],
        )
        .unwrap_err();
        assert!(matches!(err, WorkflowError::NotAPartition { .. }));
        // duplicated ids[1]
        let err = WorkflowView::from_groups(
            &spec,
            "v",
            vec![
                ("a".into(), vec![ids[0], ids[1]]),
                ("b".into(), vec![ids[1], ids[2], ids[3]]),
            ],
        )
        .unwrap_err();
        assert!(matches!(err, WorkflowError::NotAPartition { .. }));
    }

    #[test]
    fn from_groups_rejects_unknown_and_empty() {
        let (spec, ids) = spec_chain(2);
        let ghost = TaskId::from_index(99);
        assert!(matches!(
            WorkflowView::from_groups(&spec, "v", vec![("a".into(), vec![ids[0], ids[1], ghost])]),
            Err(WorkflowError::UnknownTask(_))
        ));
        assert!(matches!(
            WorkflowView::from_groups(
                &spec,
                "v",
                vec![("a".into(), vec![ids[0], ids[1]]), ("b".into(), vec![])]
            ),
            Err(WorkflowError::EmptyComposite(_))
        ));
    }

    #[test]
    fn singleton_view_covers_every_task() {
        let (spec, ids) = spec_chain(5);
        let view = WorkflowView::singletons(&spec, "fine");
        assert_eq!(view.composite_count(), 5);
        for id in ids {
            let c = view.composite_of(id).unwrap();
            assert!(view.composite(c).unwrap().is_singleton());
        }
    }

    #[test]
    fn induced_graph_preserves_cross_edges_only() {
        let (spec, ids) = spec_chain(4);
        let view = WorkflowView::from_groups(
            &spec,
            "v",
            vec![
                ("ab".into(), vec![ids[0], ids[1]]),
                ("cd".into(), vec![ids[2], ids[3]]),
            ],
        )
        .unwrap();
        let induced = view.induced_graph(&spec);
        assert_eq!(induced.graph.node_count(), 2);
        assert_eq!(induced.graph.edge_count(), 1);
        let a = view.composite_of(ids[0]).unwrap();
        let b = view.composite_of(ids[2]).unwrap();
        assert!(induced.has_edge(a, b));
        assert!(!induced.has_edge(b, a));
    }

    #[test]
    fn split_composite_replaces_and_keeps_partition() {
        let (spec, ids) = spec_chain(4);
        let mut view =
            WorkflowView::from_groups(&spec, "v", vec![("all".into(), ids.clone())]).unwrap();
        let target = view.composite_of(ids[0]).unwrap();
        let new_ids = view
            .split_composite(target, vec![vec![ids[0], ids[1]], vec![ids[2], ids[3]]])
            .unwrap();
        assert_eq!(new_ids.len(), 2);
        assert_eq!(view.composite_count(), 2);
        assert!(view.validate_against(&spec).is_ok());
        assert!(view.composite(target).is_err());
        assert_ne!(view.composite_of(ids[0]), view.composite_of(ids[3]));
        let names: Vec<&str> = view.composites().map(|(_, c)| c.name.as_str()).collect();
        assert!(names.contains(&"all/1"));
        assert!(names.contains(&"all/2"));
    }

    #[test]
    fn split_rejects_non_partitions_of_members() {
        let (spec, ids) = spec_chain(3);
        let mut view =
            WorkflowView::from_groups(&spec, "v", vec![("all".into(), ids.clone())]).unwrap();
        let target = view.composite_of(ids[0]).unwrap();
        // missing ids[2]
        assert!(view
            .split_composite(target, vec![vec![ids[0]], vec![ids[1]]])
            .is_err());
        // foreign task
        let (_, other_ids) = spec_chain(5);
        assert!(view
            .split_composite(target, vec![ids.clone(), vec![other_ids[4]]])
            .is_err());
        // the failed splits must not have corrupted the view
        assert!(view.validate_against(&spec).is_ok());
        assert_eq!(view.composite_count(), 1);
    }

    #[test]
    fn merge_composites_implements_feedback() {
        let (spec, ids) = spec_chain(4);
        let mut view = WorkflowView::singletons(&spec, "fine");
        let a = view.composite_of(ids[0]).unwrap();
        let b = view.composite_of(ids[1]).unwrap();
        let merged = view.merge_composites(&[a, b], "front").unwrap();
        assert_eq!(view.composite_count(), 3);
        assert_eq!(view.composite_of(ids[0]), Some(merged));
        assert_eq!(view.composite_of(ids[1]), Some(merged));
        assert_eq!(view.composite(merged).unwrap().len(), 2);
        assert!(view.validate_against(&spec).is_ok());
    }

    #[test]
    fn add_composite_and_remove_member_track_spec_edits() {
        let (mut spec, ids) = spec_chain(3);
        let mut view = WorkflowView::singletons(&spec, "fine");
        // a new spec task enters the view as a singleton composite
        let extra = spec
            .add_task(crate::task::AtomicTask::new("extra"))
            .unwrap();
        let added = view.add_composite("extra", vec![extra]).unwrap();
        assert_eq!(view.composite_of(extra), Some(added));
        assert!(view.validate_against(&spec).is_ok());
        // already-assigned members are rejected
        assert!(matches!(
            view.add_composite("dup", vec![ids[0]]),
            Err(WorkflowError::NotAPartition { .. })
        ));
        // removing the task's membership drops the emptied composite
        spec.remove_task(extra).unwrap();
        let removed_from = view.remove_member(extra).unwrap();
        assert_eq!(removed_from, added);
        assert!(view.composite(added).is_err());
        assert!(view.validate_against(&spec).is_ok());
        assert!(view.remove_member(extra).is_err());
    }

    #[test]
    fn remove_member_keeps_multi_member_composites() {
        let (spec, ids) = spec_chain(3);
        let mut view =
            WorkflowView::from_groups(&spec, "v", vec![("all".into(), ids.clone())]).unwrap();
        let all = view.composite_of(ids[1]).unwrap();
        view.remove_member(ids[1]).unwrap();
        assert_eq!(view.composite(all).unwrap().len(), 2);
        assert_eq!(view.composite_of(ids[1]), None);
    }

    #[test]
    fn composite_ids_are_stable_across_edits() {
        let (spec, ids) = spec_chain(4);
        let mut view = WorkflowView::singletons(&spec, "fine");
        let untouched = view.composite_of(ids[3]).unwrap();
        let a = view.composite_of(ids[0]).unwrap();
        let b = view.composite_of(ids[1]).unwrap();
        view.merge_composites(&[a, b], "front").unwrap();
        assert_eq!(view.composite_of(ids[3]), Some(untouched));
        assert_eq!(view.composite(untouched).unwrap().name, "t3");
    }
}
