//! # wolves-workflow
//!
//! Workflow specifications and workflow views — the data model of the WOLVES
//! system (Sun et al., VLDB 2009).
//!
//! * A [`WorkflowSpec`] is a directed acyclic graph whose nodes are
//!   [`AtomicTask`]s and whose edges are data dependencies (paper §1,
//!   Figure 1(a)).
//! * A [`WorkflowView`] partitions the atomic tasks of a specification into
//!   [`CompositeTask`]s and induces a view-level graph that preserves all
//!   inter-composite edges (Figure 1(b)).
//! * [`boundary`] computes `T.in` / `T.out` of a composite task
//!   (Definition 2.2), the ingredient of the soundness check implemented in
//!   `wolves-core`.
//!
//! ```
//! use wolves_workflow::{WorkflowBuilder, WorkflowView};
//!
//! let mut b = WorkflowBuilder::new("tiny");
//! let select = b.task("select");
//! let split = b.task("split");
//! let align = b.task("align");
//! b.edge(select, split).unwrap();
//! b.edge(split, align).unwrap();
//! let spec = b.build().unwrap();
//!
//! let view = WorkflowView::from_groups(
//!     &spec,
//!     "grouped",
//!     vec![("prepare".into(), vec![select, split]), ("analyse".into(), vec![align])],
//! ).unwrap();
//! assert_eq!(view.composite_count(), 2);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod boundary;
pub mod builder;
pub mod error;
pub mod mutation;
pub mod persist;
pub mod render;
pub mod spec;
pub mod task;
pub mod view;

pub use boundary::Boundary;
pub use builder::WorkflowBuilder;
pub use error::WorkflowError;
pub use mutation::{MutationReport, SpecDelta, SpecDeltaKind, SpecMutation};
pub use spec::WorkflowSpec;
pub use task::{AtomicTask, DataDependency, TaskId};
pub use view::{CompositeTask, CompositeTaskId, InducedViewGraph, WorkflowView};
