//! Canonical line-based (de)serialisation of specs, views, mutations and
//! deltas — the storage format of the durable serving layer.
//!
//! Unlike the human-facing text format of `wolves-moml` (which addresses
//! tasks by name and renumbers composites on import), this format is
//! **slot-exact**: it records the tombstone layout of the underlying graph
//! and of the view's composite vector, so a restored spec/view assigns
//! exactly the same [`TaskId`]s and [`crate::CompositeTaskId`]s to future edits as
//! the live one would have. That property is what lets a snapshot + replayed
//! write-ahead log reproduce a serving store bit-for-bit (same epochs, same
//! cache keying, same provenance answers).
//!
//! Every record is one line of TAB-separated fields. Free-form fields
//! (names, labels, descriptions, parameter values) are always the *last*
//! field of their line and parsed with `splitn`, so embedded TABs round-trip;
//! embedded newlines are rejected on write (they would break the framing).

use std::collections::BTreeMap;

use wolves_graph::DiGraph;

use crate::error::WorkflowError;
use crate::mutation::{SpecDelta, SpecDeltaKind, SpecMutation};
use crate::spec::WorkflowSpec;
use crate::task::{AtomicTask, DataDependency, TaskId};
use crate::view::{CompositeTask, WorkflowView};

fn err(message: impl Into<String>) -> WorkflowError {
    WorkflowError::Persist(message.into())
}

fn check_single_line(what: &str, text: &str) -> Result<(), WorkflowError> {
    if text.contains('\n') || text.contains('\r') {
        return Err(err(format!("{what} contains a line break: {text:?}")));
    }
    Ok(())
}

fn parse_index(field: &str, what: &str) -> Result<usize, WorkflowError> {
    field
        .parse::<usize>()
        .map_err(|_| err(format!("invalid {what} '{field}'")))
}

fn parse_task_id(field: &str, what: &str) -> Result<TaskId, WorkflowError> {
    parse_index(field, what).map(TaskId::from_index)
}

/// Serialises a specification, slot layout included. The delta log is *not*
/// serialised: persistence consumes deltas into its own write-ahead log and
/// a snapshot marks the point where all of them have been absorbed.
#[must_use]
pub fn spec_to_lines(spec: &WorkflowSpec) -> Vec<String> {
    let graph = spec.graph();
    let mut lines = Vec::with_capacity(4 + graph.node_count() + graph.edge_count());
    lines.push(format!("spec\t{}", spec.name()));
    lines.push(format!("epoch\t{}", spec.epoch()));
    lines.push(format!("log-cap\t{}", spec.delta_log_cap()));
    lines.push(format!("tasks\t{}", graph.node_bound()));
    for (id, task) in spec.tasks() {
        lines.push(format!("task\t{}\t{}", id.index(), task.name));
        if let Some(description) = &task.description {
            lines.push(format!("task-desc\t{}\t{description}", id.index()));
        }
        for (key, value) in &task.params {
            lines.push(format!("task-param\t{}\t{key}\t{value}", id.index()));
        }
    }
    lines.push(format!("edges\t{}", graph.edge_bound()));
    for (edge, from, to, dependency) in graph.edges() {
        match &dependency.label {
            Some(label) => lines.push(format!(
                "edge-labelled\t{}\t{}\t{}\t{label}",
                edge.index(),
                from.index(),
                to.index()
            )),
            None => lines.push(format!(
                "edge\t{}\t{}\t{}",
                edge.index(),
                from.index(),
                to.index()
            )),
        }
    }
    lines
}

/// Checks that a spec is representable in the line format (no embedded
/// newlines in names, descriptions, labels or parameters).
///
/// # Errors
/// Names the offending field.
pub fn check_spec_serialisable(spec: &WorkflowSpec) -> Result<(), WorkflowError> {
    check_single_line("workflow name", spec.name())?;
    for (_, task) in spec.tasks() {
        check_single_line("task name", &task.name)?;
        if let Some(description) = &task.description {
            check_single_line("task description", description)?;
        }
        for (key, value) in &task.params {
            check_single_line("task parameter key", key)?;
            if key.contains('\t') {
                return Err(err(format!("task parameter key contains a TAB: {key:?}")));
            }
            check_single_line("task parameter value", value)?;
        }
    }
    for (_, _, _, dependency) in spec.graph().edges() {
        if let Some(label) = &dependency.label {
            check_single_line("dependency label", label)?;
        }
    }
    Ok(())
}

/// Restores a specification serialised by [`spec_to_lines`].
///
/// # Errors
/// Reports malformed lines, out-of-range slot indices, duplicate names and
/// inconsistent slot layouts.
pub fn spec_from_lines(lines: &[String]) -> Result<WorkflowSpec, WorkflowError> {
    let mut name: Option<String> = None;
    let mut epoch = 0u64;
    let mut log_cap = WorkflowSpec::DELTA_LOG_CAP;
    let mut nodes: Option<Vec<Option<AtomicTask>>> = None;
    let mut edges: Option<Vec<Option<(TaskId, TaskId, DataDependency)>>> = None;
    for line in lines {
        let directive = line.split('\t').next().unwrap_or_default();
        match directive {
            "spec" => {
                let (_, rest) = line
                    .split_once('\t')
                    .ok_or_else(|| err("spec needs a name"))?;
                name = Some(rest.to_owned());
            }
            "epoch" => {
                let (_, rest) = line
                    .split_once('\t')
                    .ok_or_else(|| err("epoch needs a value"))?;
                epoch = rest
                    .parse::<u64>()
                    .map_err(|_| err(format!("invalid epoch '{rest}'")))?;
            }
            "log-cap" => {
                let (_, rest) = line
                    .split_once('\t')
                    .ok_or_else(|| err("log-cap needs a value"))?;
                log_cap = parse_index(rest, "log cap")?;
            }
            "tasks" => {
                let (_, rest) = line
                    .split_once('\t')
                    .ok_or_else(|| err("tasks needs a bound"))?;
                nodes = Some(vec![None; parse_index(rest, "task bound")?]);
            }
            "task" => {
                let mut fields = line.splitn(3, '\t');
                let _ = fields.next();
                let index = parse_index(
                    fields.next().ok_or_else(|| err("task needs an index"))?,
                    "task index",
                )?;
                let task_name = fields.next().ok_or_else(|| err("task needs a name"))?;
                let slot = nodes
                    .as_mut()
                    .and_then(|n| n.get_mut(index))
                    .ok_or_else(|| err(format!("task index {index} out of bounds")))?;
                if slot.is_some() {
                    return Err(err(format!("duplicate task slot {index}")));
                }
                *slot = Some(AtomicTask::new(task_name));
            }
            "task-desc" => {
                let mut fields = line.splitn(3, '\t');
                let _ = fields.next();
                let index = parse_index(
                    fields
                        .next()
                        .ok_or_else(|| err("task-desc needs an index"))?,
                    "task index",
                )?;
                let description = fields
                    .next()
                    .ok_or_else(|| err("task-desc needs a description"))?;
                let task = nodes
                    .as_mut()
                    .and_then(|n| n.get_mut(index))
                    .and_then(Option::as_mut)
                    .ok_or_else(|| err(format!("task-desc for unknown task slot {index}")))?;
                task.description = Some(description.to_owned());
            }
            "task-param" => {
                let mut fields = line.splitn(4, '\t');
                let _ = fields.next();
                let index = parse_index(
                    fields
                        .next()
                        .ok_or_else(|| err("task-param needs an index"))?,
                    "task index",
                )?;
                let key = fields.next().ok_or_else(|| err("task-param needs a key"))?;
                let value = fields
                    .next()
                    .ok_or_else(|| err("task-param needs a value"))?;
                let task = nodes
                    .as_mut()
                    .and_then(|n| n.get_mut(index))
                    .and_then(Option::as_mut)
                    .ok_or_else(|| err(format!("task-param for unknown task slot {index}")))?;
                task.params.insert(key.to_owned(), value.to_owned());
            }
            "edges" => {
                let (_, rest) = line
                    .split_once('\t')
                    .ok_or_else(|| err("edges needs a bound"))?;
                edges = Some(vec![None; parse_index(rest, "edge bound")?]);
            }
            "edge" | "edge-labelled" => {
                let labelled = directive == "edge-labelled";
                let mut fields = line.splitn(if labelled { 5 } else { 4 }, '\t');
                let _ = fields.next();
                let index = parse_index(
                    fields.next().ok_or_else(|| err("edge needs an index"))?,
                    "edge index",
                )?;
                let from = parse_task_id(
                    fields.next().ok_or_else(|| err("edge needs a source"))?,
                    "edge source",
                )?;
                let to = parse_task_id(
                    fields.next().ok_or_else(|| err("edge needs a target"))?,
                    "edge target",
                )?;
                let dependency = if labelled {
                    DataDependency::named(fields.next().ok_or_else(|| err("edge needs a label"))?)
                } else {
                    DataDependency::unnamed()
                };
                let slot = edges
                    .as_mut()
                    .and_then(|e| e.get_mut(index))
                    .ok_or_else(|| err(format!("edge index {index} out of bounds")))?;
                if slot.is_some() {
                    return Err(err(format!("duplicate edge slot {index}")));
                }
                *slot = Some((from, to, dependency));
            }
            other => return Err(err(format!("unknown spec directive '{other}'"))),
        }
    }
    let name = name.ok_or_else(|| err("missing spec header"))?;
    let nodes = nodes.ok_or_else(|| err("missing tasks bound"))?;
    let edges = edges.ok_or_else(|| err("missing edges bound"))?;
    let mut by_name: BTreeMap<String, TaskId> = BTreeMap::new();
    for (index, slot) in nodes.iter().enumerate() {
        if let Some(task) = slot {
            if by_name
                .insert(task.name.clone(), TaskId::from_index(index))
                .is_some()
            {
                return Err(err(format!("duplicate task name '{}'", task.name)));
            }
        }
    }
    let graph = DiGraph::from_slots(nodes, edges).map_err(|e| err(e.to_string()))?;
    Ok(WorkflowSpec::restore(name, graph, by_name, epoch, log_cap))
}

/// Serialises a view, slot layout included (tombstones left by splits,
/// merges and removals are preserved so future composite ids match).
#[must_use]
pub fn view_to_lines(view: &WorkflowView) -> Vec<String> {
    let mut lines = Vec::with_capacity(2 + view.composite_count());
    lines.push(format!("view\t{}", view.name()));
    lines.push(format!("slots\t{}", view.composite_slot_count()));
    for (id, composite) in view.composites() {
        let members: Vec<String> = composite
            .members()
            .iter()
            .map(|m| m.index().to_string())
            .collect();
        lines.push(format!(
            "composite\t{}\t{}\t{}",
            id.index(),
            members.join(","),
            composite.name
        ));
    }
    lines
}

/// Checks that a view is representable in the line format.
///
/// # Errors
/// Names the offending field.
pub fn check_view_serialisable(view: &WorkflowView) -> Result<(), WorkflowError> {
    check_single_line("view name", view.name())?;
    for (_, composite) in view.composites() {
        check_single_line("composite name", &composite.name)?;
    }
    Ok(())
}

/// Restores a view serialised by [`view_to_lines`]. Whether it partitions a
/// spec's tasks is checked by the caller via
/// [`WorkflowView::validate_against`].
///
/// # Errors
/// Reports malformed lines and overlapping member sets.
pub fn view_from_lines(lines: &[String]) -> Result<WorkflowView, WorkflowError> {
    let mut name: Option<String> = None;
    let mut slots: Option<Vec<Option<CompositeTask>>> = None;
    for line in lines {
        let directive = line.split('\t').next().unwrap_or_default();
        match directive {
            "view" => {
                let (_, rest) = line
                    .split_once('\t')
                    .ok_or_else(|| err("view needs a name"))?;
                name = Some(rest.to_owned());
            }
            "slots" => {
                let (_, rest) = line
                    .split_once('\t')
                    .ok_or_else(|| err("slots needs a bound"))?;
                slots = Some(vec![None; parse_index(rest, "slot bound")?]);
            }
            "composite" => {
                let mut fields = line.splitn(4, '\t');
                let _ = fields.next();
                let index = parse_index(
                    fields
                        .next()
                        .ok_or_else(|| err("composite needs an index"))?,
                    "composite index",
                )?;
                let members = fields
                    .next()
                    .ok_or_else(|| err("composite needs a member list"))?
                    .split(',')
                    .map(|m| parse_task_id(m, "composite member"))
                    .collect::<Result<Vec<_>, _>>()?;
                let composite_name = fields.next().ok_or_else(|| err("composite needs a name"))?;
                let slot = slots
                    .as_mut()
                    .and_then(|s| s.get_mut(index))
                    .ok_or_else(|| err(format!("composite index {index} out of bounds")))?;
                if slot.is_some() {
                    return Err(err(format!("duplicate composite slot {index}")));
                }
                *slot = Some(CompositeTask::new(composite_name, members)?);
            }
            other => return Err(err(format!("unknown view directive '{other}'"))),
        }
    }
    let name = name.ok_or_else(|| err("missing view header"))?;
    let slots = slots.ok_or_else(|| err("missing slots bound"))?;
    WorkflowView::from_slots(name, slots)
}

/// Serialises one [`SpecMutation`] as a single line.
#[must_use]
pub fn mutation_to_line(mutation: &SpecMutation) -> String {
    match mutation {
        SpecMutation::AddTask { name } => format!("add-task\t{name}"),
        SpecMutation::RemoveTask { task } => format!("remove-task\t{}", task.index()),
        SpecMutation::AddDependency { from, to } => {
            format!("add-dep\t{}\t{}", from.index(), to.index())
        }
        SpecMutation::RemoveDependency { from, to } => {
            format!("remove-dep\t{}\t{}", from.index(), to.index())
        }
    }
}

/// Parses one line written by [`mutation_to_line`].
///
/// # Errors
/// Reports unknown kinds and malformed fields.
pub fn mutation_from_line(line: &str) -> Result<SpecMutation, WorkflowError> {
    let directive = line.split('\t').next().unwrap_or_default();
    match directive {
        "add-task" => {
            let (_, name) = line
                .split_once('\t')
                .ok_or_else(|| err("add-task needs a name"))?;
            Ok(SpecMutation::AddTask {
                name: name.to_owned(),
            })
        }
        "remove-task" => {
            let (_, index) = line
                .split_once('\t')
                .ok_or_else(|| err("remove-task needs a task id"))?;
            Ok(SpecMutation::RemoveTask {
                task: parse_task_id(index, "task id")?,
            })
        }
        "add-dep" | "remove-dep" => {
            let fields: Vec<&str> = line.split('\t').collect();
            if fields.len() != 3 {
                return Err(err(format!("{directive} needs two task ids")));
            }
            let from = parse_task_id(fields[1], "dependency source")?;
            let to = parse_task_id(fields[2], "dependency target")?;
            Ok(if directive == "add-dep" {
                SpecMutation::AddDependency { from, to }
            } else {
                SpecMutation::RemoveDependency { from, to }
            })
        }
        other => Err(err(format!("unknown mutation '{other}'"))),
    }
}

/// Serialises one [`SpecDelta`] as a single line.
#[must_use]
pub fn delta_to_line(delta: &SpecDelta) -> String {
    match delta.kind {
        SpecDeltaKind::TaskAdded(task) => {
            format!("delta\t{}\ttask-added\t{}", delta.epoch, task.index())
        }
        SpecDeltaKind::TaskRemoved(task) => {
            format!("delta\t{}\ttask-removed\t{}", delta.epoch, task.index())
        }
        SpecDeltaKind::DependencyAdded(from, to) => format!(
            "delta\t{}\tdep-added\t{}\t{}",
            delta.epoch,
            from.index(),
            to.index()
        ),
        SpecDeltaKind::DependencyRemoved(from, to) => format!(
            "delta\t{}\tdep-removed\t{}\t{}",
            delta.epoch,
            from.index(),
            to.index()
        ),
    }
}

/// Parses one line written by [`delta_to_line`].
///
/// # Errors
/// Reports unknown kinds and malformed fields.
pub fn delta_from_line(line: &str) -> Result<SpecDelta, WorkflowError> {
    let fields: Vec<&str> = line.split('\t').collect();
    if fields.first() != Some(&"delta") || fields.len() < 4 {
        return Err(err(format!("malformed delta line '{line}'")));
    }
    let epoch = fields[1]
        .parse::<u64>()
        .map_err(|_| err(format!("invalid delta epoch '{}'", fields[1])))?;
    let one = |what| parse_task_id(fields[3], what);
    let two = |what| -> Result<(TaskId, TaskId), WorkflowError> {
        if fields.len() != 5 {
            return Err(err(format!("malformed delta line '{line}'")));
        }
        Ok((
            parse_task_id(fields[3], what)?,
            parse_task_id(fields[4], what)?,
        ))
    };
    let kind = match fields[2] {
        "task-added" => SpecDeltaKind::TaskAdded(one("task id")?),
        "task-removed" => SpecDeltaKind::TaskRemoved(one("task id")?),
        "dep-added" => {
            let (from, to) = two("dependency endpoint")?;
            SpecDeltaKind::DependencyAdded(from, to)
        }
        "dep-removed" => {
            let (from, to) = two("dependency endpoint")?;
            SpecDeltaKind::DependencyRemoved(from, to)
        }
        other => return Err(err(format!("unknown delta kind '{other}'"))),
    };
    Ok(SpecDelta { epoch, kind })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::WorkflowBuilder;

    fn sample_spec() -> WorkflowSpec {
        let mut builder = WorkflowBuilder::new("sample");
        let a = builder.task("a");
        let b = builder.task("b");
        let c = builder.task("c");
        let d = builder.task("d");
        builder.edge(a, b).unwrap();
        builder.edge(b, c).unwrap();
        builder.edge(a, d).unwrap();
        let mut spec = builder.build().unwrap();
        // punch tombstones into both slot vectors
        spec.remove_dependency(a, d).unwrap();
        spec.remove_task(d).unwrap();
        spec
    }

    fn assert_specs_equivalent(left: &WorkflowSpec, right: &WorkflowSpec) {
        assert_eq!(left.name(), right.name());
        assert_eq!(left.epoch(), right.epoch());
        assert_eq!(left.delta_log_cap(), right.delta_log_cap());
        assert_eq!(left.graph().node_bound(), right.graph().node_bound());
        assert_eq!(left.graph().edge_bound(), right.graph().edge_bound());
        let tasks = |s: &WorkflowSpec| -> Vec<(usize, AtomicTask)> {
            s.tasks().map(|(id, t)| (id.index(), t.clone())).collect()
        };
        assert_eq!(tasks(left), tasks(right));
        let deps = |s: &WorkflowSpec| -> Vec<(usize, usize)> {
            s.dependencies()
                .map(|(f, t)| (f.index(), t.index()))
                .collect()
        };
        assert_eq!(deps(left), deps(right));
    }

    #[test]
    fn spec_round_trips_with_tombstones_and_metadata() {
        let mut spec = sample_spec();
        spec.set_delta_log_cap(64);
        let lines = spec_to_lines(&spec);
        check_spec_serialisable(&spec).unwrap();
        let restored = spec_from_lines(&lines).unwrap();
        assert_specs_equivalent(&spec, &restored);
        // future id assignment matches: the next task gets the same id
        let mut live = spec.clone();
        let mut back = restored;
        assert_eq!(
            live.add_task(AtomicTask::new("next")).unwrap(),
            back.add_task(AtomicTask::new("next")).unwrap()
        );
        let a = live.task_by_name("a").unwrap();
        let next = live.task_by_name("next").unwrap();
        live.add_dependency(a, next, DataDependency::unnamed())
            .unwrap();
        back.add_dependency(a, next, DataDependency::unnamed())
            .unwrap();
        assert_eq!(
            live.graph().find_edge(a, next),
            back.graph().find_edge(a, next)
        );
    }

    #[test]
    fn spec_metadata_fields_round_trip() {
        let mut spec = WorkflowSpec::new("meta");
        let a = spec
            .add_task(
                AtomicTask::new("curate")
                    .with_description("manual pass")
                    .with_param("tool", "curator-2.1"),
            )
            .unwrap();
        let b = spec.add_task(AtomicTask::new("align")).unwrap();
        spec.add_dependency(a, b, DataDependency::named("alignment"))
            .unwrap();
        let restored = spec_from_lines(&spec_to_lines(&spec)).unwrap();
        assert_specs_equivalent(&spec, &restored);
        let task = restored.task(a).unwrap();
        assert_eq!(task.description.as_deref(), Some("manual pass"));
        assert_eq!(
            task.params.get("tool").map(String::as_str),
            Some("curator-2.1")
        );
        let (_, _, _, dependency) = restored.graph().edges().next().unwrap();
        assert_eq!(dependency.label.as_deref(), Some("alignment"));
    }

    #[test]
    fn view_round_trips_with_tombstones() {
        let spec = sample_spec();
        let ids: Vec<TaskId> = spec.task_ids().collect();
        let mut view = WorkflowView::singletons(&spec, "fine");
        let a = view.composite_of(ids[0]).unwrap();
        let b = view.composite_of(ids[1]).unwrap();
        view.merge_composites(&[a, b], "front").unwrap();
        let lines = view_to_lines(&view);
        check_view_serialisable(&view).unwrap();
        let restored = view_from_lines(&lines).unwrap();
        assert_eq!(restored.name(), view.name());
        assert_eq!(restored.composite_slot_count(), view.composite_slot_count());
        assert_eq!(restored.composite_count(), view.composite_count());
        for (id, composite) in view.composites() {
            let other = restored.composite(id).unwrap();
            assert_eq!(other.name, composite.name);
            assert_eq!(other.members(), composite.members());
        }
        assert!(restored.validate_against(&spec).is_ok());
        // future composite ids match: splitting the merged composite in
        // both views lands the parts on the same slots
        let mut live = view.clone();
        let mut back = restored;
        let merged = live.composite_of(ids[0]).unwrap();
        let split_live = live
            .split_composite(merged, vec![vec![ids[0]], vec![ids[1]]])
            .unwrap();
        let split_back = back
            .split_composite(merged, vec![vec![ids[0]], vec![ids[1]]])
            .unwrap();
        assert_eq!(split_live, split_back);
    }

    #[test]
    fn mutations_and_deltas_round_trip() {
        let mutations = [
            SpecMutation::AddTask {
                name: "name with\ttab".to_owned(),
            },
            SpecMutation::RemoveTask {
                task: TaskId::from_index(7),
            },
            SpecMutation::AddDependency {
                from: TaskId::from_index(1),
                to: TaskId::from_index(2),
            },
            SpecMutation::RemoveDependency {
                from: TaskId::from_index(3),
                to: TaskId::from_index(4),
            },
        ];
        for mutation in &mutations {
            let line = mutation_to_line(mutation);
            assert_eq!(&mutation_from_line(&line).unwrap(), mutation);
        }
        let deltas = [
            SpecDelta {
                epoch: 1,
                kind: SpecDeltaKind::TaskAdded(TaskId::from_index(0)),
            },
            SpecDelta {
                epoch: 2,
                kind: SpecDeltaKind::TaskRemoved(TaskId::from_index(0)),
            },
            SpecDelta {
                epoch: 3,
                kind: SpecDeltaKind::DependencyAdded(TaskId::from_index(1), TaskId::from_index(2)),
            },
            SpecDelta {
                epoch: 4,
                kind: SpecDeltaKind::DependencyRemoved(
                    TaskId::from_index(2),
                    TaskId::from_index(1),
                ),
            },
        ];
        for delta in &deltas {
            let line = delta_to_line(delta);
            assert_eq!(&delta_from_line(&line).unwrap(), delta);
        }
    }

    #[test]
    fn malformed_lines_are_rejected() {
        let bad_specs: &[&[&str]] = &[
            &["frobnicate\tx"],
            &["spec\tx", "tasks\t1", "task\t5\ta", "edges\t0"],
            &[
                "spec\tx",
                "tasks\t2",
                "task\t0\ta",
                "task\t0\tb",
                "edges\t0",
            ],
            &[
                "spec\tx",
                "tasks\t1",
                "task\t0\ta",
                "edges\t1",
                "edge\t0\t0\t0",
            ],
            &[
                "spec\tx",
                "tasks\t2",
                "task\t0\tsame",
                "task\t1\tsame",
                "edges\t0",
            ],
            &["tasks\t0", "edges\t0"],
            &["spec\tx", "edges\t0"],
            &["spec\tx", "tasks\t0"],
        ];
        for lines in bad_specs {
            let owned: Vec<String> = lines.iter().map(|s| (*s).to_string()).collect();
            assert!(spec_from_lines(&owned).is_err(), "accepted {lines:?}");
        }
        let bad_views: &[&[&str]] = &[
            &["view\tx"],
            &[
                "view\tx",
                "slots\t1",
                "composite\t0\t0\ta",
                "composite\t0\t1\tb",
            ],
            &[
                "view\tx",
                "slots\t2",
                "composite\t0\t0\ta",
                "composite\t1\t0\tb",
            ],
            &["view\tx", "slots\t1", "composite\t9\t0\ta"],
            &["view\tx", "slots\t1", "composite\t0\t\ta"],
        ];
        for lines in bad_views {
            let owned: Vec<String> = lines.iter().map(|s| (*s).to_string()).collect();
            assert!(view_from_lines(&owned).is_err(), "accepted {lines:?}");
        }
        assert!(mutation_from_line("frobnicate\tx").is_err());
        assert!(mutation_from_line("add-dep\t1").is_err());
        assert!(delta_from_line("delta\tnope\ttask-added\t0").is_err());
        assert!(delta_from_line("delta\t1\tdep-added\t0").is_err());
    }

    #[test]
    fn multi_line_names_are_rejected_before_serialisation() {
        let mut spec = WorkflowSpec::new("bad\nname");
        assert!(check_spec_serialisable(&spec).is_err());
        spec = WorkflowSpec::new("fine");
        spec.add_task(AtomicTask::new("task\nwith newline"))
            .unwrap();
        assert!(check_spec_serialisable(&spec).is_err());
        let ok = sample_spec();
        assert!(check_spec_serialisable(&ok).is_ok());
    }

    mod properties {
        use super::*;
        use crate::view::CompositeTaskId;
        use proptest::prelude::*;

        /// Random edit script: grows a spec task by task, wiring each new
        /// task to a random predecessor, with occasional removals — the
        /// resulting slot vectors contain tombstones in random places.
        fn spec_strategy() -> impl Strategy<Value = WorkflowSpec> {
            proptest::collection::vec((0u8..4, 0usize..8), 1..24).prop_map(|script| {
                let mut spec = WorkflowSpec::new("prop");
                let mut counter = 0usize;
                for (op, pick) in script {
                    let ids: Vec<TaskId> = spec.task_ids().collect();
                    match op {
                        0 | 1 => {
                            let id = spec
                                .add_task(AtomicTask::new(format!("t{counter}")))
                                .unwrap();
                            counter += 1;
                            if !ids.is_empty() {
                                let from = ids[pick % ids.len()];
                                let _ = spec.add_dependency(from, id, DataDependency::unnamed());
                            }
                        }
                        2 if ids.len() > 1 => {
                            let from = ids[pick % ids.len()];
                            let to = ids[(pick + 1) % ids.len()];
                            let _ = spec.remove_dependency(from, to);
                        }
                        _ if !ids.is_empty() => {
                            let _ = spec.remove_task(ids[pick % ids.len()]);
                        }
                        _ => {}
                    }
                }
                spec
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            #[test]
            fn random_specs_round_trip(spec in spec_strategy()) {
                let lines = spec_to_lines(&spec);
                let restored = spec_from_lines(&lines).unwrap();
                assert_specs_equivalent(&spec, &restored);
                // and the restored spec re-serialises identically
                prop_assert_eq!(spec_to_lines(&restored), lines);
            }

            #[test]
            fn random_views_round_trip(spec in spec_strategy(), seed in 0usize..64) {
                if spec.task_count() == 0 {
                    return;
                }
                let mut view = WorkflowView::singletons(&spec, "prop-view");
                // random merges leave tombstoned slots behind
                let ids: Vec<CompositeTaskId> = view.composite_ids().collect();
                if ids.len() >= 2 {
                    let a = ids[seed % ids.len()];
                    let b = ids[(seed / 2) % ids.len()];
                    if a != b {
                        view.merge_composites(&[a, b], "merged").unwrap();
                    }
                }
                let lines = view_to_lines(&view);
                let restored = view_from_lines(&lines).unwrap();
                prop_assert_eq!(view_to_lines(&restored), lines);
                prop_assert!(restored.validate_against(&spec).is_ok());
            }
        }
    }
}
