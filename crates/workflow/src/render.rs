//! Plain-text rendering of specifications and views.
//!
//! The demo GUI (paper Figure 4) has a specification panel and a view panel;
//! this module produces equivalent textual summaries for the CLI and for the
//! experiment logs. Rich, cluster-aware DOT output lives in
//! [`wolves_graph::dot`] and the CLI displayer.

use std::fmt::Write as _;

use crate::spec::WorkflowSpec;
use crate::view::WorkflowView;

/// Renders a textual summary of a specification: task list and dependency
/// list in deterministic order.
#[must_use]
pub fn describe_spec(spec: &WorkflowSpec) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "workflow '{}' ({} tasks, {} dependencies)",
        spec.name(),
        spec.task_count(),
        spec.dependency_count()
    );
    for (id, task) in spec.tasks() {
        let _ = writeln!(out, "  task {id}: {}", task.name);
    }
    for (from, to) in spec.dependencies() {
        let from_name = spec.task(from).map(|t| t.name.clone()).unwrap_or_default();
        let to_name = spec.task(to).map(|t| t.name.clone()).unwrap_or_default();
        let _ = writeln!(out, "  dep  {from_name} -> {to_name}");
    }
    out
}

/// Renders a textual summary of a view: each composite task with its member
/// tasks, plus the induced view-level edges.
#[must_use]
pub fn describe_view(spec: &WorkflowSpec, view: &WorkflowView) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "view '{}' ({} composite tasks)",
        view.name(),
        view.composite_count()
    );
    for (id, composite) in view.composites() {
        let members: Vec<String> = composite
            .members()
            .iter()
            .map(|&t| spec.task(t).map(|a| a.name.clone()).unwrap_or_default())
            .collect();
        let _ = writeln!(
            out,
            "  {id} '{}' = {{{}}}",
            composite.name,
            members.join(", ")
        );
    }
    let induced = view.induced_graph(spec);
    for (_, from, to, _) in induced.graph.edges() {
        let cf = induced
            .composite_of(from)
            .expect("induced node has composite");
        let ct = induced
            .composite_of(to)
            .expect("induced node has composite");
        let from_name = view
            .composite(cf)
            .map(|c| c.name.clone())
            .unwrap_or_default();
        let to_name = view
            .composite(ct)
            .map(|c| c.name.clone())
            .unwrap_or_default();
        let _ = writeln!(out, "  edge {from_name} -> {to_name}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{ViewBuilder, WorkflowBuilder};

    #[test]
    fn describe_spec_lists_tasks_and_edges() {
        let mut b = WorkflowBuilder::new("phylo");
        let a = b.task("select");
        let c = b.task("split");
        b.edge(a, c).unwrap();
        let spec = b.build().unwrap();
        let text = describe_spec(&spec);
        assert!(text.contains("workflow 'phylo' (2 tasks, 1 dependencies)"));
        assert!(text.contains("task n0: select"));
        assert!(text.contains("dep  select -> split"));
    }

    #[test]
    fn describe_view_lists_composites_and_induced_edges() {
        let mut b = WorkflowBuilder::new("phylo");
        let a = b.task("select");
        let c = b.task("split");
        let d = b.task("align");
        b.chain(&[a, c, d]).unwrap();
        let spec = b.build().unwrap();
        let view = ViewBuilder::new(&spec, "coarse")
            .group_by_name("prep", &["select", "split"])
            .singletons_for_rest()
            .build()
            .unwrap();
        let text = describe_view(&spec, &view);
        assert!(text.contains("view 'coarse' (2 composite tasks)"));
        assert!(text.contains("'prep' = {select, split}"));
        assert!(text.contains("edge prep -> align"));
    }
}
