//! Atomic tasks and data-dependency edges.

use std::collections::BTreeMap;
use std::fmt;

/// Identifier of an atomic task within a [`crate::WorkflowSpec`].
///
/// Task ids are the node ids of the underlying graph; they are stable across
/// view construction, correction and rendering.
pub type TaskId = wolves_graph::NodeId;

/// An atomic task of a workflow specification — one node of Figure 1(a) in
/// the paper (e.g. *"Select entries from DB"* or *"Create alignment"*).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtomicTask {
    /// Human-readable task name. Names are unique within a specification.
    pub name: String,
    /// Optional longer description shown by the displayer.
    pub description: Option<String>,
    /// Free-form key/value parameters (module name, script, tool version…).
    pub params: BTreeMap<String, String>,
}

impl AtomicTask {
    /// Creates a task with just a name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        AtomicTask {
            name: name.into(),
            description: None,
            params: BTreeMap::new(),
        }
    }

    /// Builder-style setter for the description.
    #[must_use]
    pub fn with_description(mut self, description: impl Into<String>) -> Self {
        self.description = Some(description.into());
        self
    }

    /// Builder-style setter adding one parameter.
    #[must_use]
    pub fn with_param(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.params.insert(key.into(), value.into());
        self
    }
}

impl fmt::Display for AtomicTask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// A data dependency between two atomic tasks: the edge of the workflow
/// specification. The paper's Figure 1 omits the data items "for simplicity";
/// we keep an optional label so provenance simulation can name the data that
/// flows along the edge.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DataDependency {
    /// Optional name of the data item carried by this dependency.
    pub label: Option<String>,
}

impl DataDependency {
    /// A dependency carrying an unnamed data item.
    #[must_use]
    pub fn unnamed() -> Self {
        DataDependency { label: None }
    }

    /// A dependency carrying a named data item.
    #[must_use]
    pub fn named(label: impl Into<String>) -> Self {
        DataDependency {
            label: Some(label.into()),
        }
    }
}

impl fmt::Display for DataDependency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.label {
            Some(label) => write!(f, "{label}"),
            None => write!(f, "(data)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_task_builder_style() {
        let t = AtomicTask::new("Curate annotations")
            .with_description("manual curation step")
            .with_param("tool", "curator-2.1");
        assert_eq!(t.name, "Curate annotations");
        assert_eq!(t.description.as_deref(), Some("manual curation step"));
        assert_eq!(
            t.params.get("tool").map(String::as_str),
            Some("curator-2.1")
        );
        assert_eq!(t.to_string(), "Curate annotations");
    }

    #[test]
    fn data_dependency_display() {
        assert_eq!(DataDependency::unnamed().to_string(), "(data)");
        assert_eq!(DataDependency::named("alignment").to_string(), "alignment");
    }
}
