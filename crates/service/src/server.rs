//! The TCP serving layer: an evented readiness-polling core with a
//! thread-pool fallback.
//!
//! **Evented mode** ([`ServerConfig::evented`], Linux): one event-loop
//! thread owns the listener, an [`crate::poll::Poller`] and every
//! connection. Connections are non-blocking with per-connection read/write
//! buffers, so thousands of idle clients cost no threads. The loop splits
//! every *complete* frame out of a connection's read buffer and dispatches
//! the whole batch to a worker pool in one job — pipelined requests are
//! answered in order and their responses leave in one coalesced `write`.
//! Workers post finished response bytes to a completion queue and wake the
//! loop through an `eventfd` [`crate::poll::Waker`] (also how shutdown
//! interrupts `epoll_wait` — no loopback connection anywhere). A `watch`
//! frame hands its connection off to a dedicated blocking thread, since a
//! subscription turns the socket into a server-push channel.
//!
//! **Thread-pool mode** (default, portable): one acceptor thread hands
//! accepted connections to a fixed pool of worker threads over a channel
//! (worker-per-connection: a worker owns a connection until the client
//! disconnects, answering any number of requests on it). The listener is
//! non-blocking and the acceptor polls the shutdown flag between accepts.
//!
//! Shutdown — triggered by a client's `shutdown` request or by
//! [`ServerHandle::request_shutdown`] — raises a flag, wakes the event loop
//! (or lets the acceptor's poll see the flag), and closes every tracked
//! connection, so [`ServerHandle::join`] returns even when clients leave
//! connections idle.

use std::io::{BufRead, BufReader, Read};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::error::ServiceError;
use crate::obs::{duration_ns, ServerGauges, Stage};
use crate::poll::Waker;
use crate::proto::{read_frame, write_frame, Request, Response, WatchEvent, Watching};
use crate::store::{DurabilityBarrier, WatchSubscription, WorkflowStore};

/// How long a watch-serving worker waits on the subscription queue before
/// probing the connection for client frames (`unwatch`, disconnect) and the
/// shutdown flag.
const WATCH_POLL: Duration = Duration::from_millis(25);

/// How long the thread-pool acceptor naps when no connection is pending
/// before re-checking the shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Configuration of a [`serve`] call.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind; port 0 picks a free port (see
    /// [`ServerHandle::local_addr`]).
    pub addr: String,
    /// Number of store shards.
    pub shards: usize,
    /// Number of worker threads.
    pub workers: usize,
    /// Socket read timeout in milliseconds (0 disables): a connection
    /// whose client sends nothing for this long is closed and its worker
    /// reclaimed — an idle or stalled client can no longer pin a worker
    /// thread forever. Watch subscriptions are exempt (the server pushes
    /// to them; they are polled, not blocked on). In evented mode idle
    /// connections cost no thread, but the same timeout still reclaims
    /// their descriptors.
    pub read_timeout_ms: u64,
    /// Socket write timeout in milliseconds (0 disables): a client that
    /// stops reading its responses cannot block a worker indefinitely.
    pub write_timeout_ms: u64,
    /// Per-request admission deadline in milliseconds (0 disables): a
    /// connection that waited longer than this in the accept queue is shed
    /// with [`ServiceError::Overloaded`] instead of being served late.
    /// Thread-pool mode only — the evented loop accepts immediately and
    /// bounds the *dispatch* queue instead.
    pub deadline_ms: u64,
    /// Backlog bound (0 disables). Thread-pool mode: when this many
    /// accepted connections are already queued for workers, further
    /// connections are shed immediately with [`ServiceError::Overloaded`].
    /// Evented mode: when this many dispatched request batches are in
    /// flight to the worker pool, further batches are answered with
    /// [`ServiceError::Overloaded`] instead of being queued.
    pub backlog_limit: usize,
    /// `true` runs the evented readiness-polling core (Linux). On other
    /// platforms — where [`crate::poll::readiness_supported`] is `false` —
    /// the flag is ignored and the portable thread-pool server runs.
    pub evented: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            shards: 4,
            workers: 4,
            read_timeout_ms: 30_000,
            write_timeout_ms: 30_000,
            deadline_ms: 10_000,
            backlog_limit: 1024,
            evented: false,
        }
    }
}

/// `Some(duration)` for a positive millisecond count, `None` for the
/// disabled sentinel 0.
fn timeout_of(ms: u64) -> Option<Duration> {
    (ms > 0).then(|| Duration::from_millis(ms))
}

/// State shared between the acceptor/event loop, the workers and the
/// handle.
#[derive(Debug)]
struct Shared {
    addr: SocketAddr,
    shutdown: AtomicBool,
    connections: Mutex<Vec<(u64, TcpStream)>>,
    next_connection: AtomicU64,
    /// Thread-pool mode: accepted connections handed to the worker channel
    /// but not yet picked up. Evented mode: request batches dispatched to
    /// the worker pool but not yet completed. Either way, the backlog the
    /// shedding bound applies to.
    queued: AtomicUsize,
    read_timeout: Option<Duration>,
    write_timeout: Option<Duration>,
    deadline: Option<Duration>,
    backlog_limit: usize,
    gauges: Arc<ServerGauges>,
    /// The evented loop's eventfd; `None` in thread-pool mode.
    waker: Option<Arc<Waker>>,
    /// Watch connections the evented loop handed off to blocking threads;
    /// joined by [`ServerHandle::join`].
    extra_threads: Mutex<Vec<JoinHandle<()>>>,
}

impl Shared {
    /// Registers a connection so shutdown can close it; returns its id.
    fn track(&self, stream: &TcpStream) -> u64 {
        let id = self.next_connection.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            self.connections.lock().push((id, clone));
        }
        id
    }

    fn untrack(&self, id: u64) {
        self.connections.lock().retain(|(other, _)| *other != id);
    }

    /// Raises the shutdown flag, wakes the event loop (evented mode; the
    /// thread-pool acceptor polls the flag between accepts) and closes
    /// every tracked connection, unblocking workers stuck reading from
    /// idle clients.
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(waker) = &self.waker {
            waker.wake();
        }
        for (_, stream) in self.connections.lock().iter() {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }

    fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// A running server: the bound address, the shared store and the threads to
/// join on shutdown.
#[derive(Debug)]
pub struct ServerHandle {
    store: Arc<WorkflowStore>,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server actually bound (relevant with port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The store backing the server (shared with the worker threads).
    #[must_use]
    pub fn store(&self) -> Arc<WorkflowStore> {
        Arc::clone(&self.store)
    }

    /// Begins shutdown without waiting for the threads; follow with
    /// [`ServerHandle::join`]. Batched-but-unsynced WAL records are pushed
    /// to stable storage first.
    pub fn request_shutdown(&self) {
        let _ = self.store.backend().sync();
        self.shared.begin_shutdown();
    }

    /// Waits for the acceptor/event loop, all workers and any watch
    /// hand-off threads to exit — either after a shutdown was requested,
    /// or once a client sends a `shutdown` request (this is what
    /// `wolves serve` blocks on).
    pub fn join(mut self) {
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
        let handed_off: Vec<_> = self.shared.extra_threads.lock().drain(..).collect();
        for thread in handed_off {
            let _ = thread.join();
        }
    }

    /// Convenience: [`ServerHandle::request_shutdown`] then
    /// [`ServerHandle::join`].
    pub fn shutdown(self) {
        self.request_shutdown();
        self.join();
    }
}

/// Binds a listener and starts the serving threads on a fresh in-memory
/// store.
///
/// # Errors
/// Reports bind failures.
pub fn serve(config: &ServerConfig) -> std::io::Result<ServerHandle> {
    serve_with_store(config, Arc::new(WorkflowStore::new(config.shards)))
}

/// [`serve`] on a caller-provided store — how `wolves serve --data-dir`
/// plugs in a store recovered from a durable backend
/// ([`crate::store::WorkflowStore::open`]); binding and recovery stay
/// separable failures.
///
/// # Errors
/// Reports bind failures.
pub fn serve_with_store(
    config: &ServerConfig,
    store: Arc<WorkflowStore>,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(config.addr.as_str())?;
    let gauges = Arc::new(ServerGauges::default());
    store.attach_server_gauges(Arc::clone(&gauges));
    #[cfg(target_os = "linux")]
    if config.evented {
        return evented::serve(config, store, listener, gauges);
    }
    serve_threaded(config, store, listener, gauges)
}

/// The portable thread-pool server (and the fallback when the evented core
/// is unavailable).
fn serve_threaded(
    config: &ServerConfig,
    store: Arc<WorkflowStore>,
    listener: TcpListener,
    gauges: Arc<ServerGauges>,
) -> std::io::Result<ServerHandle> {
    // a non-blocking listener lets the acceptor poll the shutdown flag
    // instead of relying on a loopback connection to unblock accept()
    listener.set_nonblocking(true)?;
    let shared = Arc::new(Shared {
        addr: listener.local_addr()?,
        shutdown: AtomicBool::new(false),
        connections: Mutex::new(Vec::new()),
        next_connection: AtomicU64::new(0),
        queued: AtomicUsize::new(0),
        read_timeout: timeout_of(config.read_timeout_ms),
        write_timeout: timeout_of(config.write_timeout_ms),
        deadline: timeout_of(config.deadline_ms),
        backlog_limit: config.backlog_limit,
        gauges,
        waker: None,
        extra_threads: Mutex::new(Vec::new()),
    });
    let (sender, receiver) = mpsc::channel::<(TcpStream, Instant)>();
    let receiver = Arc::new(Mutex::new(receiver));

    let mut threads = Vec::with_capacity(config.workers.max(1) + 1);
    for _ in 0..config.workers.max(1) {
        let receiver = Arc::clone(&receiver);
        let store = Arc::clone(&store);
        let shared = Arc::clone(&shared);
        threads.push(std::thread::spawn(move || {
            worker_loop(&receiver, &store, &shared);
        }));
    }

    let acceptor_shared = Arc::clone(&shared);
    let acceptor_store = Arc::clone(&store);
    threads.push(std::thread::spawn(move || {
        loop {
            if acceptor_shared.is_shutdown() {
                break;
            }
            match listener.accept() {
                Ok((mut stream, _)) => {
                    // the workers use blocking I/O on the accepted socket
                    let _ = stream.set_nonblocking(false);
                    if acceptor_shared.backlog_limit > 0
                        && acceptor_shared.queued.load(Ordering::SeqCst)
                            >= acceptor_shared.backlog_limit
                    {
                        // load-shed at the door: a best-effort typed error
                        // frame tells the client to back off, then the
                        // connection drops
                        shed(&mut stream, &acceptor_store);
                        continue;
                    }
                    acceptor_shared.queued.fetch_add(1, Ordering::SeqCst);
                    if sender.send((stream, Instant::now())).is_err() {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => std::thread::sleep(ACCEPT_POLL),
            }
        }
        // dropping the listener and the sender lets idle workers drain
    }));

    Ok(ServerHandle {
        store,
        shared,
        threads,
    })
}

/// Sheds one connection with a best-effort [`ServiceError::Overloaded`]
/// frame; the drop that follows closes it.
fn shed(stream: &mut TcpStream, store: &WorkflowStore) {
    let error = ServiceError::Overloaded;
    store.record_error(&error);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
    let _ = write_frame(stream, &Response::Error(error.to_wire()).to_lines());
}

fn worker_loop(
    receiver: &Mutex<mpsc::Receiver<(TcpStream, Instant)>>,
    store: &WorkflowStore,
    shared: &Shared,
) {
    loop {
        // hold the mutex only while waiting for the next connection
        let next = { receiver.lock().recv() };
        match next {
            Ok((mut stream, enqueued)) => {
                shared.queued.fetch_sub(1, Ordering::SeqCst);
                if let Some(deadline) = shared.deadline {
                    // the admission deadline: a connection that aged out in
                    // the queue is shed, not served late
                    if enqueued.elapsed() > deadline {
                        shed(&mut stream, store);
                        continue;
                    }
                }
                let _ = stream.set_read_timeout(shared.read_timeout);
                let _ = stream.set_write_timeout(shared.write_timeout);
                let id = shared.track(&stream);
                shared.gauges.connection_opened();
                // re-check AFTER tracking: a begin_shutdown() racing with
                // this hand-off either set the flag before track() (seen
                // here) or finds the stream in the tracked list and closes
                // it — either way the worker cannot block on an idle client
                if shared.is_shutdown() {
                    shared.untrack(id);
                    shared.gauges.connection_closed();
                    break;
                }
                handle_connection(stream, Vec::new(), None, store, shared);
                shared.untrack(id);
                shared.gauges.connection_closed();
            }
            Err(_) => break, // acceptor gone and channel drained
        }
    }
}

/// A buffered reader that replays bytes the evented loop had already pulled
/// off the socket before handing the connection to a blocking thread, then
/// continues from the socket itself. With an empty replay buffer it behaves
/// exactly like the underlying `BufReader`.
struct ReplayReader {
    leftover: Vec<u8>,
    at: usize,
    inner: BufReader<TcpStream>,
}

impl ReplayReader {
    fn new(leftover: Vec<u8>, stream: TcpStream) -> ReplayReader {
        ReplayReader {
            leftover,
            at: 0,
            inner: BufReader::new(stream),
        }
    }

    /// Unconsumed bytes are already in hand (no socket read needed).
    fn buffered(&self) -> bool {
        self.at < self.leftover.len() || !self.inner.buffer().is_empty()
    }

    fn socket(&self) -> &TcpStream {
        self.inner.get_ref()
    }
}

impl Read for ReplayReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.at < self.leftover.len() {
            let n = (self.leftover.len() - self.at).min(buf.len());
            buf[..n].copy_from_slice(&self.leftover[self.at..self.at + n]);
            self.at += n;
            return Ok(n);
        }
        self.inner.read(buf)
    }
}

impl BufRead for ReplayReader {
    fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
        if self.at < self.leftover.len() {
            return Ok(&self.leftover[self.at..]);
        }
        self.inner.fill_buf()
    }

    fn consume(&mut self, amt: usize) {
        if self.at < self.leftover.len() {
            self.at = (self.at + amt).min(self.leftover.len());
        } else {
            self.inner.consume(amt);
        }
    }
}

/// Serves one connection with blocking I/O: the worker-pool path from the
/// first byte, and the landing spot for watch connections the evented loop
/// hands off (`leftover` replays bytes read ahead of the hand-off;
/// `initial` is a frame already parsed out of them).
fn handle_connection(
    stream: TcpStream,
    leftover: Vec<u8>,
    initial: Option<Vec<String>>,
    store: &WorkflowStore,
    shared: &Shared,
) {
    // without TCP_NODELAY, Nagle + delayed ACKs cost ~40ms per small
    // request/response exchange on loopback
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = ReplayReader::new(leftover, read_half);
    let mut writer = stream;
    // a frame already in hand: the evented loop's hand-off frame, or one
    // `run_watch` read off the connection while leaving subscription mode
    let mut pending: Option<Vec<String>> = initial;
    loop {
        let frame = match pending.take() {
            Some(frame) => frame,
            None => match read_frame(&mut reader) {
                Ok(Some(frame)) => frame,
                _ => break,
            },
        };
        let parse_start = std::time::Instant::now();
        let parsed = Request::from_lines(&frame);
        store
            .telemetry()
            .stage(Stage::Parse, duration_ns(parse_start.elapsed()));
        let (response, stop) = match parsed {
            Ok(Request::Watch { workflow, mode }) => match store.watch(workflow, mode) {
                Ok(subscription) => {
                    let ack = Response::Watching(Watching {
                        workflow: subscription.workflow(),
                        seq: subscription.seq(),
                        epoch: subscription.epoch(),
                        payload: subscription.payload().map(str::to_owned),
                    });
                    if write_frame(&mut writer, &ack.to_lines()).is_err() {
                        store.unwatch(&subscription);
                        break;
                    }
                    match run_watch(&mut reader, &mut writer, store, shared, &subscription) {
                        WatchOutcome::Resume => continue,
                        WatchOutcome::Frame(frame) => {
                            pending = Some(frame);
                            continue;
                        }
                        WatchOutcome::Disconnect => break,
                    }
                }
                Err(e) => {
                    store.record_error(&e);
                    (Response::Error(e.to_wire()), false)
                }
            },
            Ok(request) => respond(store, request),
            Err(e) => {
                store.record_error(&e);
                (Response::Error(e.to_wire()), false)
            }
        };
        if write_frame(&mut writer, &response.to_lines()).is_err() {
            break;
        }
        if stop {
            shared.begin_shutdown();
            break;
        }
        if shared.is_shutdown() {
            break;
        }
    }
}

/// Why [`run_watch`] returned control to the request loop.
enum WatchOutcome {
    /// The subscription ended (client `unwatch`, or a lag-drop that was
    /// answered with an explicit resync event); keep serving requests.
    Resume,
    /// The client sent a non-`unwatch` frame while watching: the
    /// subscription is torn down and the frame should be served normally.
    Frame(Vec<String>),
    /// The client disconnected or the server is shutting down.
    Disconnect,
}

/// What a momentary non-blocking look at the connection found.
enum Probe {
    Idle,
    Data,
    Gone,
}

/// Peeks at the connection without committing to a blocking read: buffered
/// bytes (or readable socket data) mean the client sent a frame; EOF or a
/// socket error mean it is gone. `restore` is the connection's configured
/// read timeout, reinstated after the 1ms probe.
fn probe_client(reader: &mut ReplayReader, restore: Option<Duration>) -> Probe {
    if reader.buffered() {
        return Probe::Data;
    }
    if reader
        .socket()
        .set_read_timeout(Some(Duration::from_millis(1)))
        .is_err()
    {
        return Probe::Gone;
    }
    let probe = match reader.fill_buf() {
        Ok([]) => Probe::Gone, // clean EOF
        Ok(_) => Probe::Data,
        Err(e)
            if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) =>
        {
            Probe::Idle
        }
        Err(_) => Probe::Gone,
    };
    // back to the configured timeout for the request loop's frame reads
    if reader.socket().set_read_timeout(restore).is_err() {
        return Probe::Gone;
    }
    probe
}

/// Serves one subscription: pushes committed events as they arrive,
/// periodically checking the shutdown flag and the connection. A lag-drop
/// (the store already removed the subscriber) is surfaced to the client as
/// an explicit `resync` event before returning to request mode; an
/// `unwatch` frame is acknowledged with `ok\tunwatched`.
fn run_watch(
    reader: &mut ReplayReader,
    writer: &mut TcpStream,
    store: &WorkflowStore,
    shared: &Shared,
    subscription: &WatchSubscription,
) -> WatchOutcome {
    loop {
        if shared.is_shutdown() {
            store.unwatch(subscription);
            return WatchOutcome::Disconnect;
        }
        match subscription.recv_timeout(WATCH_POLL) {
            Ok(Some(event)) => {
                if write_frame(writer, &event.to_lines()).is_err() {
                    store.unwatch(subscription);
                    return WatchOutcome::Disconnect;
                }
                // drain the queue before spending a probe on the socket
                continue;
            }
            Ok(None) => {}
            Err(crate::error::ServiceError::Lagged) => {
                // the store dropped this slow consumer; hand the client an
                // explicit resync cursor so it can export and re-subscribe
                let seq = store
                    .cursor(subscription.workflow())
                    .map_or(subscription.seq(), |(seq, _)| seq);
                let resync = WatchEvent::Resync {
                    workflow: subscription.workflow(),
                    seq,
                };
                if write_frame(writer, &resync.to_lines()).is_err() {
                    return WatchOutcome::Disconnect;
                }
                return WatchOutcome::Resume;
            }
            Err(_) => {
                // subscription closed without lagging (store dropped)
                store.unwatch(subscription);
                return WatchOutcome::Resume;
            }
        }
        match probe_client(reader, shared.read_timeout) {
            Probe::Idle => {}
            Probe::Gone => {
                store.unwatch(subscription);
                return WatchOutcome::Disconnect;
            }
            Probe::Data => {
                store.unwatch(subscription);
                let Ok(Some(frame)) = read_frame(reader) else {
                    return WatchOutcome::Disconnect;
                };
                if matches!(Request::from_lines(&frame), Ok(Request::Unwatch)) {
                    if write_frame(writer, &Response::Unwatched.to_lines()).is_err() {
                        return WatchOutcome::Disconnect;
                    }
                    return WatchOutcome::Resume;
                }
                return WatchOutcome::Frame(frame);
            }
        }
    }
}

/// Dispatches one request against the store; the boolean asks the worker to
/// begin server shutdown after replying.
fn respond(store: &WorkflowStore, request: Request) -> (Response, bool) {
    let response = match request {
        Request::Register { payload } => store.register_text(&payload).map(Response::Registered),
        Request::Validate { workflow, version } => {
            store.validate(workflow, version).map(Response::Verdict)
        }
        Request::Correct { workflow, strategy } => {
            store.correct(workflow, strategy).map(Response::Corrected)
        }
        Request::Provenance { workflow, subject } => store
            .provenance(workflow, &subject)
            .map(Response::Provenance),
        Request::Mutate {
            workflow,
            op,
            expect,
        } => store
            .mutate_cas(workflow, op, expect)
            .map(Response::Mutated),
        Request::Export { workflow } => store.export(workflow).map(Response::Exported),
        Request::Snapshot => store.snapshot_all().map(Response::Snapshotted),
        Request::Epoch { workflow } => store
            .cursor(workflow)
            .map(|(seq, epoch)| Response::Epoch { seq, epoch }),
        Request::Heal => {
            let (healed, still_degraded) = store.heal();
            Ok(Response::Healed {
                healed,
                still_degraded,
            })
        }
        Request::Stats => Ok(Response::Stats(store.stats())),
        Request::Metrics { slow } => Ok(Response::Metrics(if slow {
            store.slow_requests_text()
        } else {
            store.metrics_text()
        })),
        Request::Batch(requests) => {
            // sub-request failures land in their slot; the batch goes on
            // (connection-control verbs were refused at parse, so no
            // sub-response can ask for shutdown). Sub-mutations defer
            // their durability wait into one shared barrier — the whole
            // batch settles with one group-commit wait, not one per slot.
            let mut barrier = DurabilityBarrier::default();
            let mut responses = Vec::with_capacity(requests.len());
            for request in requests {
                let (response, _) = respond_deferring(store, request, &mut barrier);
                responses.push(response);
            }
            settle(store, &barrier, &mut responses);
            Ok(Response::Batch(responses))
        }
        // subscriptions are connection-scoped and handled by the request
        // loop itself; this arm is unreachable in practice
        Request::Watch { .. } => Err(crate::error::ServiceError::Protocol(
            "watch is handled by the connection loop".to_owned(),
        )),
        // idempotent outside subscription mode (e.g. after a lag-drop
        // already ended the subscription server-side)
        Request::Unwatch => Ok(Response::Unwatched),
        Request::Shutdown => {
            // push batched-but-unsynced WAL records to stable storage
            // before acknowledging the shutdown
            let _ = store.backend().sync();
            return (Response::ShuttingDown, true);
        }
    };
    (
        response.unwrap_or_else(|e| {
            store.record_error(&e);
            Response::Error(e.to_wire())
        }),
        false,
    )
}

/// [`respond`] with mutation durability *deferred*: a `mutate` frame (or a
/// batch sub-mutation) is applied and published, but its group-commit wait
/// is folded into `barrier` instead of being paid inline. The caller MUST
/// run [`settle`] over the collected responses before any of them leaves
/// the server — that is what keeps the acknowledged-after-durable contract
/// while letting a pipelined batch share one wait (and, in strict-fsync
/// mode, typically one fsync) across all of its mutations.
fn respond_deferring(
    store: &WorkflowStore,
    request: Request,
    barrier: &mut DurabilityBarrier,
) -> (Response, bool) {
    match request {
        Request::Mutate {
            workflow,
            op,
            expect,
        } => (
            store
                .mutate_deferred(workflow, op, expect)
                .map(|(mutated, ticket)| {
                    barrier.fold(ticket);
                    Response::Mutated(mutated)
                })
                .unwrap_or_else(|e| {
                    store.record_error(&e);
                    Response::Error(e.to_wire())
                }),
            false,
        ),
        Request::Batch(requests) => {
            let mut responses = Vec::with_capacity(requests.len());
            for request in requests {
                let (response, _) = respond_deferring(store, request, barrier);
                responses.push(response);
            }
            (Response::Batch(responses), false)
        }
        other => respond(store, other),
    }
}

/// Settles a batch's shared durability barrier. On a fsync failure every
/// mutation outcome in `responses` is replaced with the error: none of
/// those records is power-loss durable yet, so none may be acknowledged as
/// applied — exactly what the inline [`WorkflowStore::mutate`] path reports
/// for a single request (the records stay staged, so a later group commit
/// retries them).
fn settle(store: &WorkflowStore, barrier: &DurabilityBarrier, responses: &mut [Response]) {
    if barrier.is_empty() {
        return;
    }
    if let Err(e) = store.await_durability(barrier) {
        store.record_error(&e);
        let wire = e.to_wire();
        fn degrade(response: &mut Response, wire: &str) {
            match response {
                Response::Mutated(_) => *response = Response::Error(wire.to_owned()),
                Response::Batch(subs) => {
                    for sub in subs {
                        degrade(sub, wire);
                    }
                }
                _ => {}
            }
        }
        for response in responses {
            degrade(response, &wire);
        }
    }
}

/// The evented readiness-polling core (Linux-only; see the module docs).
#[cfg(target_os = "linux")]
mod evented {
    use std::collections::{HashMap, VecDeque};
    use std::io::{Read as _, Write as _};

    use super::*;
    use crate::poll::{raw_fd_of, Event, Interest, Poller};
    use crate::proto::FRAME_END;

    const LISTENER_TOKEN: u64 = 0;
    const WAKER_TOKEN: u64 = 1;
    const FIRST_CONN_TOKEN: u64 = 2;

    /// Ceiling on a connection's buffered unparsed request bytes; a client
    /// that exceeds it without ever completing a frame is dropped.
    const READ_BUF_CAP: usize = 16 << 20;

    /// Poll granularity of the loop's housekeeping (idle sweep, shutdown
    /// re-check as a backstop to the waker).
    const SWEEP_EVERY: Duration = Duration::from_millis(500);

    /// One dispatch to the worker pool: every complete frame a connection
    /// had buffered, answered as a unit so responses stay in order.
    struct Job {
        token: u64,
        frames: Vec<Vec<String>>,
    }

    /// A worker's finished batch: the concatenated response frames, ready
    /// to write.
    struct Completion {
        token: u64,
        bytes: Vec<u8>,
        stop: bool,
    }

    /// Per-connection state owned by the event loop.
    struct Conn {
        stream: TcpStream,
        read_buf: Vec<u8>,
        write_buf: Vec<u8>,
        write_pos: usize,
        /// A dispatched batch is in flight; no second dispatch until its
        /// completion lands (this is what keeps responses in order).
        busy: bool,
        interest: Interest,
        last_activity: Instant,
        /// A parsed `watch` frame waiting for the connection to quiesce
        /// (in-flight batch answered, responses flushed) before the
        /// connection is handed to a blocking thread.
        pending_watch: Option<Vec<String>>,
    }

    pub(super) fn serve(
        config: &ServerConfig,
        store: Arc<WorkflowStore>,
        listener: TcpListener,
        gauges: Arc<ServerGauges>,
    ) -> std::io::Result<ServerHandle> {
        let poller = Poller::new()?;
        let waker = Arc::new(Waker::new()?);
        listener.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            addr: listener.local_addr()?,
            shutdown: AtomicBool::new(false),
            connections: Mutex::new(Vec::new()),
            next_connection: AtomicU64::new(0),
            queued: AtomicUsize::new(0),
            read_timeout: timeout_of(config.read_timeout_ms),
            write_timeout: timeout_of(config.write_timeout_ms),
            deadline: timeout_of(config.deadline_ms),
            backlog_limit: config.backlog_limit,
            gauges,
            waker: Some(Arc::clone(&waker)),
            extra_threads: Mutex::new(Vec::new()),
        });
        let (sender, receiver) = mpsc::channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let completions = Arc::new(Mutex::new(VecDeque::new()));

        let mut threads = Vec::with_capacity(config.workers.max(1) + 1);
        for _ in 0..config.workers.max(1) {
            let receiver = Arc::clone(&receiver);
            let store = Arc::clone(&store);
            let shared = Arc::clone(&shared);
            let completions = Arc::clone(&completions);
            let waker = Arc::clone(&waker);
            threads.push(std::thread::spawn(move || {
                worker(&receiver, &store, &shared, &completions, &waker);
            }));
        }

        let loop_store = Arc::clone(&store);
        let loop_shared = Arc::clone(&shared);
        threads.push(std::thread::spawn(move || {
            event_loop(
                &poller,
                listener,
                &loop_store,
                &loop_shared,
                &completions,
                &waker,
                &sender,
            );
            // however the loop exits, flag shutdown so handed-off watch
            // threads close and join() returns
            loop_shared.begin_shutdown();
        }));

        Ok(ServerHandle {
            store,
            shared,
            threads,
        })
    }

    /// Serves dispatched frame batches; the evented counterpart of
    /// [`worker_loop`].
    fn worker(
        receiver: &Mutex<mpsc::Receiver<Job>>,
        store: &WorkflowStore,
        shared: &Shared,
        completions: &Mutex<VecDeque<Completion>>,
        waker: &Waker,
    ) {
        loop {
            let job = { receiver.lock().recv() };
            let Ok(job) = job else { break };
            shared.queued.fetch_sub(1, Ordering::SeqCst);
            if job.frames.len() > 1 {
                shared.gauges.pipelined_batch();
            }
            // answer the whole batch with ONE durability settle: mutations
            // defer their group-commit wait into a shared barrier, and no
            // response is serialised until the barrier is down — pipelined
            // mutators pay one wait (and usually one fsync) per batch
            let mut responses = Vec::with_capacity(job.frames.len());
            let mut barrier = DurabilityBarrier::default();
            let mut stop = false;
            for frame in &job.frames {
                let parse_start = Instant::now();
                let parsed = Request::from_lines(frame);
                store
                    .telemetry()
                    .stage(Stage::Parse, duration_ns(parse_start.elapsed()));
                let (response, wants_stop) = match parsed {
                    Ok(request) => respond_deferring(store, request, &mut barrier),
                    Err(e) => {
                        store.record_error(&e);
                        (Response::Error(e.to_wire()), false)
                    }
                };
                responses.push(response);
                if wants_stop {
                    stop = true;
                    break;
                }
            }
            settle(store, &barrier, &mut responses);
            let mut bytes = Vec::new();
            for response in &responses {
                push_frame(&mut bytes, &response.to_lines());
            }
            completions.lock().push_back(Completion {
                token: job.token,
                bytes,
                stop,
            });
            waker.wake();
        }
    }

    /// Serialises one frame into `out` exactly like [`write_frame`], minus
    /// the I/O — responses for a pipelined batch accumulate into one buffer
    /// and leave in one `write`.
    fn push_frame(out: &mut Vec<u8>, lines: &[String]) {
        let mut frame = String::with_capacity(lines.iter().map(|l| l.len() + 2).sum::<usize>() + 2);
        crate::proto::encode_frame(&mut frame, lines);
        out.extend_from_slice(frame.as_bytes());
    }

    /// Splits every complete frame off the front of `buf`, leaving the
    /// incomplete tail in place. Extraction stops right after a `watch`
    /// frame — everything behind it stays buffered for the blocking
    /// hand-off thread to replay. Line handling (CR trimming,
    /// dot-unstuffing) matches [`read_frame`].
    fn take_frames(buf: &mut Vec<u8>) -> (Vec<Vec<String>>, Option<Vec<String>>) {
        let mut frames = Vec::new();
        let mut watch = None;
        let mut lines: Vec<String> = Vec::new();
        let mut consumed = 0usize;
        let mut at = 0usize;
        while let Some(nl) = buf[at..].iter().position(|&b| b == b'\n') {
            let end = at + nl;
            let raw = buf[at..end].strip_suffix(b"\r").unwrap_or(&buf[at..end]);
            let text = String::from_utf8_lossy(raw);
            at = end + 1;
            if text == FRAME_END {
                let frame = std::mem::take(&mut lines);
                consumed = at;
                let is_watch = frame
                    .first()
                    .is_some_and(|header| header == "watch" || header.starts_with("watch\t"));
                if is_watch {
                    watch = Some(frame);
                    break;
                }
                frames.push(frame);
            } else {
                let line = match text.strip_prefix('.') {
                    Some(stripped) => stripped.to_owned(),
                    None => text.into_owned(),
                };
                lines.push(line);
            }
        }
        buf.drain(..consumed);
        (frames, watch)
    }

    /// Drains as much of the connection's pending response bytes as the
    /// socket accepts right now.
    ///
    /// # Errors
    /// Reports fatal socket errors (`WouldBlock` is not one: the remainder
    /// stays buffered for the next writable event).
    fn flush_write(conn: &mut Conn) -> std::io::Result<()> {
        while conn.write_pos < conn.write_buf.len() {
            match conn.stream.write(&conn.write_buf[conn.write_pos..]) {
                Ok(0) => return Err(std::io::ErrorKind::WriteZero.into()),
                Ok(n) => conn.write_pos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        conn.write_buf.clear();
        conn.write_pos = 0;
        Ok(())
    }

    /// Pulls every readable byte into the connection's read buffer;
    /// `true` means the connection is finished (EOF, error, or a buffer
    /// blown past [`READ_BUF_CAP`]).
    fn fill_read_buf(conn: &mut Conn) -> bool {
        let mut chunk = [0u8; 16384];
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => return true,
                Ok(n) => {
                    conn.read_buf.extend_from_slice(&chunk[..n]);
                    if conn.read_buf.len() > READ_BUF_CAP {
                        return true;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return false,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return true,
            }
        }
    }

    fn close_conn(poller: &Poller, conns: &mut HashMap<u64, Conn>, token: u64, shared: &Shared) {
        if let Some(conn) = conns.remove(&token) {
            let _ = poller.deregister(raw_fd_of(&conn.stream));
            let _ = conn.stream.shutdown(Shutdown::Both);
            shared.gauges.connection_closed();
        }
    }

    /// Accepts every pending connection (level-triggered listener).
    fn accept_ready(
        poller: &Poller,
        listener: &TcpListener,
        conns: &mut HashMap<u64, Conn>,
        next_token: &mut u64,
        shared: &Shared,
    ) {
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let token = *next_token;
                    *next_token += 1;
                    if poller
                        .register(raw_fd_of(&stream), token, Interest::Read)
                        .is_err()
                    {
                        continue;
                    }
                    shared.gauges.connection_opened();
                    conns.insert(
                        token,
                        Conn {
                            stream,
                            read_buf: Vec::new(),
                            write_buf: Vec::new(),
                            write_pos: 0,
                            busy: false,
                            interest: Interest::Read,
                            last_activity: Instant::now(),
                            pending_watch: None,
                        },
                    );
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
    }

    /// Advances one connection's state machine: flush pending responses,
    /// extract and dispatch newly completed frames, hand a quiesced watch
    /// connection to a blocking thread, and re-arm poller interest.
    fn service_conn(
        poller: &Poller,
        conns: &mut HashMap<u64, Conn>,
        token: u64,
        store: &Arc<WorkflowStore>,
        shared: &Arc<Shared>,
        sender: &mpsc::Sender<Job>,
    ) {
        let mut close = false;
        let mut handoff = false;
        {
            let Some(conn) = conns.get_mut(&token) else {
                return;
            };
            if flush_write(conn).is_err() {
                close = true;
            }
            if !close && !conn.busy && conn.pending_watch.is_none() {
                let (frames, watch) = take_frames(&mut conn.read_buf);
                conn.pending_watch = watch;
                if !frames.is_empty() {
                    if shared.backlog_limit > 0
                        && shared.queued.load(Ordering::SeqCst) >= shared.backlog_limit
                    {
                        // the dispatch queue is full: shed this batch with
                        // typed per-frame errors instead of queueing it
                        let error = ServiceError::Overloaded;
                        for _ in &frames {
                            store.record_error(&error);
                            push_frame(
                                &mut conn.write_buf,
                                &Response::Error(error.to_wire()).to_lines(),
                            );
                        }
                        if flush_write(conn).is_err() {
                            close = true;
                        }
                    } else {
                        shared.queued.fetch_add(1, Ordering::SeqCst);
                        conn.busy = true;
                        if sender.send(Job { token, frames }).is_err() {
                            close = true;
                        }
                    }
                }
            }
            if !close
                && !conn.busy
                && conn.write_pos >= conn.write_buf.len()
                && conn.pending_watch.is_some()
            {
                handoff = true;
            }
            if !close && !handoff {
                let want = if conn.write_pos < conn.write_buf.len() {
                    Interest::ReadWrite
                } else {
                    Interest::Read
                };
                if want != conn.interest {
                    if poller.rearm(raw_fd_of(&conn.stream), token, want).is_err() {
                        close = true;
                    } else {
                        conn.interest = want;
                    }
                }
            }
        }
        if close {
            close_conn(poller, conns, token, shared);
            return;
        }
        if handoff {
            let Some(conn) = conns.remove(&token) else {
                return;
            };
            let _ = poller.deregister(raw_fd_of(&conn.stream));
            let frame = conn
                .pending_watch
                .expect("hand-off requires a pending watch frame");
            hand_off_watch(conn.stream, conn.read_buf, frame, store, shared);
        }
    }

    /// Moves a watch connection onto a dedicated blocking thread running
    /// the same subscription loop as the thread-pool server; bytes read
    /// ahead of the hand-off are replayed first.
    fn hand_off_watch(
        stream: TcpStream,
        leftover: Vec<u8>,
        frame: Vec<String>,
        store: &Arc<WorkflowStore>,
        shared: &Arc<Shared>,
    ) {
        let _ = stream.set_nonblocking(false);
        let _ = stream.set_read_timeout(shared.read_timeout);
        let _ = stream.set_write_timeout(shared.write_timeout);
        let store = Arc::clone(store);
        let thread_shared = Arc::clone(shared);
        let handle = std::thread::spawn(move || {
            let id = thread_shared.track(&stream);
            handle_connection(stream, leftover, Some(frame), &store, &thread_shared);
            thread_shared.untrack(id);
            thread_shared.gauges.connection_closed();
        });
        shared.extra_threads.lock().push(handle);
    }

    /// The readiness loop: owns the listener, the waker and every
    /// connection; exits on shutdown (or a poller failure), dropping the
    /// dispatch sender so idle workers drain.
    fn event_loop(
        poller: &Poller,
        listener: TcpListener,
        store: &Arc<WorkflowStore>,
        shared: &Arc<Shared>,
        completions: &Mutex<VecDeque<Completion>>,
        waker: &Waker,
        sender: &mpsc::Sender<Job>,
    ) {
        if poller
            .register(raw_fd_of(&listener), LISTENER_TOKEN, Interest::Read)
            .is_err()
        {
            return;
        }
        if poller
            .register(waker.raw_fd(), WAKER_TOKEN, Interest::Read)
            .is_err()
        {
            return;
        }
        let mut conns: HashMap<u64, Conn> = HashMap::new();
        let mut events: Vec<Event> = Vec::new();
        let mut next_token = FIRST_CONN_TOKEN;
        let mut last_sweep = Instant::now();
        let mut stopping = false;
        let sweep_ms = u64::try_from(SWEEP_EVERY.as_millis()).unwrap_or(500);
        'outer: loop {
            if poller.wait(&mut events, Some(sweep_ms)).is_err() {
                break;
            }
            for &event in &events {
                match event.token {
                    WAKER_TOKEN => {
                        waker.drain();
                        shared.gauges.wakeup();
                        if shared.is_shutdown() {
                            break 'outer;
                        }
                        let finished: Vec<Completion> = { completions.lock().drain(..).collect() };
                        for completion in finished {
                            if let Some(conn) = conns.get_mut(&completion.token) {
                                conn.write_buf.extend_from_slice(&completion.bytes);
                                conn.busy = false;
                                conn.last_activity = Instant::now();
                            }
                            if completion.stop {
                                stopping = true;
                            }
                            service_conn(
                                poller,
                                &mut conns,
                                completion.token,
                                store,
                                shared,
                                sender,
                            );
                        }
                    }
                    LISTENER_TOKEN => {
                        accept_ready(poller, &listener, &mut conns, &mut next_token, shared);
                    }
                    token => {
                        let finished = {
                            let Some(conn) = conns.get_mut(&token) else {
                                continue;
                            };
                            let mut finished = false;
                            if event.readable {
                                finished = fill_read_buf(conn);
                                conn.last_activity = Instant::now();
                            } else if event.hangup {
                                finished = true;
                            }
                            finished
                        };
                        if finished {
                            close_conn(poller, &mut conns, token, shared);
                            continue;
                        }
                        service_conn(poller, &mut conns, token, store, shared, sender);
                    }
                }
            }
            if stopping || shared.is_shutdown() {
                break;
            }
            if let Some(timeout) = shared.read_timeout {
                if last_sweep.elapsed() >= SWEEP_EVERY {
                    last_sweep = Instant::now();
                    let expired: Vec<u64> = conns
                        .iter()
                        .filter(|(_, conn)| {
                            !conn.busy
                                && conn.write_pos >= conn.write_buf.len()
                                && conn.pending_watch.is_none()
                                && conn.last_activity.elapsed() > timeout
                        })
                        .map(|(&token, _)| token)
                        .collect();
                    for token in expired {
                        close_conn(poller, &mut conns, token, shared);
                    }
                }
            }
        }
        // exit: one best-effort flush of the goodbye frames, then close
        // everything (the wrapper flags shutdown, which also stops the
        // handed-off watch threads)
        for conn in conns.values_mut() {
            let _ = flush_write(conn);
            let _ = conn.stream.shutdown(Shutdown::Both);
            shared.gauges.connection_closed();
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn frame_splitter_handles_partials_pipelining_and_watch() {
            // a partial frame stays buffered
            let mut buf = b"validate\t1\n".to_vec();
            let (frames, watch) = take_frames(&mut buf);
            assert!(frames.is_empty());
            assert!(watch.is_none());
            assert_eq!(buf, b"validate\t1\n");

            // two complete frames and a partial third
            let mut buf = b"validate\t1\n.\nstats\n.\nepo".to_vec();
            let (frames, watch) = take_frames(&mut buf);
            assert_eq!(
                frames,
                vec![vec!["validate\t1".to_owned()], vec!["stats".to_owned()]]
            );
            assert!(watch.is_none());
            assert_eq!(buf, b"epo");

            // dot-stuffed payload lines are un-escaped like read_frame
            let mut buf = b"register\n..hidden\n.\n".to_vec();
            let (frames, _) = take_frames(&mut buf);
            assert_eq!(
                frames,
                vec![vec!["register".to_owned(), ".hidden".to_owned()]]
            );

            // extraction stops after a watch frame; bytes behind it stay
            let mut buf = b"stats\n.\nwatch\t3\n.\nunwatch\n.\n".to_vec();
            let (frames, watch) = take_frames(&mut buf);
            assert_eq!(frames, vec![vec!["stats".to_owned()]]);
            assert_eq!(watch, Some(vec!["watch\t3".to_owned()]));
            assert_eq!(buf, b"unwatch\n.\n");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;

    fn local_server() -> ServerHandle {
        serve(&ServerConfig {
            shards: 2,
            workers: 2,
            ..ServerConfig::default()
        })
        .expect("bind loopback")
    }

    #[test]
    fn malformed_frames_get_an_error_response_and_keep_the_connection() {
        let server = local_server();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        writer.write_all(b"frobnicate\n.\n").unwrap();
        let frame = read_frame(&mut reader).unwrap().unwrap();
        assert!(frame[0].starts_with("err\t"));
        // the connection is still usable after an error
        write_frame(&mut writer, &Request::Stats.to_lines()).unwrap();
        let frame = read_frame(&mut reader).unwrap().unwrap();
        assert!(frame[0].starts_with("ok\tstats"));
        // shutdown must not hang even though this client keeps its
        // connection open (reader still holds a cloned socket)
        server.shutdown();
    }

    #[test]
    fn shutdown_request_stops_the_server() {
        let server = local_server();
        let addr = server.local_addr();
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        write_frame(&mut writer, &Request::Shutdown.to_lines()).unwrap();
        let frame = read_frame(&mut reader).unwrap().unwrap();
        assert_eq!(frame[0], "ok\tshutdown");
        server.join();
        // the port is released: a fresh bind to the same address succeeds
        let rebound = TcpListener::bind(addr);
        assert!(rebound.is_ok());
    }

    #[cfg(target_os = "linux")]
    fn evented_server() -> ServerHandle {
        serve(&ServerConfig {
            shards: 2,
            workers: 2,
            evented: true,
            ..ServerConfig::default()
        })
        .expect("bind loopback")
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn evented_server_answers_pipelined_frames_in_order() {
        let server = evented_server();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        // one write carrying three frames (one of them malformed) — the
        // responses must come back in request order
        writer
            .write_all(b"stats\n.\nfrobnicate\n.\nheal\n.\n")
            .unwrap();
        let first = read_frame(&mut reader).unwrap().unwrap();
        assert!(first[0].starts_with("ok\tstats"));
        let second = read_frame(&mut reader).unwrap().unwrap();
        assert!(second[0].starts_with("err\t"));
        let third = read_frame(&mut reader).unwrap().unwrap();
        assert_eq!(third[0], "ok\thealed\t0\t0");
        server.shutdown();
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn evented_shutdown_request_stops_the_server() {
        let server = evented_server();
        let addr = server.local_addr();
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        write_frame(&mut writer, &Request::Shutdown.to_lines()).unwrap();
        let frame = read_frame(&mut reader).unwrap().unwrap();
        assert_eq!(frame[0], "ok\tshutdown");
        server.join();
        let rebound = TcpListener::bind(addr);
        assert!(rebound.is_ok());
    }
}
