//! The thread-pool TCP server.
//!
//! One acceptor thread hands accepted connections to a fixed pool of worker
//! threads over a channel (worker-per-connection: a worker owns a connection
//! until the client disconnects, answering any number of requests on it).
//!
//! Shutdown — triggered by a client's `shutdown` request or by
//! [`ServerHandle::request_shutdown`] — raises a flag, wakes the acceptor
//! with a loopback connection, and closes every tracked connection, so
//! [`ServerHandle::join`] returns even when clients leave connections idle.

use std::io::{BufRead, BufReader};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::error::ServiceError;
use crate::obs::{duration_ns, Stage};
use crate::proto::{read_frame, write_frame, Request, Response, WatchEvent, Watching};
use crate::store::{WatchSubscription, WorkflowStore};

/// How long a watch-serving worker waits on the subscription queue before
/// probing the connection for client frames (`unwatch`, disconnect) and the
/// shutdown flag.
const WATCH_POLL: Duration = Duration::from_millis(25);

/// Configuration of a [`serve`] call.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind; port 0 picks a free port (see
    /// [`ServerHandle::local_addr`]).
    pub addr: String,
    /// Number of store shards.
    pub shards: usize,
    /// Number of worker threads.
    pub workers: usize,
    /// Socket read timeout in milliseconds (0 disables): a connection
    /// whose client sends nothing for this long is closed and its worker
    /// reclaimed — an idle or stalled client can no longer pin a worker
    /// thread forever. Watch subscriptions are exempt (the server pushes
    /// to them; they are polled, not blocked on).
    pub read_timeout_ms: u64,
    /// Socket write timeout in milliseconds (0 disables): a client that
    /// stops reading its responses cannot block a worker indefinitely.
    pub write_timeout_ms: u64,
    /// Per-request admission deadline in milliseconds (0 disables): a
    /// connection that waited longer than this in the accept queue is shed
    /// with [`ServiceError::Overloaded`] instead of being served late.
    pub deadline_ms: u64,
    /// Accept-backlog bound (0 disables): when this many accepted
    /// connections are already queued for workers, further connections are
    /// shed immediately with [`ServiceError::Overloaded`].
    pub backlog_limit: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            shards: 4,
            workers: 4,
            read_timeout_ms: 30_000,
            write_timeout_ms: 30_000,
            deadline_ms: 10_000,
            backlog_limit: 1024,
        }
    }
}

/// `Some(duration)` for a positive millisecond count, `None` for the
/// disabled sentinel 0.
fn timeout_of(ms: u64) -> Option<Duration> {
    (ms > 0).then(|| Duration::from_millis(ms))
}

/// State shared between the acceptor, the workers and the handle.
#[derive(Debug)]
struct Shared {
    addr: SocketAddr,
    shutdown: AtomicBool,
    connections: Mutex<Vec<(u64, TcpStream)>>,
    next_connection: AtomicU64,
    /// Accepted connections handed to the worker channel but not yet
    /// picked up — the accept backlog the shedding bound applies to.
    queued: AtomicUsize,
    read_timeout: Option<Duration>,
    write_timeout: Option<Duration>,
    deadline: Option<Duration>,
    backlog_limit: usize,
}

impl Shared {
    /// Registers a connection so shutdown can close it; returns its id.
    fn track(&self, stream: &TcpStream) -> u64 {
        let id = self.next_connection.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            self.connections.lock().push((id, clone));
        }
        id
    }

    fn untrack(&self, id: u64) {
        self.connections.lock().retain(|(other, _)| *other != id);
    }

    /// Raises the shutdown flag, wakes the acceptor and closes every open
    /// connection (unblocking workers stuck reading from idle clients).
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // a throwaway connection unblocks accept(); if the listener is
        // already gone the connect simply fails
        let _ = TcpStream::connect(self.addr);
        for (_, stream) in self.connections.lock().iter() {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }

    fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// A running server: the bound address, the shared store and the threads to
/// join on shutdown.
#[derive(Debug)]
pub struct ServerHandle {
    store: Arc<WorkflowStore>,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server actually bound (relevant with port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The store backing the server (shared with the worker threads).
    #[must_use]
    pub fn store(&self) -> Arc<WorkflowStore> {
        Arc::clone(&self.store)
    }

    /// Begins shutdown without waiting for the threads; follow with
    /// [`ServerHandle::join`]. Batched-but-unsynced WAL records are pushed
    /// to stable storage first.
    pub fn request_shutdown(&self) {
        let _ = self.store.backend().sync();
        self.shared.begin_shutdown();
    }

    /// Waits for the acceptor and all workers to exit — either after a
    /// shutdown was requested, or once a client sends a `shutdown` request
    /// (this is what `wolves serve` blocks on).
    pub fn join(mut self) {
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
    }

    /// Convenience: [`ServerHandle::request_shutdown`] then
    /// [`ServerHandle::join`].
    pub fn shutdown(self) {
        self.request_shutdown();
        self.join();
    }
}

/// Binds a listener and starts the acceptor + worker threads on a fresh
/// in-memory store.
///
/// # Errors
/// Reports bind failures.
pub fn serve(config: &ServerConfig) -> std::io::Result<ServerHandle> {
    serve_with_store(config, Arc::new(WorkflowStore::new(config.shards)))
}

/// [`serve`] on a caller-provided store — how `wolves serve --data-dir`
/// plugs in a store recovered from a durable backend
/// ([`crate::store::WorkflowStore::open`]); binding and recovery stay
/// separable failures.
///
/// # Errors
/// Reports bind failures.
pub fn serve_with_store(
    config: &ServerConfig,
    store: Arc<WorkflowStore>,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(config.addr.as_str())?;
    let shared = Arc::new(Shared {
        addr: listener.local_addr()?,
        shutdown: AtomicBool::new(false),
        connections: Mutex::new(Vec::new()),
        next_connection: AtomicU64::new(0),
        queued: AtomicUsize::new(0),
        read_timeout: timeout_of(config.read_timeout_ms),
        write_timeout: timeout_of(config.write_timeout_ms),
        deadline: timeout_of(config.deadline_ms),
        backlog_limit: config.backlog_limit,
    });
    let (sender, receiver) = mpsc::channel::<(TcpStream, Instant)>();
    let receiver = Arc::new(Mutex::new(receiver));

    let mut threads = Vec::with_capacity(config.workers.max(1) + 1);
    for _ in 0..config.workers.max(1) {
        let receiver = Arc::clone(&receiver);
        let store = Arc::clone(&store);
        let shared = Arc::clone(&shared);
        threads.push(std::thread::spawn(move || {
            worker_loop(&receiver, &store, &shared);
        }));
    }

    let acceptor_shared = Arc::clone(&shared);
    let acceptor_store = Arc::clone(&store);
    threads.push(std::thread::spawn(move || {
        for stream in listener.incoming() {
            if acceptor_shared.is_shutdown() {
                break;
            }
            let Ok(mut stream) = stream else { continue };
            if acceptor_shared.backlog_limit > 0
                && acceptor_shared.queued.load(Ordering::SeqCst) >= acceptor_shared.backlog_limit
            {
                // load-shed at the door: a best-effort typed error frame
                // tells the client to back off, then the connection drops
                shed(&mut stream, &acceptor_store);
                continue;
            }
            acceptor_shared.queued.fetch_add(1, Ordering::SeqCst);
            if sender.send((stream, Instant::now())).is_err() {
                break;
            }
        }
        // dropping the listener and the sender lets idle workers drain
    }));

    Ok(ServerHandle {
        store,
        shared,
        threads,
    })
}

/// Sheds one connection with a best-effort [`ServiceError::Overloaded`]
/// frame; the drop that follows closes it.
fn shed(stream: &mut TcpStream, store: &WorkflowStore) {
    let error = ServiceError::Overloaded;
    store.record_error(&error);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
    let _ = write_frame(stream, &Response::Error(error.to_wire()).to_lines());
}

fn worker_loop(
    receiver: &Mutex<mpsc::Receiver<(TcpStream, Instant)>>,
    store: &WorkflowStore,
    shared: &Shared,
) {
    loop {
        // hold the mutex only while waiting for the next connection
        let next = { receiver.lock().recv() };
        match next {
            Ok((mut stream, enqueued)) => {
                shared.queued.fetch_sub(1, Ordering::SeqCst);
                if let Some(deadline) = shared.deadline {
                    // the admission deadline: a connection that aged out in
                    // the queue is shed, not served late
                    if enqueued.elapsed() > deadline {
                        shed(&mut stream, store);
                        continue;
                    }
                }
                let _ = stream.set_read_timeout(shared.read_timeout);
                let _ = stream.set_write_timeout(shared.write_timeout);
                let id = shared.track(&stream);
                // re-check AFTER tracking: a begin_shutdown() racing with
                // this hand-off either set the flag before track() (seen
                // here) or finds the stream in the tracked list and closes
                // it — either way the worker cannot block on an idle client
                if shared.is_shutdown() {
                    shared.untrack(id);
                    break;
                }
                handle_connection(stream, store, shared);
                shared.untrack(id);
            }
            Err(_) => break, // acceptor gone and channel drained
        }
    }
}

fn handle_connection(stream: TcpStream, store: &WorkflowStore, shared: &Shared) {
    // without TCP_NODELAY, Nagle + delayed ACKs cost ~40ms per small
    // request/response exchange on loopback
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    // a frame `run_watch` read off the connection while leaving
    // subscription mode, to be served before blocking on the socket again
    let mut pending: Option<Vec<String>> = None;
    loop {
        let frame = match pending.take() {
            Some(frame) => frame,
            None => match read_frame(&mut reader) {
                Ok(Some(frame)) => frame,
                _ => break,
            },
        };
        let parse_start = std::time::Instant::now();
        let parsed = Request::from_lines(&frame);
        store
            .telemetry()
            .stage(Stage::Parse, duration_ns(parse_start.elapsed()));
        let (response, stop) = match parsed {
            Ok(Request::Watch { workflow, mode }) => match store.watch(workflow, mode) {
                Ok(subscription) => {
                    let ack = Response::Watching(Watching {
                        workflow: subscription.workflow(),
                        seq: subscription.seq(),
                        epoch: subscription.epoch(),
                        payload: subscription.payload().map(str::to_owned),
                    });
                    if write_frame(&mut writer, &ack.to_lines()).is_err() {
                        store.unwatch(&subscription);
                        break;
                    }
                    match run_watch(&mut reader, &mut writer, store, shared, &subscription) {
                        WatchOutcome::Resume => continue,
                        WatchOutcome::Frame(frame) => {
                            pending = Some(frame);
                            continue;
                        }
                        WatchOutcome::Disconnect => break,
                    }
                }
                Err(e) => {
                    store.record_error(&e);
                    (Response::Error(e.to_wire()), false)
                }
            },
            Ok(request) => respond(store, request),
            Err(e) => {
                store.record_error(&e);
                (Response::Error(e.to_wire()), false)
            }
        };
        if write_frame(&mut writer, &response.to_lines()).is_err() {
            break;
        }
        if stop {
            shared.begin_shutdown();
            break;
        }
        if shared.is_shutdown() {
            break;
        }
    }
}

/// Why [`run_watch`] returned control to the request loop.
enum WatchOutcome {
    /// The subscription ended (client `unwatch`, or a lag-drop that was
    /// answered with an explicit resync event); keep serving requests.
    Resume,
    /// The client sent a non-`unwatch` frame while watching: the
    /// subscription is torn down and the frame should be served normally.
    Frame(Vec<String>),
    /// The client disconnected or the server is shutting down.
    Disconnect,
}

/// What a momentary non-blocking look at the connection found.
enum Probe {
    Idle,
    Data,
    Gone,
}

/// Peeks at the connection without committing to a blocking read: buffered
/// bytes (or readable socket data) mean the client sent a frame; EOF or a
/// socket error mean it is gone. `restore` is the connection's configured
/// read timeout, reinstated after the 1ms probe.
fn probe_client(reader: &mut BufReader<TcpStream>, restore: Option<Duration>) -> Probe {
    if !reader.buffer().is_empty() {
        return Probe::Data;
    }
    if reader
        .get_ref()
        .set_read_timeout(Some(Duration::from_millis(1)))
        .is_err()
    {
        return Probe::Gone;
    }
    let probe = match reader.fill_buf() {
        Ok([]) => Probe::Gone, // clean EOF
        Ok(_) => Probe::Data,
        Err(e)
            if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) =>
        {
            Probe::Idle
        }
        Err(_) => Probe::Gone,
    };
    // back to the configured timeout for the request loop's frame reads
    if reader.get_ref().set_read_timeout(restore).is_err() {
        return Probe::Gone;
    }
    probe
}

/// Serves one subscription: pushes committed events as they arrive,
/// periodically checking the shutdown flag and the connection. A lag-drop
/// (the store already removed the subscriber) is surfaced to the client as
/// an explicit `resync` event before returning to request mode; an
/// `unwatch` frame is acknowledged with `ok\tunwatched`.
fn run_watch(
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    store: &WorkflowStore,
    shared: &Shared,
    subscription: &WatchSubscription,
) -> WatchOutcome {
    loop {
        if shared.is_shutdown() {
            store.unwatch(subscription);
            return WatchOutcome::Disconnect;
        }
        match subscription.recv_timeout(WATCH_POLL) {
            Ok(Some(event)) => {
                if write_frame(writer, &event.to_lines()).is_err() {
                    store.unwatch(subscription);
                    return WatchOutcome::Disconnect;
                }
                // drain the queue before spending a probe on the socket
                continue;
            }
            Ok(None) => {}
            Err(crate::error::ServiceError::Lagged) => {
                // the store dropped this slow consumer; hand the client an
                // explicit resync cursor so it can export and re-subscribe
                let seq = store
                    .cursor(subscription.workflow())
                    .map_or(subscription.seq(), |(seq, _)| seq);
                let resync = WatchEvent::Resync {
                    workflow: subscription.workflow(),
                    seq,
                };
                if write_frame(writer, &resync.to_lines()).is_err() {
                    return WatchOutcome::Disconnect;
                }
                return WatchOutcome::Resume;
            }
            Err(_) => {
                // subscription closed without lagging (store dropped)
                store.unwatch(subscription);
                return WatchOutcome::Resume;
            }
        }
        match probe_client(reader, shared.read_timeout) {
            Probe::Idle => {}
            Probe::Gone => {
                store.unwatch(subscription);
                return WatchOutcome::Disconnect;
            }
            Probe::Data => {
                store.unwatch(subscription);
                let Ok(Some(frame)) = read_frame(reader) else {
                    return WatchOutcome::Disconnect;
                };
                if matches!(Request::from_lines(&frame), Ok(Request::Unwatch)) {
                    if write_frame(writer, &Response::Unwatched.to_lines()).is_err() {
                        return WatchOutcome::Disconnect;
                    }
                    return WatchOutcome::Resume;
                }
                return WatchOutcome::Frame(frame);
            }
        }
    }
}

/// Dispatches one request against the store; the boolean asks the worker to
/// begin server shutdown after replying.
fn respond(store: &WorkflowStore, request: Request) -> (Response, bool) {
    let response = match request {
        Request::Register { payload } => store.register_text(&payload).map(Response::Registered),
        Request::Validate { workflow, version } => {
            store.validate(workflow, version).map(Response::Verdict)
        }
        Request::Correct { workflow, strategy } => {
            store.correct(workflow, strategy).map(Response::Corrected)
        }
        Request::Provenance { workflow, subject } => store
            .provenance(workflow, &subject)
            .map(Response::Provenance),
        Request::Mutate {
            workflow,
            op,
            expect,
        } => store
            .mutate_cas(workflow, op, expect)
            .map(Response::Mutated),
        Request::Export { workflow } => store.export(workflow).map(Response::Exported),
        Request::Snapshot => store.snapshot_all().map(Response::Snapshotted),
        Request::Epoch { workflow } => store
            .cursor(workflow)
            .map(|(seq, epoch)| Response::Epoch { seq, epoch }),
        Request::Heal => {
            let (healed, still_degraded) = store.heal();
            Ok(Response::Healed {
                healed,
                still_degraded,
            })
        }
        Request::Stats => Ok(Response::Stats(store.stats())),
        Request::Metrics { slow } => Ok(Response::Metrics(if slow {
            store.slow_requests_text()
        } else {
            store.metrics_text()
        })),
        // subscriptions are connection-scoped and handled by the request
        // loop itself; this arm is unreachable in practice
        Request::Watch { .. } => Err(crate::error::ServiceError::Protocol(
            "watch is handled by the connection loop".to_owned(),
        )),
        // idempotent outside subscription mode (e.g. after a lag-drop
        // already ended the subscription server-side)
        Request::Unwatch => Ok(Response::Unwatched),
        Request::Shutdown => {
            // push batched-but-unsynced WAL records to stable storage
            // before acknowledging the shutdown
            let _ = store.backend().sync();
            return (Response::ShuttingDown, true);
        }
    };
    (
        response.unwrap_or_else(|e| {
            store.record_error(&e);
            Response::Error(e.to_wire())
        }),
        false,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;

    fn local_server() -> ServerHandle {
        serve(&ServerConfig {
            shards: 2,
            workers: 2,
            ..ServerConfig::default()
        })
        .expect("bind loopback")
    }

    #[test]
    fn malformed_frames_get_an_error_response_and_keep_the_connection() {
        let server = local_server();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        writer.write_all(b"frobnicate\n.\n").unwrap();
        let frame = read_frame(&mut reader).unwrap().unwrap();
        assert!(frame[0].starts_with("err\t"));
        // the connection is still usable after an error
        write_frame(&mut writer, &Request::Stats.to_lines()).unwrap();
        let frame = read_frame(&mut reader).unwrap().unwrap();
        assert!(frame[0].starts_with("ok\tstats"));
        // shutdown must not hang even though this client keeps its
        // connection open (reader still holds a cloned socket)
        server.shutdown();
    }

    #[test]
    fn shutdown_request_stops_the_server() {
        let server = local_server();
        let addr = server.local_addr();
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        write_frame(&mut writer, &Request::Shutdown.to_lines()).unwrap();
        let frame = read_frame(&mut reader).unwrap().unwrap();
        assert_eq!(frame[0], "ok\tshutdown");
        server.join();
        // the port is released: a fresh bind to the same address succeeds
        let rebound = TcpListener::bind(addr);
        assert!(rebound.is_ok());
    }
}
