//! Copy-on-write epoch snapshots: the cell behind the store's lock-free
//! read path.
//!
//! A [`SnapshotCell`] holds the current immutable state of one shard behind
//! an `Arc`. Readers call [`SnapshotCell::load`] and get their own reference
//! to a consistent snapshot; mutators build the *next* state off to the side
//! (typically via `Arc::make_mut`) and [`SnapshotCell::publish`] it as a
//! single pointer swap. Readers therefore never wait behind mutation work —
//! spec clones, cache invalidation, WAL appends and fsyncs all happen
//! before the publish, outside the cell's critical section.
//!
//! The crate forbids `unsafe`, so the swap is guarded by a plain `RwLock`
//! rather than a hand-rolled atomic pointer. The lock is only ever held for
//! the O(1) clone/store of the `Arc` itself — the cell's contention profile
//! is that of an atomic, not of the data behind it. Memory reclamation is
//! `Arc`'s reference count: a superseded snapshot stays alive exactly as
//! long as the last in-flight reader holds it, then drops — no epochs to
//! advance, no deferred free lists.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

/// One shard's current immutable state, swapped atomically on publish.
#[derive(Debug)]
pub(crate) struct SnapshotCell<T> {
    current: RwLock<Arc<T>>,
    publishes: AtomicU64,
}

impl<T> SnapshotCell<T> {
    /// Wraps the initial state.
    pub(crate) fn new(initial: T) -> Self {
        SnapshotCell {
            current: RwLock::new(Arc::new(initial)),
            publishes: AtomicU64::new(0),
        }
    }

    /// The current snapshot. O(1): an `Arc` clone under a momentary read
    /// lock; never blocks behind in-progress mutation work.
    pub(crate) fn load(&self) -> Arc<T> {
        Arc::clone(&self.current.read())
    }

    /// Atomically replaces the current snapshot. O(1): a pointer store
    /// under a momentary write lock.
    pub(crate) fn publish(&self, next: Arc<T>) {
        *self.current.write() = next;
        self.publishes.fetch_add(1, Ordering::Relaxed);
    }

    /// How many snapshots have been published (the initial state counts as
    /// zero).
    pub(crate) fn publish_count(&self) -> u64 {
        self.publishes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_returns_the_published_snapshot() {
        let cell = SnapshotCell::new(vec![1, 2, 3]);
        let before = cell.load();
        assert_eq!(*before, vec![1, 2, 3]);
        assert_eq!(cell.publish_count(), 0);

        // copy-on-write mutation: readers holding `before` are unaffected
        let mut next = cell.load();
        Arc::make_mut(&mut next).push(4);
        cell.publish(next);

        assert_eq!(*cell.load(), vec![1, 2, 3, 4]);
        assert_eq!(*before, vec![1, 2, 3], "old snapshot stays consistent");
        assert_eq!(cell.publish_count(), 1);
    }

    #[test]
    fn make_mut_does_not_clone_when_unshared() {
        let cell = SnapshotCell::new(String::from("state"));
        let mut next = cell.load();
        // two references exist (cell + next): make_mut clones...
        Arc::make_mut(&mut next).push('!');
        cell.publish(next);
        assert_eq!(*cell.load(), "state!");
    }
}
