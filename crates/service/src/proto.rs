//! The wire protocol: typed requests and responses over a newline-delimited
//! framing.
//!
//! A *frame* is a sequence of text lines terminated by a line containing a
//! single `.` (SMTP-style; payload lines that start with `.` are escaped by
//! doubling the dot). The first line of a frame is a TAB-separated header;
//! any further lines are a payload in the native text format of
//! [`wolves_moml::textfmt`]:
//!
//! ```text
//! register                          ok<TAB>registered<TAB><id>
//! <textfmt lines…>                  .
//! .
//!
//! validate<TAB><id>[<TAB><ver>]    ok<TAB>verdict<TAB>sound|unsound<TAB><ver><TAB>hit|miss<TAB><n>
//!                                   <unsound composite names…>
//! correct<TAB><id><TAB><strategy>  ok<TAB>corrected<TAB><ver><TAB><before><TAB><after>
//!                                   <textfmt of the corrected view…>
//! provenance<TAB><id><TAB><task>   ok<TAB>provenance<TAB><n> + task names
//! mutate<TAB><id>[<TAB>@<epoch>]<TAB><op>…
//!                                   ok<TAB>mutated<TAB><epoch><TAB><class><TAB><inv><TAB><ret><TAB><ver>
//! export<TAB><id>                  ok<TAB>exported + the registrable textfmt
//! snapshot                          ok<TAB>snapshotted<TAB><shards>
//! stats                             ok<TAB>stats + one line per shard
//! epoch<TAB><id>                   ok<TAB>epoch<TAB><seq><TAB><epoch>
//! heal                              ok<TAB>healed<TAB><healed><TAB><still-degraded>
//! watch<TAB><id>[<TAB><mode>]      ok<TAB>watching<TAB><id><TAB><seq><TAB><epoch><TAB><mode>
//! unwatch                           ok<TAB>unwatched
//! shutdown                          ok<TAB>shutdown
//! ```
//!
//! A `mutate` with an `@<epoch>` marker is a compare-and-set: it applies
//! only while the workflow's mutation epoch still equals `<epoch>` and is
//! otherwise refused with an `epoch-conflict` error — the primitive that
//! makes client-side mutate retries idempotent (a retried mutation whose
//! first attempt actually committed bumps the epoch, so the retry conflicts
//! instead of applying twice). `epoch` reads the current cursor to arm the
//! CAS; `heal` retries the storage backend of every degraded shard and
//! re-opens writes on success.
//!
//! `watch` switches the connection into subscription mode: the server pushes
//! one [`WatchEvent`] frame (`event<TAB>…`) per committed change of the
//! watched workflow until the client sends another frame (conventionally
//! `unwatch`) or disconnects. The optional mode is `resync` (the ack carries
//! a full `export` payload consistent with the acked sequence number) or a
//! previously seen sequence number (the server emits an explicit `resync`
//! event first when that number is no longer current, because a watch can
//! only tail — it never replays history).
//!
//! `mutate` ops edit a registered spec/view in place (no re-upload):
//! `add-task <name>`, `remove-task <name>`, `add-edge <from> <to>`,
//! `remove-edge <from> <to>`, `split <composite> <a,b;c,…>` and
//! `merge <new-name> <c1;c2;…>` — task and composite names are
//! tab-free by construction; `split`/`merge` additionally reserve `,`
//! and `;` as list separators.
//!
//! Errors are reported as `err<TAB><typed tail>`, where the tail is the
//! [`ServiceError::to_wire`] encoding (`<kind>` + TAB-separated fields), so
//! clients decode the exact error variant instead of pattern-matching
//! message text. The format reuses the text serialisation the CLI already
//! speaks, so a workflow file can be piped to the server verbatim — no new
//! dependency, no binary encoding.

use std::io::{BufRead, Write};

use wolves_core::correct::Strategy;
use wolves_workflow::persist::{delta_from_line, delta_to_line};
use wolves_workflow::SpecDelta;

use crate::error::ServiceError;
use crate::store::WorkflowId;

/// Terminator line closing every frame.
pub const FRAME_END: &str = ".";

/// A request from client to server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Register a workflow (and optional view) from a textfmt payload.
    Register {
        /// The workflow in the native text format.
        payload: String,
    },
    /// Validate a registered view, serving a cached verdict when available.
    Validate {
        /// The workflow to validate.
        workflow: WorkflowId,
        /// View version to validate; `None` means the current version.
        version: Option<usize>,
    },
    /// Correct the current view with the given strategy, registering the
    /// corrected view as a new version.
    Correct {
        /// The workflow to correct.
        workflow: WorkflowId,
        /// Corrector strategy to apply.
        strategy: Strategy,
    },
    /// Query view-level provenance of a task through the current view.
    Provenance {
        /// The workflow to query.
        workflow: WorkflowId,
        /// Name of the subject task.
        subject: String,
    },
    /// Edit a registered workflow in place (mutation epochs: caches covering
    /// unaffected composites survive the edit).
    Mutate {
        /// The workflow to edit.
        workflow: WorkflowId,
        /// The edit to apply.
        op: MutateOp,
        /// Compare-and-set guard: when set, the edit applies only while the
        /// workflow's mutation epoch still equals this value and is refused
        /// with [`ServiceError::EpochConflict`] otherwise. `None` (the
        /// historical wire format, unchanged) applies unconditionally.
        expect: Option<u64>,
    },
    /// Download a workflow's current spec + view in registrable textfmt —
    /// how clients resync after server-side mutations and corrections.
    Export {
        /// The workflow to export.
        workflow: WorkflowId,
    },
    /// Force a snapshot of every shard (durable backends truncate their
    /// write-ahead logs; a no-op on the in-memory backend).
    Snapshot,
    /// Fetch per-shard serving statistics.
    Stats,
    /// Read a workflow's change cursor (sequence number + mutation epoch) —
    /// how a client arms the compare-and-set guard of a retried mutation.
    Epoch {
        /// The workflow to read.
        workflow: WorkflowId,
    },
    /// Retry the storage backend of every degraded shard and re-open writes
    /// where the retry succeeds. A no-op (reported as 0/0) when nothing is
    /// degraded.
    Heal,
    /// Fetch the server's telemetry: the Prometheus-style text exposition,
    /// or (with `slow`) the slow-request ring dump.
    Metrics {
        /// `true` dumps the slow-request ring instead of the exposition.
        slow: bool,
    },
    /// Subscribe the connection to a workflow's change feed: the server
    /// pushes one [`WatchEvent`] frame per committed mutation/correction
    /// until the client sends another frame or disconnects.
    Watch {
        /// The workflow to watch.
        workflow: WorkflowId,
        /// How the subscription starts.
        mode: WatchMode,
    },
    /// Leave subscription mode (a no-op outside of it); answered with
    /// [`Response::Unwatched`] once the server stops pushing events.
    Unwatch,
    /// Ask the server to stop accepting connections and exit.
    Shutdown,
    /// Several requests in one frame, answered by one [`Response::Batch`]
    /// frame with the outcomes in request order. A sub-request failure is
    /// carried as its slot's [`Response::Error`]; it never aborts the rest
    /// of the batch. Connection-control verbs (`watch`, `unwatch`,
    /// `shutdown`) and nested batches are refused at parse time.
    Batch(Vec<Request>),
}

/// How a [`Request::Watch`] subscription starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchMode {
    /// Tail from the workflow's current state; the ack reports the base
    /// sequence number and epoch.
    Tail,
    /// Atomic export-and-tail: the ack additionally carries the workflow's
    /// full textfmt payload, consistent with the acked sequence number —
    /// the gap-free way to build a replica.
    Resync,
    /// Tail, claiming the client last saw this sequence number. When it is
    /// no longer the workflow's current one the server emits an explicit
    /// `resync` event before any change events (watches tail; they never
    /// replay history).
    From(u64),
}

/// One edit applied by a [`Request::Mutate`]. Tasks and composites are
/// addressed by name (clients never learn server-side ids beyond the
/// workflow id).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MutateOp {
    /// Add an atomic task; the current view gains a singleton composite of
    /// the same name.
    AddTask {
        /// Name of the new task.
        name: String,
    },
    /// Remove a task (and its dependencies); the current view drops it from
    /// its composite.
    RemoveTask {
        /// Name of the task to remove.
        name: String,
    },
    /// Add a data dependency between two named tasks.
    AddEdge {
        /// Source task name.
        from: String,
        /// Target task name.
        to: String,
    },
    /// Remove the data dependency between two named tasks.
    RemoveEdge {
        /// Source task name.
        from: String,
        /// Target task name.
        to: String,
    },
    /// Split a composite task of the current view into the given parts
    /// (member task names; the parts must partition the composite).
    Split {
        /// Name of the composite to split.
        composite: String,
        /// The parts, each a list of member task names.
        parts: Vec<Vec<String>>,
    },
    /// Merge composite tasks of the current view into one.
    Merge {
        /// Name of the merged composite.
        name: String,
        /// Names of the composites to merge.
        composites: Vec<String>,
    },
}

impl MutateOp {
    /// The op's TAB-separated wire tail (`add-edge\tfrom\tto`, …), shared by
    /// `mutate` request headers and `mutated` watch events.
    #[must_use]
    pub fn to_tail(&self) -> String {
        match self {
            MutateOp::AddTask { name } => format!("add-task\t{name}"),
            MutateOp::RemoveTask { name } => format!("remove-task\t{name}"),
            MutateOp::AddEdge { from, to } => format!("add-edge\t{from}\t{to}"),
            MutateOp::RemoveEdge { from, to } => format!("remove-edge\t{from}\t{to}"),
            MutateOp::Split { composite, parts } => {
                let parts: Vec<String> = parts.iter().map(|p| p.join(",")).collect();
                format!("split\t{composite}\t{}", parts.join(";"))
            }
            MutateOp::Merge { name, composites } => {
                format!("merge\t{name}\t{}", composites.join(";"))
            }
        }
    }

    /// Parses an op from the TAB-split `fields` of a header line, with the
    /// op name at index `at`.
    ///
    /// # Errors
    /// Reports unknown op names and missing arguments.
    pub fn from_fields(fields: &[&str], at: usize) -> Result<Self, ServiceError> {
        let op_name = fields.get(at).copied().unwrap_or_default();
        let arg = |index: usize, what: &str| -> Result<String, ServiceError> {
            fields
                .get(at + index)
                .filter(|s| !s.is_empty())
                .map(|s| (*s).to_owned())
                .ok_or_else(|| ServiceError::Protocol(format!("mutate {op_name} needs a {what}")))
        };
        match op_name {
            "add-task" => Ok(MutateOp::AddTask {
                name: arg(1, "task name")?,
            }),
            "remove-task" => Ok(MutateOp::RemoveTask {
                name: arg(1, "task name")?,
            }),
            "add-edge" => Ok(MutateOp::AddEdge {
                from: arg(1, "source task")?,
                to: arg(2, "target task")?,
            }),
            "remove-edge" => Ok(MutateOp::RemoveEdge {
                from: arg(1, "source task")?,
                to: arg(2, "target task")?,
            }),
            "split" => Ok(MutateOp::Split {
                composite: arg(1, "composite name")?,
                parts: arg(2, "part list")?
                    .split(';')
                    .map(|part| part.split(',').map(str::to_owned).collect())
                    .collect(),
            }),
            "merge" => Ok(MutateOp::Merge {
                name: arg(1, "composite name")?,
                composites: arg(2, "composite list")?
                    .split(';')
                    .map(str::to_owned)
                    .collect(),
            }),
            other => Err(ServiceError::Protocol(format!(
                "unknown mutate op '{other}'"
            ))),
        }
    }
}

/// Result of a [`Request::Mutate`] as reported over the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mutated {
    /// The workflow's mutation epoch after the edit.
    pub epoch: u64,
    /// Delta class the reachability maintenance used
    /// (`monotone-safe` / `local-rebuild` / `structural`).
    pub class: String,
    /// Cached composite verdicts invalidated by the edit.
    pub invalidated: usize,
    /// Cached composite verdicts that survived the edit.
    pub retained: usize,
    /// The current view version after the edit.
    pub version: usize,
}

/// Validation verdict as reported over the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Verdict {
    /// `true` iff every composite task of the view is sound.
    pub sound: bool,
    /// The view version that was validated.
    pub version: usize,
    /// `true` when the verdict came from the shard's validation cache.
    pub cached: bool,
    /// The workflow's mutation epoch the verdict was computed against.
    /// Readers observing a store under concurrent mutation see this advance
    /// monotonically — snapshots are published atomically, never torn.
    pub epoch: u64,
    /// Names of the unsound composite tasks.
    pub unsound: Vec<String>,
}

/// Result of a correction as reported over the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Corrected {
    /// Version under which the corrected view was registered (equals the
    /// validated version when the view was already sound).
    pub version: usize,
    /// Composite-task count before correction.
    pub composites_before: usize,
    /// Composite-task count after correction.
    pub composites_after: usize,
    /// The corrected workflow + view in the native text format.
    pub payload: String,
}

/// Schema version token leading every `stats` shard line, making the
/// positional field list self-describing. Bumped whenever the field list
/// changes; parsers reject a mismatched token with
/// [`ServiceError::SchemaVersion`] instead of silently misreading shifted
/// fields.
pub const STATS_SCHEMA_VERSION: &str = "v2";

/// One shard's serving counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStat {
    /// Shard index.
    pub shard: usize,
    /// Workflows stored in the shard.
    pub workflows: usize,
    /// Validation-cache hits (requests answered wholly from cache).
    pub validate_hits: u64,
    /// Validation-cache misses (requests that computed at least one
    /// composite verdict).
    pub validate_misses: u64,
    /// Composite-granular cache hits (individual composite verdicts served
    /// from cache).
    pub composite_hits: u64,
    /// Composite-granular cache misses (individual composite verdicts
    /// computed).
    pub composite_misses: u64,
    /// Total nanoseconds spent answering validate requests.
    pub validate_ns: u64,
    /// Requests of any kind routed to the shard.
    pub requests: u64,
    /// Copy-on-write state snapshots published by mutators (registrations,
    /// mutations, corrections, recovery installs).
    pub snapshot_publishes: u64,
    /// Watch subscriptions currently registered on the shard.
    pub active_watchers: u64,
    /// Watch subscriptions dropped because they could not keep up with the
    /// event stream (slow consumers).
    pub dropped_watchers: u64,
}

/// Store-wide statistics snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StatsReport {
    /// Per-shard counters.
    pub shards: Vec<ShardStat>,
    /// Correction samples accumulated in the estimation registry.
    pub registry_samples: usize,
}

impl StatsReport {
    /// Total validation-cache hits across shards.
    #[must_use]
    pub fn validate_hits(&self) -> u64 {
        self.shards.iter().map(|s| s.validate_hits).sum()
    }

    /// Total validation-cache misses across shards.
    #[must_use]
    pub fn validate_misses(&self) -> u64 {
        self.shards.iter().map(|s| s.validate_misses).sum()
    }

    /// Total composite-granular cache hits across shards.
    #[must_use]
    pub fn composite_hits(&self) -> u64 {
        self.shards.iter().map(|s| s.composite_hits).sum()
    }

    /// Total composite-granular cache misses across shards.
    #[must_use]
    pub fn composite_misses(&self) -> u64 {
        self.shards.iter().map(|s| s.composite_misses).sum()
    }

    /// Total requests routed to any shard.
    #[must_use]
    pub fn requests(&self) -> u64 {
        self.shards.iter().map(|s| s.requests).sum()
    }

    /// Total workflows stored.
    #[must_use]
    pub fn workflows(&self) -> usize {
        self.shards.iter().map(|s| s.workflows).sum()
    }

    /// Total copy-on-write snapshot publishes across shards.
    #[must_use]
    pub fn snapshot_publishes(&self) -> u64 {
        self.shards.iter().map(|s| s.snapshot_publishes).sum()
    }

    /// Total active watch subscriptions across shards.
    #[must_use]
    pub fn active_watchers(&self) -> u64 {
        self.shards.iter().map(|s| s.active_watchers).sum()
    }

    /// Total slow-consumer watch subscriptions dropped across shards.
    #[must_use]
    pub fn dropped_watchers(&self) -> u64 {
        self.shards.iter().map(|s| s.dropped_watchers).sum()
    }
}

/// Acknowledgement of a [`Request::Watch`] subscription.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Watching {
    /// The watched workflow.
    pub workflow: WorkflowId,
    /// The workflow's change-sequence number at subscription time. The
    /// first pushed event carries `seq + 1`; a gap-free consumer checks
    /// contiguity from here.
    pub seq: u64,
    /// The workflow's mutation epoch at subscription time.
    pub epoch: u64,
    /// In [`WatchMode::Resync`], the workflow's full textfmt payload,
    /// consistent with `seq`.
    pub payload: Option<String>,
}

/// One change event pushed to a watching connection. Events are tagged with
/// the workflow's per-entry sequence number (`seq`, bumped by every
/// committed mutation *and* correction) and carry everything a replica
/// needs to reproduce the change — the CDC stream is lossless by
/// construction: replaying it from a resync payload reproduces `export`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WatchEvent {
    /// A mutation committed (and, on durable backends, was WAL-appended
    /// before this event was fanned out).
    Mutated {
        /// The watched workflow.
        workflow: WorkflowId,
        /// The workflow's change-sequence number after the mutation.
        seq: u64,
        /// The committed op, replayable via `mutate`.
        op: MutateOp,
        /// The mutation outcome (epoch, delta class, cache effect).
        outcome: Mutated,
        /// The typed spec deltas the op produced (empty for view-only
        /// edits).
        deltas: Vec<SpecDelta>,
    },
    /// A correction appended a new current view version.
    Corrected {
        /// The watched workflow.
        workflow: WorkflowId,
        /// The workflow's change-sequence number after the correction.
        seq: u64,
        /// The version the corrected view was appended as.
        version: usize,
        /// The corrected view, line-exact as persisted (slot-exact replay,
        /// not a textfmt round trip).
        view_lines: Vec<String>,
    },
    /// The stream cannot continue gap-free from what the client has (a
    /// stated sequence number that is no longer current, or a slow consumer
    /// whose queue overflowed): re-`export` (or re-subscribe in resync
    /// mode) to catch up.
    Resync {
        /// The watched workflow.
        workflow: WorkflowId,
        /// The workflow's current change-sequence number.
        seq: u64,
    },
}

impl WatchEvent {
    /// The watched workflow.
    #[must_use]
    pub fn workflow(&self) -> WorkflowId {
        match self {
            WatchEvent::Mutated { workflow, .. }
            | WatchEvent::Corrected { workflow, .. }
            | WatchEvent::Resync { workflow, .. } => *workflow,
        }
    }

    /// The event's change-sequence number.
    #[must_use]
    pub fn seq(&self) -> u64 {
        match self {
            WatchEvent::Mutated { seq, .. }
            | WatchEvent::Corrected { seq, .. }
            | WatchEvent::Resync { seq, .. } => *seq,
        }
    }

    /// Serialises the event into frame lines (`event<TAB>…` header).
    #[must_use]
    pub fn to_lines(&self) -> Vec<String> {
        match self {
            WatchEvent::Mutated {
                workflow,
                seq,
                op,
                outcome,
                deltas,
            } => {
                let mut lines = vec![
                    format!(
                        "event\tmutated\t{workflow}\t{seq}\t{}\t{}\t{}\t{}\t{}",
                        outcome.epoch,
                        outcome.class,
                        outcome.invalidated,
                        outcome.retained,
                        outcome.version
                    ),
                    format!("op\t{}", op.to_tail()),
                ];
                lines.extend(deltas.iter().map(delta_to_line));
                lines
            }
            WatchEvent::Corrected {
                workflow,
                seq,
                version,
                view_lines,
            } => {
                let mut lines = vec![format!("event\tcorrected\t{workflow}\t{seq}\t{version}")];
                lines.extend(view_lines.iter().cloned());
                lines
            }
            WatchEvent::Resync { workflow, seq } => {
                vec![format!("event\tresync\t{workflow}\t{seq}")]
            }
        }
    }

    /// Parses an event from frame lines.
    ///
    /// # Errors
    /// Reports non-event frames and malformed fields.
    pub fn from_lines(lines: &[String]) -> Result<Self, ServiceError> {
        let header = lines
            .first()
            .ok_or_else(|| ServiceError::Protocol("empty event frame".to_owned()))?;
        let fields: Vec<&str> = header.split('\t').collect();
        if fields.first().copied() != Some("event") {
            return Err(ServiceError::Protocol(format!(
                "not a watch event frame: '{header}'"
            )));
        }
        let workflow = parse_id(fields.get(2).copied().unwrap_or_default())?;
        let seq = parse_u64(fields.get(3).copied().unwrap_or_default(), "sequence")?;
        match fields.get(1).copied() {
            Some("mutated") => {
                let outcome = Mutated {
                    epoch: parse_u64(fields.get(4).copied().unwrap_or_default(), "epoch")?,
                    class: fields.get(5).copied().unwrap_or_default().to_owned(),
                    invalidated: parse_usize(
                        fields.get(6).copied().unwrap_or_default(),
                        "invalidated count",
                    )?,
                    retained: parse_usize(
                        fields.get(7).copied().unwrap_or_default(),
                        "retained count",
                    )?,
                    version: parse_usize(fields.get(8).copied().unwrap_or_default(), "version")?,
                };
                let op_line = lines.get(1).ok_or_else(|| {
                    ServiceError::Protocol("mutated event misses its op line".to_owned())
                })?;
                let op_fields: Vec<&str> = op_line.split('\t').collect();
                if op_fields.first().copied() != Some("op") {
                    return Err(ServiceError::Protocol(format!(
                        "malformed event op line '{op_line}'"
                    )));
                }
                let op = MutateOp::from_fields(&op_fields, 1)?;
                let deltas = lines[2..]
                    .iter()
                    .map(|line| {
                        delta_from_line(line).map_err(|e| ServiceError::Protocol(e.to_string()))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(WatchEvent::Mutated {
                    workflow,
                    seq,
                    op,
                    outcome,
                    deltas,
                })
            }
            Some("corrected") => Ok(WatchEvent::Corrected {
                workflow,
                seq,
                version: parse_usize(fields.get(4).copied().unwrap_or_default(), "version")?,
                view_lines: lines[1..].to_vec(),
            }),
            Some("resync") => Ok(WatchEvent::Resync { workflow, seq }),
            other => Err(ServiceError::Protocol(format!(
                "unknown event kind '{}'",
                other.unwrap_or_default()
            ))),
        }
    }
}

/// A response from server to client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// The workflow was registered under this id.
    Registered(WorkflowId),
    /// Validation verdict.
    Verdict(Verdict),
    /// Correction outcome.
    Corrected(Corrected),
    /// Names of the tasks in the subject's view-level provenance.
    Provenance(Vec<String>),
    /// Mutation outcome.
    Mutated(Mutated),
    /// The exported workflow in the native text format.
    Exported(String),
    /// Number of shards that were snapshotted.
    Snapshotted(usize),
    /// Statistics snapshot.
    Stats(StatsReport),
    /// A workflow's change cursor: sequence number and mutation epoch.
    Epoch {
        /// The workflow's change-sequence number (mutations + corrections).
        seq: u64,
        /// The workflow's mutation epoch.
        epoch: u64,
    },
    /// Outcome of a [`Request::Heal`]: shards re-opened for writes and
    /// shards still degraded after the retry.
    Healed {
        /// Shards whose backend retry succeeded (writes re-opened).
        healed: usize,
        /// Shards whose backend retry failed again (still read-only).
        still_degraded: usize,
    },
    /// Telemetry text: the Prometheus-style exposition, or the slow-request
    /// dump for `metrics slow`.
    Metrics(String),
    /// The connection is now subscribed to a workflow's change feed.
    Watching(Watching),
    /// The connection left subscription mode.
    Unwatched,
    /// The server acknowledged a shutdown request.
    ShuttingDown,
    /// The outcomes of a [`Request::Batch`], in request order.
    Batch(Vec<Response>),
    /// The request failed server-side. The payload is the typed
    /// [`ServiceError::to_wire`] tail; [`ServiceError::from_wire`] decodes
    /// it back into the variant the server raised (free-form text decodes
    /// to [`ServiceError::Remote`]).
    Error(String),
}

/// Writes one frame: the given lines followed by the terminator. Lines
/// starting with `.` are dot-escaped. The frame is assembled in memory and
/// written in a single call so each request/response costs one TCP segment.
///
/// # Errors
/// Propagates I/O errors from the writer.
pub fn write_frame<W: Write>(writer: &mut W, lines: &[String]) -> std::io::Result<()> {
    let mut frame = String::with_capacity(lines.iter().map(|l| l.len() + 2).sum::<usize>() + 2);
    encode_frame(&mut frame, lines);
    writer.write_all(frame.as_bytes())?;
    writer.flush()
}

/// Appends one frame's wire bytes (dot-stuffed lines plus the terminator) to
/// `out` without touching a socket — how pipelined requests and batched
/// responses coalesce many frames into a single `write`.
pub fn encode_frame(out: &mut String, lines: &[String]) {
    for line in lines {
        if line.starts_with('.') {
            out.push('.');
        }
        out.push_str(line);
        out.push('\n');
    }
    out.push_str(FRAME_END);
    out.push('\n');
}

/// Reads one frame, un-escaping dot-stuffed lines. Returns `None` on a clean
/// end-of-stream before any line was read.
///
/// # Errors
/// Propagates I/O errors; a stream ending mid-frame is reported as
/// `UnexpectedEof`.
pub fn read_frame<R: BufRead>(reader: &mut R) -> std::io::Result<Option<Vec<String>>> {
    let mut lines = Vec::new();
    let mut buffer = String::new();
    loop {
        buffer.clear();
        let n = reader.read_line(&mut buffer)?;
        if n == 0 {
            if lines.is_empty() {
                return Ok(None);
            }
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "stream ended mid-frame",
            ));
        }
        let line = buffer.trim_end_matches(['\r', '\n']);
        if line == FRAME_END {
            return Ok(Some(lines));
        }
        let line = line.strip_prefix('.').unwrap_or(line);
        lines.push(line.to_owned());
    }
}

fn parse_id(text: &str) -> Result<WorkflowId, ServiceError> {
    text.parse::<u64>()
        .map(WorkflowId)
        .map_err(|_| ServiceError::Protocol(format!("invalid workflow id '{text}'")))
}

fn parse_usize(text: &str, what: &str) -> Result<usize, ServiceError> {
    text.parse::<usize>()
        .map_err(|_| ServiceError::Protocol(format!("invalid {what} '{text}'")))
}

fn parse_u64(text: &str, what: &str) -> Result<u64, ServiceError> {
    text.parse::<u64>()
        .map_err(|_| ServiceError::Protocol(format!("invalid {what} '{text}'")))
}

impl Request {
    /// Serialises the request into frame lines (header + payload).
    #[must_use]
    pub fn to_lines(&self) -> Vec<String> {
        match self {
            Request::Register { payload } => {
                let mut lines = vec!["register".to_owned()];
                lines.extend(payload.lines().map(str::to_owned));
                lines
            }
            Request::Validate { workflow, version } => match version {
                Some(v) => vec![format!("validate\t{workflow}\t{v}")],
                None => vec![format!("validate\t{workflow}")],
            },
            Request::Correct { workflow, strategy } => {
                vec![format!("correct\t{workflow}\t{}", strategy.name())]
            }
            Request::Provenance { workflow, subject } => {
                vec![format!("provenance\t{workflow}\t{subject}")]
            }
            Request::Mutate {
                workflow,
                op,
                expect,
            } => match expect {
                Some(epoch) => vec![format!("mutate\t{workflow}\t@{epoch}\t{}", op.to_tail())],
                None => vec![format!("mutate\t{workflow}\t{}", op.to_tail())],
            },
            Request::Export { workflow } => vec![format!("export\t{workflow}")],
            Request::Snapshot => vec!["snapshot".to_owned()],
            Request::Stats => vec!["stats".to_owned()],
            Request::Epoch { workflow } => vec![format!("epoch\t{workflow}")],
            Request::Heal => vec!["heal".to_owned()],
            Request::Metrics { slow } => vec![if *slow {
                "metrics\tslow".to_owned()
            } else {
                "metrics".to_owned()
            }],
            Request::Watch { workflow, mode } => match mode {
                WatchMode::Tail => vec![format!("watch\t{workflow}")],
                WatchMode::Resync => vec![format!("watch\t{workflow}\tresync")],
                WatchMode::From(seq) => vec![format!("watch\t{workflow}\t{seq}")],
            },
            Request::Unwatch => vec!["unwatch".to_owned()],
            Request::Shutdown => vec!["shutdown".to_owned()],
            Request::Batch(requests) => {
                let mut lines = vec![format!("batch\t{}", requests.len())];
                for request in requests {
                    let sub = request.to_lines();
                    lines.push(format!("req\t{}", sub.len()));
                    lines.extend(sub);
                }
                lines
            }
        }
    }

    /// Parses a request from frame lines.
    ///
    /// # Errors
    /// Reports empty frames, unknown verbs and malformed arguments.
    pub fn from_lines(lines: &[String]) -> Result<Self, ServiceError> {
        let header = lines
            .first()
            .ok_or_else(|| ServiceError::Protocol("empty request frame".to_owned()))?;
        let fields: Vec<&str> = header.split('\t').collect();
        match fields[0] {
            "register" => Ok(Request::Register {
                payload: lines[1..].join("\n"),
            }),
            "validate" => {
                let workflow = parse_id(fields.get(1).copied().unwrap_or_default())?;
                let version = match fields.get(2) {
                    Some(v) => Some(parse_usize(v, "view version")?),
                    None => None,
                };
                Ok(Request::Validate { workflow, version })
            }
            "correct" => {
                let workflow = parse_id(fields.get(1).copied().unwrap_or_default())?;
                let name = fields.get(2).copied().unwrap_or("strong");
                let strategy = Strategy::parse(name)
                    .ok_or_else(|| ServiceError::UnknownStrategy(name.to_owned()))?;
                Ok(Request::Correct { workflow, strategy })
            }
            "provenance" => {
                let workflow = parse_id(fields.get(1).copied().unwrap_or_default())?;
                let subject = fields
                    .get(2)
                    .filter(|s| !s.is_empty())
                    .ok_or_else(|| ServiceError::Protocol("provenance needs a task".to_owned()))?;
                Ok(Request::Provenance {
                    workflow,
                    subject: (*subject).to_owned(),
                })
            }
            "mutate" => {
                let workflow = parse_id(fields.get(1).copied().unwrap_or_default())?;
                // optional CAS marker `@<epoch>` between the id and the op
                let (expect, at) = match fields.get(2).and_then(|f| f.strip_prefix('@')) {
                    Some(epoch) => (Some(parse_u64(epoch, "expected epoch")?), 3),
                    None => (None, 2),
                };
                let op = MutateOp::from_fields(&fields, at)?;
                Ok(Request::Mutate {
                    workflow,
                    op,
                    expect,
                })
            }
            "export" => Ok(Request::Export {
                workflow: parse_id(fields.get(1).copied().unwrap_or_default())?,
            }),
            "snapshot" => Ok(Request::Snapshot),
            "stats" => Ok(Request::Stats),
            "epoch" => Ok(Request::Epoch {
                workflow: parse_id(fields.get(1).copied().unwrap_or_default())?,
            }),
            "heal" => Ok(Request::Heal),
            "metrics" => match fields.get(1).copied() {
                None | Some("") => Ok(Request::Metrics { slow: false }),
                Some("slow") => Ok(Request::Metrics { slow: true }),
                Some(other) => Err(ServiceError::Protocol(format!(
                    "unknown metrics mode '{other}'"
                ))),
            },
            "watch" => {
                let workflow = parse_id(fields.get(1).copied().unwrap_or_default())?;
                let mode = match fields.get(2).copied() {
                    None | Some("") => WatchMode::Tail,
                    Some("resync") => WatchMode::Resync,
                    Some(seq) => WatchMode::From(parse_u64(seq, "watch sequence")?),
                };
                Ok(Request::Watch { workflow, mode })
            }
            "unwatch" => Ok(Request::Unwatch),
            "shutdown" => Ok(Request::Shutdown),
            "batch" => {
                let count = parse_usize(fields.get(1).copied().unwrap_or_default(), "batch size")?;
                let truncated =
                    || ServiceError::Protocol("batch frame ended mid-sub-request".to_owned());
                let mut requests = Vec::with_capacity(count.min(1024));
                let mut at = 1usize;
                for _ in 0..count {
                    let marker = lines.get(at).ok_or_else(truncated)?;
                    let len = marker
                        .strip_prefix("req\t")
                        .ok_or_else(|| {
                            ServiceError::Protocol(format!(
                                "expected a 'req' marker, got '{marker}'"
                            ))
                        })
                        .and_then(|n| parse_usize(n, "sub-request length"))?;
                    at += 1;
                    let end = at
                        .checked_add(len)
                        .filter(|&end| end <= lines.len())
                        .ok_or_else(truncated)?;
                    let sub = Request::from_lines(&lines[at..end])?;
                    if matches!(
                        sub,
                        Request::Watch { .. }
                            | Request::Unwatch
                            | Request::Shutdown
                            | Request::Batch(_)
                    ) {
                        return Err(ServiceError::Protocol(
                            "watch, unwatch, shutdown and batch cannot be batched".to_owned(),
                        ));
                    }
                    requests.push(sub);
                    at = end;
                }
                if at != lines.len() {
                    return Err(ServiceError::Protocol(
                        "trailing lines after the last batch sub-request".to_owned(),
                    ));
                }
                Ok(Request::Batch(requests))
            }
            other => Err(ServiceError::Protocol(format!("unknown verb '{other}'"))),
        }
    }
}

impl Response {
    /// Serialises the response into frame lines (header + payload).
    #[must_use]
    pub fn to_lines(&self) -> Vec<String> {
        match self {
            Response::Registered(id) => vec![format!("ok\tregistered\t{id}")],
            Response::Verdict(v) => {
                let mut lines = vec![format!(
                    "ok\tverdict\t{}\t{}\t{}\t{}\t{}",
                    if v.sound { "sound" } else { "unsound" },
                    v.version,
                    if v.cached { "hit" } else { "miss" },
                    v.unsound.len(),
                    v.epoch
                )];
                lines.extend(v.unsound.iter().cloned());
                lines
            }
            Response::Corrected(c) => {
                let mut lines = vec![format!(
                    "ok\tcorrected\t{}\t{}\t{}",
                    c.version, c.composites_before, c.composites_after
                )];
                lines.extend(c.payload.lines().map(str::to_owned));
                lines
            }
            Response::Provenance(tasks) => {
                let mut lines = vec![format!("ok\tprovenance\t{}", tasks.len())];
                lines.extend(tasks.iter().cloned());
                lines
            }
            Response::Mutated(m) => {
                vec![format!(
                    "ok\tmutated\t{}\t{}\t{}\t{}\t{}",
                    m.epoch, m.class, m.invalidated, m.retained, m.version
                )]
            }
            Response::Exported(payload) => {
                let mut lines = vec!["ok\texported".to_owned()];
                lines.extend(payload.lines().map(str::to_owned));
                lines
            }
            Response::Snapshotted(shards) => vec![format!("ok\tsnapshotted\t{shards}")],
            Response::Epoch { seq, epoch } => vec![format!("ok\tepoch\t{seq}\t{epoch}")],
            Response::Healed {
                healed,
                still_degraded,
            } => vec![format!("ok\thealed\t{healed}\t{still_degraded}")],
            Response::Stats(stats) => {
                let mut lines = vec![format!("ok\tstats\t{}", stats.registry_samples)];
                for s in &stats.shards {
                    lines.push(format!(
                        "shard\t{STATS_SCHEMA_VERSION}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
                        s.shard,
                        s.workflows,
                        s.validate_hits,
                        s.validate_misses,
                        s.composite_hits,
                        s.composite_misses,
                        s.validate_ns,
                        s.requests,
                        s.snapshot_publishes,
                        s.active_watchers,
                        s.dropped_watchers
                    ));
                }
                lines
            }
            Response::Metrics(text) => {
                let mut lines = vec!["ok\tmetrics".to_owned()];
                lines.extend(text.lines().map(str::to_owned));
                lines
            }
            Response::Watching(w) => {
                let mut lines = vec![format!(
                    "ok\twatching\t{}\t{}\t{}\t{}",
                    w.workflow,
                    w.seq,
                    w.epoch,
                    if w.payload.is_some() {
                        "resync"
                    } else {
                        "tail"
                    }
                )];
                if let Some(payload) = &w.payload {
                    lines.extend(payload.lines().map(str::to_owned));
                }
                lines
            }
            Response::Unwatched => vec!["ok\tunwatched".to_owned()],
            Response::ShuttingDown => vec!["ok\tshutdown".to_owned()],
            Response::Batch(responses) => {
                let mut lines = vec![format!("ok\tbatch\t{}", responses.len())];
                for response in responses {
                    let sub = response.to_lines();
                    lines.push(format!("resp\t{}", sub.len()));
                    lines.extend(sub);
                }
                lines
            }
            Response::Error(message) => {
                // the typed wire tail is TAB-structured — only newlines
                // (which would break the framing) are flattened
                vec![format!("err\t{}", message.replace('\n', " "))]
            }
        }
    }

    /// Parses a response from frame lines.
    ///
    /// # Errors
    /// Reports empty frames, unknown kinds and malformed fields.
    pub fn from_lines(lines: &[String]) -> Result<Self, ServiceError> {
        let header = lines
            .first()
            .ok_or_else(|| ServiceError::Protocol("empty response frame".to_owned()))?;
        let fields: Vec<&str> = header.split('\t').collect();
        match (fields[0], fields.get(1).copied()) {
            ("err", _) => Ok(Response::Error(
                header
                    .split_once('\t')
                    .map(|(_, message)| message)
                    .unwrap_or_default()
                    .to_owned(),
            )),
            ("ok", Some("registered")) => Ok(Response::Registered(parse_id(
                fields.get(2).copied().unwrap_or_default(),
            )?)),
            ("ok", Some("verdict")) => {
                let sound = match fields.get(2).copied() {
                    Some("sound") => true,
                    Some("unsound") => false,
                    other => {
                        return Err(ServiceError::Protocol(format!(
                            "invalid verdict '{}'",
                            other.unwrap_or_default()
                        )))
                    }
                };
                let version = parse_usize(fields.get(3).copied().unwrap_or_default(), "version")?;
                let cached = fields.get(4).copied() == Some("hit");
                let epoch = parse_u64(fields.get(6).copied().unwrap_or_default(), "epoch")?;
                Ok(Response::Verdict(Verdict {
                    sound,
                    version,
                    cached,
                    epoch,
                    unsound: lines[1..].to_vec(),
                }))
            }
            ("ok", Some("corrected")) => Ok(Response::Corrected(Corrected {
                version: parse_usize(fields.get(2).copied().unwrap_or_default(), "version")?,
                composites_before: parse_usize(
                    fields.get(3).copied().unwrap_or_default(),
                    "composite count",
                )?,
                composites_after: parse_usize(
                    fields.get(4).copied().unwrap_or_default(),
                    "composite count",
                )?,
                payload: lines[1..].join("\n"),
            })),
            ("ok", Some("provenance")) => Ok(Response::Provenance(lines[1..].to_vec())),
            ("ok", Some("mutated")) => Ok(Response::Mutated(Mutated {
                epoch: parse_u64(fields.get(2).copied().unwrap_or_default(), "epoch")?,
                class: fields.get(3).copied().unwrap_or_default().to_owned(),
                invalidated: parse_usize(
                    fields.get(4).copied().unwrap_or_default(),
                    "invalidated count",
                )?,
                retained: parse_usize(
                    fields.get(5).copied().unwrap_or_default(),
                    "retained count",
                )?,
                version: parse_usize(fields.get(6).copied().unwrap_or_default(), "version")?,
            })),
            ("ok", Some("exported")) => Ok(Response::Exported(lines[1..].join("\n"))),
            ("ok", Some("snapshotted")) => Ok(Response::Snapshotted(parse_usize(
                fields.get(2).copied().unwrap_or_default(),
                "shard count",
            )?)),
            ("ok", Some("epoch")) => Ok(Response::Epoch {
                seq: parse_u64(fields.get(2).copied().unwrap_or_default(), "sequence")?,
                epoch: parse_u64(fields.get(3).copied().unwrap_or_default(), "epoch")?,
            }),
            ("ok", Some("healed")) => Ok(Response::Healed {
                healed: parse_usize(fields.get(2).copied().unwrap_or_default(), "healed count")?,
                still_degraded: parse_usize(
                    fields.get(3).copied().unwrap_or_default(),
                    "degraded count",
                )?,
            }),
            ("ok", Some("stats")) => {
                let registry_samples = parse_usize(
                    fields.get(2).copied().unwrap_or_default(),
                    "registry sample count",
                )?;
                let mut shards = Vec::new();
                for line in &lines[1..] {
                    let f: Vec<&str> = line.split('\t').collect();
                    if f.first().copied() != Some("shard") || f.len() < 2 {
                        return Err(ServiceError::Protocol(format!(
                            "malformed shard line '{line}'"
                        )));
                    }
                    if f[1] != STATS_SCHEMA_VERSION {
                        return Err(ServiceError::SchemaVersion {
                            expected: STATS_SCHEMA_VERSION,
                            found: f[1].to_owned(),
                        });
                    }
                    if f.len() != 13 {
                        return Err(ServiceError::Protocol(format!(
                            "malformed shard line '{line}'"
                        )));
                    }
                    shards.push(ShardStat {
                        shard: parse_usize(f[2], "shard index")?,
                        workflows: parse_usize(f[3], "workflow count")?,
                        validate_hits: parse_u64(f[4], "hit count")?,
                        validate_misses: parse_u64(f[5], "miss count")?,
                        composite_hits: parse_u64(f[6], "composite hit count")?,
                        composite_misses: parse_u64(f[7], "composite miss count")?,
                        validate_ns: parse_u64(f[8], "latency")?,
                        requests: parse_u64(f[9], "request count")?,
                        snapshot_publishes: parse_u64(f[10], "publish count")?,
                        active_watchers: parse_u64(f[11], "watcher count")?,
                        dropped_watchers: parse_u64(f[12], "dropped watcher count")?,
                    });
                }
                Ok(Response::Stats(StatsReport {
                    shards,
                    registry_samples,
                }))
            }
            ("ok", Some("metrics")) => Ok(Response::Metrics(lines[1..].join("\n"))),
            ("ok", Some("watching")) => {
                let resync = match fields.get(5).copied() {
                    Some("resync") => true,
                    Some("tail") | None => false,
                    Some(other) => {
                        return Err(ServiceError::Protocol(format!(
                            "invalid watch mode '{other}'"
                        )))
                    }
                };
                Ok(Response::Watching(Watching {
                    workflow: parse_id(fields.get(2).copied().unwrap_or_default())?,
                    seq: parse_u64(fields.get(3).copied().unwrap_or_default(), "sequence")?,
                    epoch: parse_u64(fields.get(4).copied().unwrap_or_default(), "epoch")?,
                    payload: resync.then(|| lines[1..].join("\n")),
                }))
            }
            ("ok", Some("unwatched")) => Ok(Response::Unwatched),
            ("ok", Some("shutdown")) => Ok(Response::ShuttingDown),
            ("ok", Some("batch")) => {
                let count = parse_usize(fields.get(2).copied().unwrap_or_default(), "batch size")?;
                let truncated =
                    || ServiceError::Protocol("batch frame ended mid-sub-response".to_owned());
                let mut responses = Vec::with_capacity(count.min(1024));
                let mut at = 1usize;
                for _ in 0..count {
                    let marker = lines.get(at).ok_or_else(truncated)?;
                    let len = marker
                        .strip_prefix("resp\t")
                        .ok_or_else(|| {
                            ServiceError::Protocol(format!(
                                "expected a 'resp' marker, got '{marker}'"
                            ))
                        })
                        .and_then(|n| parse_usize(n, "sub-response length"))?;
                    at += 1;
                    let end = at
                        .checked_add(len)
                        .filter(|&end| end <= lines.len())
                        .ok_or_else(truncated)?;
                    responses.push(Response::from_lines(&lines[at..end])?);
                    at = end;
                }
                if at != lines.len() {
                    return Err(ServiceError::Protocol(
                        "trailing lines after the last batch sub-response".to_owned(),
                    ));
                }
                Ok(Response::Batch(responses))
            }
            _ => Err(ServiceError::Protocol(format!(
                "unknown response header '{header}'"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn round_trip_request(request: &Request) {
        let lines = request.to_lines();
        let parsed = Request::from_lines(&lines).unwrap();
        assert_eq!(&parsed, request);
    }

    fn round_trip_response(response: &Response) {
        let lines = response.to_lines();
        let parsed = Response::from_lines(&lines).unwrap();
        assert_eq!(&parsed, response);
    }

    #[test]
    fn requests_round_trip_through_lines() {
        round_trip_request(&Request::Register {
            payload: "workflow\tdemo\ntask\ta".to_owned(),
        });
        round_trip_request(&Request::Validate {
            workflow: WorkflowId(7),
            version: None,
        });
        round_trip_request(&Request::Validate {
            workflow: WorkflowId(7),
            version: Some(2),
        });
        round_trip_request(&Request::Correct {
            workflow: WorkflowId(1),
            strategy: Strategy::Optimal,
        });
        round_trip_request(&Request::Provenance {
            workflow: WorkflowId(3),
            subject: "Build phylo tree".to_owned(),
        });
        round_trip_request(&Request::Export {
            workflow: WorkflowId(12),
        });
        round_trip_request(&Request::Snapshot);
        round_trip_request(&Request::Stats);
        round_trip_request(&Request::Epoch {
            workflow: WorkflowId(5),
        });
        round_trip_request(&Request::Heal);
        round_trip_request(&Request::Metrics { slow: false });
        round_trip_request(&Request::Metrics { slow: true });
        assert!(matches!(
            Request::from_lines(&["metrics\tfast".to_owned()]).unwrap_err(),
            ServiceError::Protocol(_)
        ));
        round_trip_request(&Request::Watch {
            workflow: WorkflowId(4),
            mode: WatchMode::Tail,
        });
        round_trip_request(&Request::Watch {
            workflow: WorkflowId(4),
            mode: WatchMode::Resync,
        });
        round_trip_request(&Request::Watch {
            workflow: WorkflowId(4),
            mode: WatchMode::From(31),
        });
        round_trip_request(&Request::Unwatch);
        round_trip_request(&Request::Shutdown);
    }

    #[test]
    fn batch_frames_round_trip_and_refuse_control_verbs() {
        // sub-requests with multi-line payloads keep their boundaries
        round_trip_request(&Request::Batch(vec![
            Request::Register {
                payload: "workflow\tdemo\ntask\ta".to_owned(),
            },
            Request::Validate {
                workflow: WorkflowId(7),
                version: None,
            },
            Request::Provenance {
                workflow: WorkflowId(7),
                subject: "a".to_owned(),
            },
        ]));
        round_trip_request(&Request::Batch(Vec::new()));
        round_trip_response(&Response::Batch(vec![
            Response::Registered(WorkflowId(1)),
            Response::Error("err\tunknown-workflow\t9".to_owned()),
            Response::Provenance(vec!["a".to_owned(), "b".to_owned()]),
        ]));
        // connection-control verbs and nested batches are refused at parse
        for nested in [
            Request::Watch {
                workflow: WorkflowId(1),
                mode: WatchMode::Tail,
            },
            Request::Unwatch,
            Request::Shutdown,
            Request::Batch(vec![Request::Stats]),
        ] {
            let lines = Request::Batch(vec![nested]).to_lines();
            assert!(matches!(
                Request::from_lines(&lines).unwrap_err(),
                ServiceError::Protocol(_)
            ));
        }
        // a truncated batch tail is a protocol error, not a panic
        let mut lines = Request::Batch(vec![Request::Stats, Request::Heal]).to_lines();
        lines.truncate(lines.len() - 1);
        assert!(matches!(
            Request::from_lines(&lines).unwrap_err(),
            ServiceError::Protocol(_)
        ));
    }

    #[test]
    fn mutate_requests_round_trip_through_lines() {
        let ops = [
            MutateOp::AddTask {
                name: "Fresh task".to_owned(),
            },
            MutateOp::RemoveTask {
                name: "Old task".to_owned(),
            },
            MutateOp::AddEdge {
                from: "Select entries".to_owned(),
                to: "Split entries".to_owned(),
            },
            MutateOp::RemoveEdge {
                from: "a".to_owned(),
                to: "b".to_owned(),
            },
            MutateOp::Split {
                composite: "Curate & align (16)".to_owned(),
                parts: vec![
                    vec!["Curate annotations".to_owned()],
                    vec!["Create alignment".to_owned()],
                ],
            },
            MutateOp::Merge {
                name: "Front end".to_owned(),
                composites: vec![
                    "Retrieve entries (13)".to_owned(),
                    "Annotations (14)".to_owned(),
                ],
            },
        ];
        for op in ops {
            round_trip_request(&Request::Mutate {
                workflow: WorkflowId(9),
                op: op.clone(),
                expect: None,
            });
            round_trip_request(&Request::Mutate {
                workflow: WorkflowId(9),
                op,
                expect: Some(41),
            });
        }
        // the CAS marker changes the wire only when present: the no-expect
        // form is the historical format, byte for byte
        assert_eq!(
            Request::Mutate {
                workflow: WorkflowId(3),
                op: MutateOp::AddTask {
                    name: "x".to_owned()
                },
                expect: None,
            }
            .to_lines(),
            vec!["mutate\t3\tadd-task\tx".to_owned()]
        );
        assert_eq!(
            Request::Mutate {
                workflow: WorkflowId(3),
                op: MutateOp::AddTask {
                    name: "x".to_owned()
                },
                expect: Some(7),
            }
            .to_lines(),
            vec!["mutate\t3\t@7\tadd-task\tx".to_owned()]
        );
        let bad = |line: &str| Request::from_lines(&[line.to_owned()]).unwrap_err();
        assert!(matches!(
            bad("mutate\t1\tfrobnicate"),
            ServiceError::Protocol(_)
        ));
        assert!(matches!(
            bad("mutate\t1\tadd-task"),
            ServiceError::Protocol(_)
        ));
        assert!(matches!(
            bad("mutate\t1\tadd-edge\ta"),
            ServiceError::Protocol(_)
        ));
        assert!(matches!(
            bad("mutate\t1\t@nope\tadd-task\tx"),
            ServiceError::Protocol(_)
        ));
    }

    #[test]
    fn responses_round_trip_through_lines() {
        round_trip_response(&Response::Registered(WorkflowId(42)));
        round_trip_response(&Response::Verdict(Verdict {
            sound: false,
            version: 0,
            cached: true,
            epoch: 3,
            unsound: vec!["Curate & align (16)".to_owned()],
        }));
        round_trip_response(&Response::Corrected(Corrected {
            version: 1,
            composites_before: 7,
            composites_after: 8,
            payload: "workflow\tdemo\ntask\ta".to_owned(),
        }));
        round_trip_response(&Response::Provenance(vec!["a".to_owned(), "b".to_owned()]));
        round_trip_response(&Response::Mutated(Mutated {
            epoch: 17,
            class: "monotone-safe".to_owned(),
            invalidated: 2,
            retained: 5,
            version: 1,
        }));
        round_trip_response(&Response::Stats(StatsReport {
            shards: vec![ShardStat {
                shard: 0,
                workflows: 3,
                validate_hits: 10,
                validate_misses: 2,
                composite_hits: 70,
                composite_misses: 14,
                validate_ns: 12345,
                requests: 15,
                snapshot_publishes: 9,
                active_watchers: 2,
                dropped_watchers: 1,
            }],
            registry_samples: 4,
        }));
        round_trip_response(&Response::Exported(
            "workflow\tdemo\ntask\ta\ntask\tb\nedge\ta\tb".to_owned(),
        ));
        round_trip_response(&Response::Metrics(
            "# TYPE wolves_request_duration_seconds histogram\n\
             wolves_request_duration_seconds_bucket{verb=\"validate\",le=\"+Inf\"} 3"
                .to_owned(),
        ));
        round_trip_response(&Response::Snapshotted(4));
        round_trip_response(&Response::Watching(Watching {
            workflow: WorkflowId(6),
            seq: 12,
            epoch: 5,
            payload: None,
        }));
        round_trip_response(&Response::Watching(Watching {
            workflow: WorkflowId(6),
            seq: 12,
            epoch: 5,
            payload: Some("workflow\tdemo\ntask\ta".to_owned()),
        }));
        round_trip_response(&Response::Unwatched);
        round_trip_response(&Response::ShuttingDown);
        round_trip_response(&Response::Error("boom".to_owned()));
        round_trip_response(&Response::Epoch { seq: 12, epoch: 7 });
        round_trip_response(&Response::Healed {
            healed: 2,
            still_degraded: 1,
        });
        // typed error tails are TAB-structured and must survive the frame
        let wire = ServiceError::Degraded {
            shard: 1,
            reason: "disk full".to_owned(),
        }
        .to_wire();
        round_trip_response(&Response::Error(wire.clone()));
        let lines = Response::Error(wire).to_lines();
        match Response::from_lines(&lines).unwrap() {
            Response::Error(tail) => assert!(matches!(
                ServiceError::from_wire(&tail),
                ServiceError::Degraded { shard: 1, .. }
            )),
            other => panic!("not an error response: {other:?}"),
        }
    }

    #[test]
    fn stats_shard_lines_are_versioned_and_pin_the_field_count() {
        let report = StatsReport {
            shards: vec![ShardStat {
                shard: 1,
                workflows: 2,
                validate_hits: 3,
                validate_misses: 4,
                composite_hits: 5,
                composite_misses: 6,
                validate_ns: 7,
                requests: 8,
                snapshot_publishes: 9,
                active_watchers: 10,
                dropped_watchers: 11,
            }],
            registry_samples: 0,
        };
        let lines = Response::Stats(report.clone()).to_lines();
        assert_eq!(lines[1], "shard\tv2\t1\t2\t3\t4\t5\t6\t7\t8\t9\t10\t11");
        assert_eq!(lines[1].split('\t').count(), 13);
        assert_eq!(
            Response::from_lines(&lines).unwrap(),
            Response::Stats(report)
        );
        // a mismatched schema version is rejected loudly, not misread
        let stale = vec![lines[0].clone(), lines[1].replacen("\tv2\t", "\tv1\t", 1)];
        assert!(matches!(
            Response::from_lines(&stale).unwrap_err(),
            ServiceError::SchemaVersion {
                expected: "v2",
                found
            } if found == "v1"
        ));
        // the version token alone is not enough: the field count is pinned
        let padded = vec![lines[0].clone(), format!("{}\t99", lines[1])];
        assert!(matches!(
            Response::from_lines(&padded).unwrap_err(),
            ServiceError::Protocol(_)
        ));
    }

    #[test]
    fn watch_events_round_trip_through_lines() {
        use wolves_workflow::{SpecDeltaKind, TaskId};

        let round_trip = |event: &WatchEvent| {
            let lines = event.to_lines();
            assert!(lines[0].starts_with("event\t"));
            let parsed = WatchEvent::from_lines(&lines).unwrap();
            assert_eq!(&parsed, event);
        };
        round_trip(&WatchEvent::Mutated {
            workflow: WorkflowId(3),
            seq: 8,
            op: MutateOp::AddEdge {
                from: "Split entries".to_owned(),
                to: "Display tree".to_owned(),
            },
            outcome: Mutated {
                epoch: 5,
                class: "monotone-safe".to_owned(),
                invalidated: 1,
                retained: 6,
                version: 0,
            },
            deltas: vec![SpecDelta {
                epoch: 5,
                kind: SpecDeltaKind::DependencyAdded(TaskId::from_index(2), TaskId::from_index(9)),
            }],
        });
        round_trip(&WatchEvent::Mutated {
            workflow: WorkflowId(3),
            seq: 9,
            op: MutateOp::Merge {
                name: "Front end".to_owned(),
                composites: vec!["a".to_owned(), "b".to_owned()],
            },
            outcome: Mutated {
                epoch: 5,
                class: "view-edit".to_owned(),
                invalidated: 2,
                retained: 5,
                version: 0,
            },
            deltas: Vec::new(),
        });
        round_trip(&WatchEvent::Corrected {
            workflow: WorkflowId(3),
            seq: 10,
            version: 2,
            view_lines: vec!["view\tdemo".to_owned(), "composite\tx\t0,1".to_owned()],
        });
        round_trip(&WatchEvent::Resync {
            workflow: WorkflowId(3),
            seq: 10,
        });

        // non-event frames are refused, so a client draining a watch stream
        // can tell responses from events by the header alone
        let err = WatchEvent::from_lines(&["ok\tunwatched".to_owned()]).unwrap_err();
        assert!(matches!(err, ServiceError::Protocol(_)));
    }

    #[test]
    fn frames_round_trip_with_dot_stuffing() {
        let lines = vec![
            "header\tx".to_owned(),
            ".starts with a dot".to_owned(),
            String::new(),
        ];
        let mut wire = Vec::new();
        write_frame(&mut wire, &lines).unwrap();
        let mut reader = BufReader::new(wire.as_slice());
        let read = read_frame(&mut reader).unwrap().unwrap();
        assert_eq!(read, lines);
        assert!(read_frame(&mut reader).unwrap().is_none());
    }

    #[test]
    fn mid_frame_eof_is_an_error() {
        let mut reader = BufReader::new(b"header\n".as_slice());
        let err = read_frame(&mut reader).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn malformed_requests_are_rejected() {
        let bad = |lines: &[&str]| {
            Request::from_lines(&lines.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>())
                .unwrap_err()
        };
        assert!(matches!(bad(&["frobnicate"]), ServiceError::Protocol(_)));
        assert!(matches!(
            bad(&["validate\tnope"]),
            ServiceError::Protocol(_)
        ));
        assert!(matches!(
            bad(&["correct\t1\tbogus"]),
            ServiceError::UnknownStrategy(_)
        ));
        assert!(matches!(bad(&["provenance\t1"]), ServiceError::Protocol(_)));
        assert!(Request::from_lines(&[]).is_err());
    }
}
