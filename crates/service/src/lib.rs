//! # wolves-service
//!
//! The concurrent serving layer of the WOLVES workspace: everything below
//! this crate is a pure in-memory theory library; this crate turns it into a
//! long-running process that serves validation, correction and provenance
//! requests to many clients at once.
//!
//! * [`store`] — a sharded [`store::WorkflowStore`]: workflows hashed over
//!   `N` shards, each publishing its state through a copy-on-write epoch
//!   snapshot cell — reads (`validate`, `provenance`, `export`, `stats`)
//!   never block behind mutators — with composite-granular, epoch-keyed
//!   verdict caching and reachability-matrix reuse (mutations maintain the
//!   matrix incrementally). `watch` subscriptions stream every committed
//!   change (op, typed spec deltas, verdict transition) gap-free to CDC
//!   consumers.
//! * [`proto`] — the typed request/response protocol, framed as
//!   newline-delimited text reusing the native format of
//!   [`wolves_moml::textfmt`].
//! * [`server`] — the TCP serving layer (plain `std::net`, no runtime
//!   dependency): an evented readiness-polling core (epoll event loop,
//!   non-blocking connections, request pipelining, worker-pool dispatch)
//!   with a thread-pool fallback mode, graceful shutdown and per-shard
//!   serving counters; live correction timings feed
//!   [`wolves_core::estimate::EstimationRegistry`].
//! * [`poll`] — the minimal readiness-polling primitive under the evented
//!   server: raw `epoll`/`eventfd` syscalls behind a safe [`poll::Poller`] /
//!   [`poll::Waker`] API (Linux), with a portable fallback elsewhere.
//! * [`client`] — a typed client plus the concurrent batch driver used by
//!   the `wolves request` CLI and the `service_bench` throughput benchmark.
//! * [`obs`] — the telemetry layer: lock-free log₂-bucketed latency
//!   histograms recorded per verb and per commit stage, a bounded
//!   slow-request ring, and the Prometheus-style text exposition served by
//!   the `metrics` protocol verb.
//! * [`storage`] — the [`storage::StorageBackend`] trait the store persists
//!   through: [`storage::MemoryBackend`] (zero-cost default) or…
//! * [`wal`] — …[`wal::FileBackend`], a per-shard snapshot + write-ahead
//!   log (`wolves serve --data-dir`): every register/mutate/correct is
//!   appended before it is acknowledged, segments rotate into compacting
//!   snapshots, and [`store::WorkflowStore::open`] replays the journal
//!   through the live mutation paths so a restarted server answers exactly
//!   like the one that crashed.
//!
//! Quickstart (in-process; the CLI wraps exactly this):
//!
//! ```
//! use wolves_service::client::ServiceClient;
//! use wolves_service::server::{serve, ServerConfig};
//! use wolves_core::correct::Strategy;
//!
//! let server = serve(&ServerConfig::default()).unwrap();
//! let mut client = ServiceClient::connect(server.local_addr()).unwrap();
//! let fixture = wolves_repo::figure1();
//! let id = client.register(&fixture.spec, Some(&fixture.view)).unwrap();
//! assert!(!client.validate(id, None).unwrap().sound);
//! client.correct(id, Strategy::Strong).unwrap();
//! assert!(client.validate(id, None).unwrap().sound);
//! server.shutdown();
//! ```

#![warn(missing_docs)]
// unsafe is denied crate-wide; the one exception is the FFI layer of
// `poll`, which declares the raw epoll/eventfd syscalls (no external
// crates are available) and carries its own scoped allow
#![deny(unsafe_code)]

pub mod client;
mod epoch;
pub mod error;
pub mod obs;
pub mod poll;
pub mod proto;
pub mod server;
pub mod storage;
pub mod store;
pub mod wal;

pub use client::{
    validate_throughput, BatchConfig, MutateOutcome, RequestPolicy, ServiceClient,
    ThroughputReport, WatchStream,
};
pub use error::ServiceError;
pub use obs::{
    ErrorCounters, Histogram, HistogramSnapshot, ServerGauges, Stage, StorageObservation,
    Telemetry, Verb,
};
pub use poll::{readiness_supported, Event, Interest, Poller, Waker};
pub use proto::{
    MutateOp, Mutated, Request, Response, StatsReport, Verdict, WatchEvent, WatchMode, Watching,
    STATS_SCHEMA_VERSION,
};
pub use server::{serve, serve_with_store, ServerConfig, ServerHandle};
pub use storage::{
    FaultDirective, FaultInjector, FaultPlan, MemoryBackend, RecoveryReport, StorageBackend,
};
pub use store::{
    DurabilityBarrier, DurabilityTicket, WatchSubscription, WorkflowId, WorkflowStore,
    WATCH_QUEUE_CAP,
};
pub use wal::{open_data_dir, open_faulted_data_dir, FileBackend, PersistConfig};
