//! # wolves-service
//!
//! The concurrent serving layer of the WOLVES workspace: everything below
//! this crate is a pure in-memory theory library; this crate turns it into a
//! long-running process that serves validation, correction and provenance
//! requests to many clients at once.
//!
//! * [`store`] — a sharded [`store::WorkflowStore`]: workflows hashed over
//!   `N` independently locked shards, with composite-granular, epoch-keyed
//!   verdict caching, in-place `mutate` support and reachability-matrix
//!   reuse (mutations maintain the matrix incrementally).
//! * [`proto`] — the typed request/response protocol, framed as
//!   newline-delimited text reusing the native format of
//!   [`wolves_moml::textfmt`].
//! * [`server`] — a thread-pool TCP server (plain `std::net`, no runtime
//!   dependency) with graceful shutdown and per-shard serving counters; live
//!   correction timings feed [`wolves_core::estimate::EstimationRegistry`].
//! * [`client`] — a typed client plus the concurrent batch driver used by
//!   the `wolves request` CLI and the `service_bench` throughput benchmark.
//!
//! Quickstart (in-process; the CLI wraps exactly this):
//!
//! ```
//! use wolves_service::client::ServiceClient;
//! use wolves_service::server::{serve, ServerConfig};
//! use wolves_core::correct::Strategy;
//!
//! let server = serve(&ServerConfig::default()).unwrap();
//! let mut client = ServiceClient::connect(server.local_addr()).unwrap();
//! let fixture = wolves_repo::figure1();
//! let id = client.register(&fixture.spec, Some(&fixture.view)).unwrap();
//! assert!(!client.validate(id, None).unwrap().sound);
//! client.correct(id, Strategy::Strong).unwrap();
//! assert!(client.validate(id, None).unwrap().sound);
//! server.shutdown();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod error;
pub mod proto;
pub mod server;
pub mod store;

pub use client::{validate_throughput, BatchConfig, ServiceClient, ThroughputReport};
pub use error::ServiceError;
pub use proto::{MutateOp, Mutated, Request, Response, StatsReport, Verdict};
pub use server::{serve, ServerConfig, ServerHandle};
pub use store::{WorkflowId, WorkflowStore};
