//! Minimal readiness polling: the primitive under the evented server.
//!
//! No async runtime or polling crate is available to this workspace, so the
//! evented serving core sits directly on two Linux kernel interfaces,
//! declared here as the crate's only FFI:
//!
//! * **epoll** (`epoll_create1` / `epoll_ctl` / `epoll_wait`) — a
//!   level-triggered readiness set over any number of file descriptors;
//!   [`Poller::wait`] parks the event-loop thread until a registered socket
//!   is readable/writable (or a timeout passes).
//! * **eventfd** — a 64-bit counter fd used as the loop's [`Waker`]: worker
//!   threads finishing a response (and shutdown requests) bump the counter,
//!   which makes the fd readable and wakes `epoll_wait` without any
//!   loopback connection.
//!
//! Everything `unsafe` in the crate is confined to the small `sys` block at
//! the bottom of this file; the [`Poller`] / [`Waker`] wrappers expose a
//! safe, `std::io`-flavoured API. On non-Linux targets the module still
//! compiles but [`Poller::new`] reports `Unsupported` — the thread-pool
//! server remains the portable path.

use std::io;
#[cfg(target_os = "linux")]
use std::os::fd::{AsRawFd, RawFd};

/// What a registration wants to be woken for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interest {
    /// Readable readiness only (idle connections parked for requests).
    Read,
    /// Writable readiness only (flushing a backed-up response buffer).
    Write,
    /// Both directions at once.
    ReadWrite,
}

/// One readiness event returned by [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// The fd has bytes to read (or a pending accept).
    pub readable: bool,
    /// The fd can accept more outgoing bytes.
    pub writable: bool,
    /// The peer closed or the fd errored; the connection is finished.
    pub hangup: bool,
}

#[cfg(target_os = "linux")]
mod imp {
    use super::{sys, Event, Interest};
    use std::io;
    use std::os::fd::RawFd;

    /// A level-triggered epoll instance owning its descriptor.
    #[derive(Debug)]
    pub struct Poller {
        epfd: RawFd,
    }

    impl Poller {
        /// Creates an epoll instance (close-on-exec).
        ///
        /// # Errors
        /// Reports `epoll_create1` failures.
        pub fn new() -> io::Result<Poller> {
            let epfd = sys::epoll_create1_cloexec()?;
            Ok(Poller { epfd })
        }

        /// Registers `fd` under `token` with the given interest.
        ///
        /// # Errors
        /// Reports `epoll_ctl` failures (e.g. the fd is already registered).
        pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            sys::epoll_ctl(
                self.epfd,
                sys::EPOLL_CTL_ADD,
                fd,
                events_of(interest),
                token,
            )
        }

        /// Changes an existing registration's interest (same token or a new
        /// one).
        ///
        /// # Errors
        /// Reports `epoll_ctl` failures.
        pub fn rearm(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            sys::epoll_ctl(
                self.epfd,
                sys::EPOLL_CTL_MOD,
                fd,
                events_of(interest),
                token,
            )
        }

        /// Removes an fd from the readiness set. Dropping the socket also
        /// deregisters it implicitly; this keeps the set tidy when the fd
        /// lives on (watch hand-off).
        ///
        /// # Errors
        /// Reports `epoll_ctl` failures.
        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_DEL, fd, 0, 0)
        }

        /// Blocks until at least one registered fd is ready or `timeout_ms`
        /// elapses (`None` blocks indefinitely), filling `events`. Returns
        /// the number of events delivered (0 on timeout). `EINTR` is
        /// retried internally.
        ///
        /// # Errors
        /// Reports `epoll_wait` failures.
        pub fn wait(&self, events: &mut Vec<Event>, timeout_ms: Option<u64>) -> io::Result<usize> {
            events.clear();
            let timeout = timeout_ms.map_or(-1i32, |ms| i32::try_from(ms).unwrap_or(i32::MAX));
            let mut raw = [sys::EpollEvent::default(); 64];
            let n = loop {
                match sys::epoll_wait(self.epfd, &mut raw, timeout) {
                    Ok(n) => break n,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => return Err(e),
                }
            };
            for event in &raw[..n] {
                let bits = event.events;
                events.push(Event {
                    token: event.token,
                    readable: bits & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0,
                    writable: bits & sys::EPOLLOUT != 0,
                    hangup: bits & (sys::EPOLLERR | sys::EPOLLHUP | sys::EPOLLRDHUP) != 0,
                });
            }
            Ok(n)
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            sys::close(self.epfd);
        }
    }

    fn events_of(interest: Interest) -> u32 {
        let base = sys::EPOLLRDHUP;
        match interest {
            Interest::Read => base | sys::EPOLLIN,
            Interest::Write => base | sys::EPOLLOUT,
            Interest::ReadWrite => base | sys::EPOLLIN | sys::EPOLLOUT,
        }
    }

    /// An eventfd-backed wakeup handle: any thread may [`Waker::wake`] the
    /// event loop; the loop drains the counter with [`Waker::drain`] when
    /// its registration fires.
    #[derive(Debug)]
    pub struct Waker {
        fd: RawFd,
    }

    impl Waker {
        /// Creates a non-blocking, close-on-exec eventfd.
        ///
        /// # Errors
        /// Reports `eventfd` failures.
        pub fn new() -> io::Result<Waker> {
            Ok(Waker {
                fd: sys::eventfd_nonblocking()?,
            })
        }

        /// The raw fd to register with a [`Poller`] (readable when woken).
        #[must_use]
        pub fn raw_fd(&self) -> RawFd {
            self.fd
        }

        /// Makes the eventfd readable, waking a blocked [`Poller::wait`].
        /// Safe from any thread; failures are ignored (the counter
        /// saturating still leaves the fd readable).
        pub fn wake(&self) {
            sys::eventfd_write(self.fd, 1);
        }

        /// Consumes all pending wakeups; returns the summed counter (0 when
        /// the fd was not actually signalled).
        pub fn drain(&self) -> u64 {
            sys::eventfd_read(self.fd)
        }
    }

    impl Drop for Waker {
        fn drop(&mut self) {
            sys::close(self.fd);
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    use super::{Event, Interest};
    use std::io;

    /// Readiness polling is Linux-only; other platforms get the thread-pool
    /// server. This stub keeps the API compiling everywhere.
    #[derive(Debug)]
    pub struct Poller {}

    impl Poller {
        /// Always `Unsupported` off Linux.
        ///
        /// # Errors
        /// Always.
        pub fn new() -> io::Result<Poller> {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "readiness polling needs Linux epoll",
            ))
        }

        /// Unreachable (no instance can exist).
        ///
        /// # Errors
        /// Never returns.
        pub fn register(&self, _fd: i32, _token: u64, _interest: Interest) -> io::Result<()> {
            unreachable!("no Poller instance exists off Linux")
        }

        /// Unreachable (no instance can exist).
        ///
        /// # Errors
        /// Never returns.
        pub fn rearm(&self, _fd: i32, _token: u64, _interest: Interest) -> io::Result<()> {
            unreachable!("no Poller instance exists off Linux")
        }

        /// Unreachable (no instance can exist).
        ///
        /// # Errors
        /// Never returns.
        pub fn deregister(&self, _fd: i32) -> io::Result<()> {
            unreachable!("no Poller instance exists off Linux")
        }

        /// Unreachable (no instance can exist).
        ///
        /// # Errors
        /// Never returns.
        pub fn wait(
            &self,
            _events: &mut Vec<Event>,
            _timeout_ms: Option<u64>,
        ) -> io::Result<usize> {
            unreachable!("no Poller instance exists off Linux")
        }
    }

    /// Stub waker for non-Linux targets.
    #[derive(Debug)]
    pub struct Waker {}

    impl Waker {
        /// Always `Unsupported` off Linux.
        ///
        /// # Errors
        /// Always.
        pub fn new() -> io::Result<Waker> {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "eventfd wakeups need Linux",
            ))
        }

        /// Unreachable (no instance can exist).
        #[must_use]
        pub fn raw_fd(&self) -> i32 {
            unreachable!("no Waker instance exists off Linux")
        }

        /// Unreachable (no instance can exist).
        pub fn wake(&self) {}

        /// Unreachable (no instance can exist).
        pub fn drain(&self) -> u64 {
            0
        }
    }
}

pub use imp::{Poller, Waker};

/// `true` when this build can run the evented server (Linux epoll).
#[must_use]
pub fn readiness_supported() -> bool {
    cfg!(target_os = "linux")
}

/// Puts a socket into non-blocking mode without `std`'s per-type wrappers
/// (used on raw listener/stream fds the event loop owns).
///
/// # Errors
/// Reports `fcntl` failures.
#[cfg(target_os = "linux")]
pub fn set_nonblocking(fd: RawFd, nonblocking: bool) -> io::Result<()> {
    sys::set_nonblocking(fd, nonblocking)
}

/// Raw-fd view of any socket type, re-exported so the server does not need
/// its own platform conditionals.
#[cfg(target_os = "linux")]
pub fn raw_fd_of<T: AsRawFd>(socket: &T) -> RawFd {
    socket.as_raw_fd()
}

/// The FFI layer: the only `unsafe` code in the crate. Each wrapper
/// converts the C return convention (-1 + `errno`) into `io::Result` and
/// never hands raw pointers upward.
#[cfg(target_os = "linux")]
#[allow(unsafe_code)]
mod sys {
    use std::io;
    use std::os::fd::RawFd;
    use std::os::raw::{c_int, c_void};

    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EFD_CLOEXEC: c_int = 0o2000000;
    const EFD_NONBLOCK: c_int = 0o4000;
    const F_GETFL: c_int = 3;
    const F_SETFL: c_int = 4;
    const O_NONBLOCK: c_int = 0o4000;

    /// The kernel's `struct epoll_event`. On x86-64 the kernel ABI packs
    /// it (no padding between the 32-bit mask and the 64-bit data word).
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Debug, Clone, Copy, Default)]
    pub struct EpollEvent {
        pub events: u32,
        pub token: u64,
    }

    mod ffi {
        use super::EpollEvent;
        use std::os::raw::{c_int, c_uint, c_void};
        extern "C" {
            pub fn epoll_create1(flags: c_int) -> c_int;
            pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
            pub fn epoll_wait(
                epfd: c_int,
                events: *mut EpollEvent,
                maxevents: c_int,
                timeout: c_int,
            ) -> c_int;
            pub fn eventfd(initval: c_uint, flags: c_int) -> c_int;
            pub fn close(fd: c_int) -> c_int;
            pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
            pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
            pub fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
        }
    }

    fn check(ret: c_int) -> io::Result<c_int> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    pub fn epoll_create1_cloexec() -> io::Result<RawFd> {
        // SAFETY: epoll_create1 takes no pointers; the returned fd is owned
        // by the caller.
        check(unsafe { ffi::epoll_create1(EPOLL_CLOEXEC) })
    }

    pub fn epoll_ctl(epfd: RawFd, op: c_int, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut event = EpollEvent { events, token };
        // SAFETY: `event` outlives the call; the kernel copies it before
        // returning (and ignores it entirely for EPOLL_CTL_DEL).
        check(unsafe { ffi::epoll_ctl(epfd, op, fd, &mut event) }).map(|_| ())
    }

    pub fn epoll_wait(
        epfd: RawFd,
        events: &mut [EpollEvent],
        timeout_ms: i32,
    ) -> io::Result<usize> {
        let capacity = c_int::try_from(events.len()).unwrap_or(c_int::MAX);
        // SAFETY: the buffer pointer/capacity describe a live mutable
        // slice; the kernel writes at most `capacity` entries.
        let n = check(unsafe { ffi::epoll_wait(epfd, events.as_mut_ptr(), capacity, timeout_ms) })?;
        #[allow(clippy::cast_sign_loss)]
        Ok(n as usize)
    }

    pub fn eventfd_nonblocking() -> io::Result<RawFd> {
        // SAFETY: eventfd takes no pointers; the returned fd is owned by
        // the caller.
        check(unsafe { ffi::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })
    }

    pub fn eventfd_write(fd: RawFd, value: u64) {
        let bytes = value.to_ne_bytes();
        // SAFETY: the 8-byte buffer lives across the call; eventfd writes
        // are atomic at this size.
        let _ = unsafe { ffi::write(fd, bytes.as_ptr().cast::<c_void>(), bytes.len()) };
    }

    pub fn eventfd_read(fd: RawFd) -> u64 {
        let mut bytes = [0u8; 8];
        // SAFETY: the 8-byte buffer lives across the call and matches the
        // eventfd read size.
        let n = unsafe { ffi::read(fd, bytes.as_mut_ptr().cast::<c_void>(), bytes.len()) };
        if n == 8 {
            u64::from_ne_bytes(bytes)
        } else {
            0
        }
    }

    pub fn set_nonblocking(fd: RawFd, nonblocking: bool) -> io::Result<()> {
        // SAFETY: fcntl with F_GETFL/F_SETFL takes no pointers.
        let flags = check(unsafe { ffi::fcntl(fd, F_GETFL, 0) })?;
        let flags = if nonblocking {
            flags | O_NONBLOCK
        } else {
            flags & !O_NONBLOCK
        };
        // SAFETY: as above.
        check(unsafe { ffi::fcntl(fd, F_SETFL, flags) }).map(|_| ())
    }

    pub fn close(fd: RawFd) {
        // SAFETY: the owning wrapper calls this exactly once, on drop.
        let _ = unsafe { ffi::close(fd) };
    }
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn waker_wakes_a_blocked_poller() {
        let poller = Poller::new().unwrap();
        let waker = std::sync::Arc::new(Waker::new().unwrap());
        poller.register(waker.raw_fd(), 7, Interest::Read).unwrap();
        let mut events = Vec::new();
        // nothing pending: a short wait times out
        assert_eq!(poller.wait(&mut events, Some(10)).unwrap(), 0);
        let remote = std::sync::Arc::clone(&waker);
        let handle = std::thread::spawn(move || remote.wake());
        // the wake from the other thread unblocks the wait
        assert_eq!(poller.wait(&mut events, Some(2_000)).unwrap(), 1);
        handle.join().unwrap();
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
        assert!(waker.drain() >= 1);
        // drained: the level-triggered registration goes quiet again
        assert_eq!(poller.wait(&mut events, Some(10)).unwrap(), 0);
    }

    #[test]
    fn sockets_report_read_write_and_hangup_readiness() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let poller = Poller::new().unwrap();
        poller
            .register(raw_fd_of(&listener), 1, Interest::Read)
            .unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let mut events = Vec::new();
        // the pending accept makes the listener readable
        assert!(poller.wait(&mut events, Some(2_000)).unwrap() >= 1);
        assert!(events.iter().any(|e| e.token == 1 && e.readable));
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();
        poller
            .register(raw_fd_of(&server_side), 2, Interest::ReadWrite)
            .unwrap();
        // a fresh connection with empty buffers is writable
        assert!(poller.wait(&mut events, Some(2_000)).unwrap() >= 1);
        assert!(events.iter().any(|e| e.token == 2 && e.writable));
        // bytes from the client flip it readable
        poller
            .rearm(raw_fd_of(&server_side), 2, Interest::Read)
            .unwrap();
        client.write_all(b"ping\n").unwrap();
        assert!(poller.wait(&mut events, Some(2_000)).unwrap() >= 1);
        assert!(events.iter().any(|e| e.token == 2 && e.readable));
        let mut buf = [0u8; 8];
        let mut server_read = &server_side;
        assert_eq!(server_read.read(&mut buf).unwrap(), 5);
        // client hangs up: the event reports it
        drop(client);
        assert!(poller.wait(&mut events, Some(2_000)).unwrap() >= 1);
        assert!(events.iter().any(|e| e.token == 2 && e.hangup));
        poller.deregister(raw_fd_of(&server_side)).unwrap();
    }
}
