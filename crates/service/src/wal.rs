//! The file-backed storage backend: per-shard snapshot + write-ahead log.
//!
//! On-disk layout under the data directory:
//!
//! ```text
//! <root>/meta.txt               wolves-store\t<shard-count>
//! <root>/shard-<i>/
//!     snapshot-<g>.txt          full shard state when segment <g> started
//!     wal-<g>.log               records appended since (the active segment)
//! ```
//!
//! * **Appends** are one `write(2)` per record (strict mode batches them —
//!   see group commit below); either way a `kill -9` loses nothing
//!   that was acknowledged. [`PersistConfig::fsync_every`] bounds the
//!   power-loss window on top: `0` (default) leaves flushing to the OS and
//!   syncs at rotation/shutdown, `n` fsyncs every `n` records, `1` is
//!   strict fsync-per-record.
//! * **Group commit** (strict mode): with `fsync_every=1` neither the file
//!   write nor the fsync happens inside [`StorageBackend::append`] — the
//!   rendered record is *staged* in memory and the append returns a
//!   per-shard ticket. [`StorageBackend::wait_durable`] — called by the
//!   store after the shard's mutator mutex is released — runs a
//!   leader/follower protocol: the first waiter becomes leader, writes the
//!   whole staged batch with one `write(2)`, issues one `fsync` covering
//!   it, advances the shard's durability watermark and wakes the
//!   followers. Concurrent mutators therefore share one write+fsync
//!   instead of paying one each; staging (rather than writing eagerly and
//!   deferring only the fsync) matters because the kernel serialises
//!   `write(2)` against an in-flight `fsync(2)` on the same inode, which
//!   would cap how many appends can overlap a sync. Acknowledged-or-absent
//!   is unchanged: a staged record has by definition not been acknowledged
//!   (its `wait_durable` has not returned), and nothing is acknowledged
//!   before its covering fsync returns.
//! * **Rotation/compaction**: when the active segment exceeds
//!   [`PersistConfig::segment_bytes`] the store dumps the shard as
//!   `snapshot-<g+1>` (written to a `.tmp` file, fsynced, renamed), a fresh
//!   empty `wal-<g+1>.log` starts, and the previous generation is deleted —
//!   the log never grows without bound.
//! * **Recovery** picks the newest complete snapshot, replays the active
//!   segment, and *truncates* a torn final record (the expected result of a
//!   crash mid-append). A broken record that is **not** the tail — a valid
//!   `rec` header follows it — is corruption and recovery refuses to guess.

use std::fs::{self, File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex as StdMutex};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::error::ServiceError;
use crate::obs::{duration_ns, Histogram, StorageObservation};
use crate::storage::{
    fnv64, AppendOutcome, ShardJournal, SnapshotEntry, StorageBackend, WalRecord,
};

/// Configuration of a [`FileBackend`].
#[derive(Debug, Clone)]
pub struct PersistConfig {
    /// The data directory (created if absent).
    pub root: PathBuf,
    /// Number of store shards; must match the directory's recorded layout
    /// when reopening an existing data dir.
    pub shards: usize,
    /// The fsync policy. Every append is `write(2)`-complete before the
    /// request is acknowledged, so a **process** crash (`kill -9`) loses
    /// nothing at any setting; this knob bounds the **power-loss** window:
    ///
    /// * `0` (default) — no per-record fsync; the OS flushes in the
    ///   background and the backend syncs at snapshot rotation, graceful
    ///   shutdown and [`StorageBackend::sync`].
    /// * `n > 1` — additionally fsync inline after every `n` appended
    ///   records.
    /// * `1` — strict: every record is fsynced before it is acknowledged,
    ///   via the group-commit protocol ([`StorageBackend::wait_durable`]):
    ///   appends are staged in memory and the group leader flushes the
    ///   whole batch with one write + one fsync, so concurrent appends
    ///   share a single sync instead of paying one each.
    pub fsync_every: usize,
    /// Active-segment size that triggers snapshot + rotation.
    pub segment_bytes: u64,
}

impl PersistConfig {
    /// Defaults: 4 shards, OS-flush fsync policy, 4 MiB segments.
    #[must_use]
    pub fn new(root: impl Into<PathBuf>) -> Self {
        PersistConfig {
            root: root.into(),
            shards: 4,
            fsync_every: 0,
            segment_bytes: 4 * 1024 * 1024,
        }
    }
}

fn io_err(context: &str, e: &std::io::Error) -> ServiceError {
    ServiceError::Persistence(format!("{context}: {e}"))
}

fn corrupt(message: impl Into<String>) -> ServiceError {
    ServiceError::Recovery(message.into())
}

/// State of one shard's active WAL segment.
#[derive(Debug)]
struct ShardWal {
    dir: PathBuf,
    generation: u64,
    file: File,
    bytes: u64,
    pending_sync: usize,
    /// Monotone per-shard append counter — the group-commit ticket space.
    /// Never reset (rotation advances the durability watermark past it
    /// instead), so a ticket uniquely orders an append within its shard.
    appended: u64,
    /// Strict-mode (fsync_every=1) records staged in memory, not yet
    /// written to the segment file. The group-commit leader flushes the
    /// whole batch with one `write(2)` and then fsyncs — keeping per-append
    /// `write(2)` calls off the inode, which would otherwise serialise
    /// against the in-flight fsync (ext4 holds the inode lock for both).
    /// Staged records are never acknowledged (`wait_durable` has not
    /// returned), so kill-9 acked-or-absent is unchanged.
    staged: Vec<u8>,
}

/// Per-shard group-commit rendezvous: the durability watermark plus the
/// leader flag, guarded by a std mutex so followers can park on the
/// condvar. Lock order is WAL mutex → group mutex (never the reverse);
/// the leader holds *neither* across its fsync.
#[derive(Debug, Default)]
struct CommitGroup {
    state: StdMutex<GroupState>,
    arrivals: Condvar,
}

#[derive(Debug, Default)]
struct GroupState {
    /// Highest ticket known to be on stable storage.
    synced: u64,
    /// A leader's fsync is in flight; later arrivals wait instead of
    /// issuing their own.
    leader: bool,
}

impl ShardWal {
    fn wal_path(dir: &Path, generation: u64) -> PathBuf {
        dir.join(format!("wal-{generation}.log"))
    }

    fn snapshot_path(dir: &Path, generation: u64) -> PathBuf {
        dir.join(format!("snapshot-{generation}.txt"))
    }
}

/// Lock-free storage counters of a [`FileBackend`]: what
/// [`StorageBackend::observe`] reports. Recording rides the operations
/// that already hold the per-shard WAL mutex; the counters themselves are
/// relaxed atomics so scraping never contends with appends.
#[derive(Debug, Default)]
struct StorageTelemetry {
    append_bytes: AtomicU64,
    rotations: AtomicU64,
    append: Histogram,
    fsync: Histogram,
    compaction: Histogram,
    /// Records-per-leader-fsync distribution (raw counts, not durations).
    group_batch: Histogram,
    /// fsyncs absorbed by group commit: `sum(batch_size - 1)`.
    group_absorbed: AtomicU64,
}

/// The snapshot + write-ahead-log backend described in the module docs.
#[derive(Debug)]
pub struct FileBackend {
    config: PersistConfig,
    shards: Vec<Mutex<ShardWal>>,
    groups: Vec<CommitGroup>,
    journal: Mutex<Option<Vec<ShardJournal>>>,
    telemetry: StorageTelemetry,
}

impl FileBackend {
    /// Opens (or initialises) a data directory, loading the journal every
    /// shard will be recovered from.
    ///
    /// # Errors
    /// Reports I/O failures, a shard-count mismatch against the recorded
    /// layout, and corruption (snapshot or non-tail WAL damage).
    pub fn open(config: PersistConfig) -> Result<Self, ServiceError> {
        let config = PersistConfig {
            shards: config.shards.max(1),
            ..config
        };
        fs::create_dir_all(&config.root)
            .map_err(|e| io_err("cannot create the data directory", &e))?;
        check_meta(&config.root, config.shards)?;
        let mut shards = Vec::with_capacity(config.shards);
        let mut journals = Vec::with_capacity(config.shards);
        for index in 0..config.shards {
            let (wal, journal) = open_shard(&config.root.join(format!("shard-{index}")))?;
            shards.push(Mutex::new(wal));
            journals.push(journal);
        }
        let groups = (0..shards.len()).map(|_| CommitGroup::default()).collect();
        Ok(FileBackend {
            config,
            shards,
            groups,
            journal: Mutex::new(Some(journals)),
            telemetry: StorageTelemetry::default(),
        })
    }

    /// The shard count recorded in an existing data directory's meta file,
    /// `None` when the directory was never initialised. Lets the CLI adopt
    /// the on-disk layout instead of failing on a default mismatch.
    ///
    /// # Errors
    /// Reports unreadable or malformed meta files.
    pub fn recorded_shard_count(root: &Path) -> Result<Option<usize>, ServiceError> {
        let path = root.join("meta.txt");
        if !path.exists() {
            return Ok(None);
        }
        let content =
            fs::read_to_string(&path).map_err(|e| io_err("cannot read the meta file", &e))?;
        parse_meta(&content).map(Some)
    }

    /// The backend's configuration.
    #[must_use]
    pub fn config(&self) -> &PersistConfig {
        &self.config
    }
}

/// Opens (or initialises) a data directory with the default
/// [`PersistConfig`] and recovers a store from it — the shared entry point
/// of `wolves serve --data-dir` and `wolves recover`. An existing directory
/// pins its own recorded shard layout; `explicit_shards` overrides the
/// default of 4 for fresh directories (a conflicting explicit count on an
/// existing directory is refused by the meta check).
///
/// # Errors
/// Reports I/O failures, shard-count mismatches and journal corruption.
pub fn open_data_dir(
    root: &Path,
    explicit_shards: Option<usize>,
) -> Result<(crate::store::WorkflowStore, crate::storage::RecoveryReport), ServiceError> {
    open_faulted_data_dir(root, explicit_shards, crate::storage::FaultPlan::default())
}

/// [`open_data_dir`] with a scripted fault plan: the recovered store runs
/// on a [`crate::storage::FaultInjector`] wrapping the file backend, so
/// every append/snapshot/fsync flowing through executes the plan's
/// directives. An empty plan behaves exactly like [`open_data_dir`] (the
/// injector delegates everything). This is what `wolves serve
/// --fault-plan` plugs in — a chaos-testing entry point, not a production
/// mode.
///
/// # Errors
/// Reports I/O failures, shard-count mismatches and journal corruption.
pub fn open_faulted_data_dir(
    root: &Path,
    explicit_shards: Option<usize>,
    plan: crate::storage::FaultPlan,
) -> Result<(crate::store::WorkflowStore, crate::storage::RecoveryReport), ServiceError> {
    let recorded = FileBackend::recorded_shard_count(root)?;
    let shards = explicit_shards.or(recorded).unwrap_or(4);
    let backend = std::sync::Arc::new(FileBackend::open(PersistConfig {
        shards,
        ..PersistConfig::new(root)
    })?);
    if plan.directives.is_empty() {
        return crate::store::WorkflowStore::open(backend);
    }
    let faulted = crate::storage::FaultInjector::with_root(backend, plan, root.to_path_buf());
    crate::store::WorkflowStore::open(std::sync::Arc::new(faulted))
}

fn parse_meta(content: &str) -> Result<usize, ServiceError> {
    content
        .lines()
        .next()
        .and_then(|line| line.strip_prefix("wolves-store\t"))
        .and_then(|rest| rest.trim().parse::<usize>().ok())
        .filter(|&shards| shards > 0)
        .ok_or_else(|| corrupt("malformed meta file"))
}

fn check_meta(root: &Path, shards: usize) -> Result<(), ServiceError> {
    let path = root.join("meta.txt");
    if path.exists() {
        let content =
            fs::read_to_string(&path).map_err(|e| io_err("cannot read the meta file", &e))?;
        let recorded = parse_meta(&content)?;
        if recorded != shards {
            return Err(corrupt(format!(
                "data directory was written with {recorded} shard(s) but {shards} were \
                 requested; re-sharding is not supported — reopen with --shards {recorded}"
            )));
        }
        return Ok(());
    }
    let mut file = File::create(&path).map_err(|e| io_err("cannot write the meta file", &e))?;
    file.write_all(format!("wolves-store\t{shards}\n").as_bytes())
        .map_err(|e| io_err("cannot write the meta file", &e))?;
    file.sync_data()
        .map_err(|e| io_err("cannot sync the meta file", &e))?;
    Ok(())
}

/// Splits raw file bytes into complete lines (with their on-disk byte
/// lengths, newline included). Returns the lines, the per-line byte counts
/// and the number of trailing bytes that do not form a complete line.
fn split_lines(data: &[u8]) -> (Vec<String>, Vec<u64>, u64) {
    let mut lines = Vec::new();
    let mut sizes = Vec::new();
    let mut start = 0usize;
    for (index, byte) in data.iter().enumerate() {
        if *byte != b'\n' {
            continue;
        }
        match std::str::from_utf8(&data[start..index]) {
            Ok(line) => {
                lines.push(line.to_owned());
                sizes.push((index - start + 1) as u64);
                start = index + 1;
            }
            // a non-UTF-8 line cannot belong to any record: stop here and
            // let the record parser classify the remainder
            Err(_) => return (lines, sizes, (data.len() - start) as u64),
        }
    }
    (lines, sizes, (data.len() - start) as u64)
}

/// Parses a WAL file's bytes into records. A failure at the *tail* (no
/// further `rec` header follows) is a torn write: the records before it are
/// kept and the caller truncates the file to `clean_bytes`. A failure with
/// more records behind it is corruption.
fn parse_wal(data: &[u8], path: &Path) -> Result<(Vec<WalRecord>, u64, u64), ServiceError> {
    let (lines, sizes, trailing) = split_lines(data);
    let mut records = Vec::new();
    let mut pos = 0usize;
    let mut clean_bytes: u64 = 0;
    let mut torn_bytes = trailing;
    while pos < lines.len() {
        let before = pos;
        match WalRecord::from_lines(&lines, &mut pos) {
            Ok(record) => {
                records.push(record);
                clean_bytes += sizes[before..pos].iter().sum::<u64>();
            }
            Err(e) => {
                // classify over the RAW bytes, not the collected lines —
                // split_lines stops at a non-UTF-8 line, and an intact
                // record hiding behind one must still be seen here (it
                // proves the damage is mid-log, not a torn tail)
                let failed_header = sizes.get(before).copied().unwrap_or(0);
                let search_from = (clean_bytes + failed_header).min(data.len() as u64) as usize;
                let later_record = data[search_from..]
                    .windows(5)
                    .any(|window| window == b"\nrec\t");
                if later_record {
                    return Err(corrupt(format!(
                        "corrupt WAL record (not at the tail) in {}: {e}",
                        path.display()
                    )));
                }
                torn_bytes = (data.len() as u64) - clean_bytes;
                break;
            }
        }
    }
    if pos >= lines.len() && trailing > 0 {
        // every complete line parsed, but raw bytes remain (torn final line
        // or a non-UTF-8 stretch): same classification applies
        let search_from = clean_bytes.min(data.len() as u64) as usize;
        if data[search_from..]
            .windows(5)
            .any(|window| window == b"\nrec\t")
        {
            return Err(corrupt(format!(
                "corrupt WAL record (not at the tail) in {}",
                path.display()
            )));
        }
        torn_bytes = (data.len() as u64) - clean_bytes;
    }
    Ok((records, clean_bytes, torn_bytes))
}

/// Scans a shard directory, loads its journal and opens the active segment
/// for appending (truncating any torn tail first).
fn open_shard(dir: &Path) -> Result<(ShardWal, ShardJournal), ServiceError> {
    fs::create_dir_all(dir).map_err(|e| io_err("cannot create a shard directory", &e))?;
    let mut snapshot_gens: Vec<u64> = Vec::new();
    let mut wal_gens: Vec<u64> = Vec::new();
    let listing = fs::read_dir(dir).map_err(|e| io_err("cannot list a shard directory", &e))?;
    for dir_entry in listing {
        let dir_entry = dir_entry.map_err(|e| io_err("cannot list a shard directory", &e))?;
        let name = dir_entry.file_name().to_string_lossy().into_owned();
        if name.ends_with(".tmp") {
            // a snapshot that was never renamed: the rotation crashed before
            // the new generation became authoritative
            let _ = fs::remove_file(dir_entry.path());
        } else if let Some(gen) = name
            .strip_prefix("snapshot-")
            .and_then(|rest| rest.strip_suffix(".txt"))
            .and_then(|g| g.parse::<u64>().ok())
        {
            snapshot_gens.push(gen);
        } else if let Some(gen) = name
            .strip_prefix("wal-")
            .and_then(|rest| rest.strip_suffix(".log"))
            .and_then(|g| g.parse::<u64>().ok())
        {
            wal_gens.push(gen);
        }
    }
    let snapshot_gen = snapshot_gens.iter().copied().max();
    let generation = snapshot_gen
        .or_else(|| wal_gens.iter().copied().max())
        .unwrap_or(0);
    if let Some(&ahead) = wal_gens.iter().find(|&&g| g > generation) {
        return Err(corrupt(format!(
            "{}: wal generation {ahead} has no snapshot (newest snapshot: {snapshot_gen:?})",
            dir.display()
        )));
    }

    let entries = match snapshot_gen {
        Some(gen) => read_snapshot(&ShardWal::snapshot_path(dir, gen))?,
        None => Vec::new(),
    };

    let wal_path = ShardWal::wal_path(dir, generation);
    let (records, clean_bytes, torn_bytes) = if wal_path.exists() {
        let data = fs::read(&wal_path).map_err(|e| io_err("cannot read a WAL segment", &e))?;
        parse_wal(&data, &wal_path)?
    } else {
        (Vec::new(), 0, 0)
    };

    // truncate the torn tail (if any) and position for appending
    let mut file = OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(false)
        .open(&wal_path)
        .map_err(|e| io_err("cannot open a WAL segment", &e))?;
    file.set_len(clean_bytes)
        .map_err(|e| io_err("cannot truncate a torn WAL tail", &e))?;
    file.seek(SeekFrom::End(0))
        .map_err(|e| io_err("cannot seek a WAL segment", &e))?;

    // stale generations are garbage from an interrupted rotation
    for gen in snapshot_gens.iter().chain(wal_gens.iter()) {
        if *gen < generation {
            let _ = fs::remove_file(ShardWal::snapshot_path(dir, *gen));
            let _ = fs::remove_file(ShardWal::wal_path(dir, *gen));
        }
    }

    Ok((
        ShardWal {
            dir: dir.to_path_buf(),
            generation,
            file,
            bytes: clean_bytes,
            pending_sync: 0,
            appended: 0,
            staged: Vec::new(),
        },
        ShardJournal {
            entries,
            records,
            torn_bytes,
        },
    ))
}

fn read_snapshot(path: &Path) -> Result<Vec<SnapshotEntry>, ServiceError> {
    let content =
        fs::read_to_string(path).map_err(|e| io_err("cannot read a snapshot file", &e))?;
    let lines: Vec<String> = content.lines().map(str::to_owned).collect();
    let header = lines
        .first()
        .ok_or_else(|| corrupt(format!("{}: empty snapshot", path.display())))?;
    let fields: Vec<&str> = header.split('\t').collect();
    if fields.first() != Some(&"wolves-snapshot") || fields.len() != 3 {
        return Err(corrupt(format!(
            "{}: malformed snapshot header '{header}'",
            path.display()
        )));
    }
    let count: usize = fields[2]
        .parse()
        .map_err(|_| corrupt(format!("{}: bad entry count", path.display())))?;
    let trailer = lines
        .last()
        .and_then(|line| line.strip_prefix("snapshot-end\t"))
        .and_then(|sum| u64::from_str_radix(sum, 16).ok())
        .ok_or_else(|| {
            corrupt(format!(
                "{}: snapshot is incomplete (missing trailer)",
                path.display()
            ))
        })?;
    let body = &lines[..lines.len() - 1];
    if fnv64(&body.join("\n")) != trailer {
        return Err(corrupt(format!(
            "{}: snapshot checksum mismatch",
            path.display()
        )));
    }
    let mut pos = 1usize;
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        entries.push(SnapshotEntry::from_lines(body, &mut pos)?);
    }
    if pos != body.len() {
        return Err(corrupt(format!(
            "{}: trailing garbage after the last entry",
            path.display()
        )));
    }
    Ok(entries)
}

fn render_snapshot(generation: u64, entries: &[SnapshotEntry]) -> String {
    let mut lines = vec![format!("wolves-snapshot\t{generation}\t{}", entries.len())];
    for entry in entries {
        lines.extend(entry.to_lines());
    }
    let checksum = fnv64(&lines.join("\n"));
    let mut out = lines.join("\n");
    out.push('\n');
    out.push_str(&format!("snapshot-end\t{checksum:016x}\n"));
    out
}

fn sync_dir(dir: &Path) {
    // best effort: directory fsync pins the renames; not all platforms
    // support opening a directory, so failures are ignored
    if let Ok(handle) = File::open(dir) {
        let _ = handle.sync_all();
    }
}

/// Write the shard's staged strict-mode records to the segment file in one
/// `write(2)`. On a short write the file is truncated back to the last
/// clean offset and the staged bytes are **kept**: no record has been
/// acknowledged, the stream stays gap-free, and a later leader (or `sync`)
/// retries the whole batch.
fn flush_staged(wal: &mut ShardWal) -> Result<(), ServiceError> {
    if wal.staged.is_empty() {
        return Ok(());
    }
    if let Err(e) = wal.file.write_all(&wal.staged) {
        let _ = wal.file.set_len(wal.bytes);
        let _ = wal.file.seek(SeekFrom::End(0));
        return Err(io_err("cannot flush staged WAL records", &e));
    }
    wal.bytes += wal.staged.len() as u64;
    wal.staged.clear();
    Ok(())
}

impl StorageBackend for FileBackend {
    fn durable(&self) -> bool {
        true
    }

    fn shard_count(&self) -> usize {
        self.config.shards
    }

    fn append(&self, shard: usize, record: &WalRecord) -> Result<AppendOutcome, ServiceError> {
        let start = Instant::now();
        let mut wal = self.shards[shard].lock();
        let mut block = record.to_lines().join("\n");
        block.push('\n');
        let mut fsync_ns = 0u64;
        let mut ticket = 0u64;
        if self.config.fsync_every == 1 {
            // strict mode defers both the file write and the fsync to the
            // group-commit protocol: the record is staged in memory, the
            // caller waits on this ticket in `wait_durable` after dropping
            // the shard's mutator mutex, and the group leader writes the
            // whole staged batch and fsyncs once for everyone. Staging (not
            // just deferring the fsync) is what lets appends overlap an
            // in-flight fsync: a per-append `write(2)` would serialise
            // against `fsync(2)` on the same inode.
            wal.staged.extend_from_slice(block.as_bytes());
            wal.appended += 1;
            ticket = wal.appended;
        } else {
            if let Err(e) = wal.file.write_all(block.as_bytes()) {
                // a short write (ENOSPC, I/O error) may have left a partial
                // record behind; truncate back to the last good offset so a
                // later successful append cannot create a mid-log fragment
                // that would make the whole segment unrecoverable
                let _ = wal.file.set_len(wal.bytes);
                let _ = wal.file.seek(SeekFrom::End(0));
                return Err(io_err("cannot append a WAL record", &e));
            }
            wal.bytes += block.len() as u64;
            wal.appended += 1;
            if self.config.fsync_every > 1 {
                wal.pending_sync += 1;
                if wal.pending_sync >= self.config.fsync_every {
                    let sync_start = Instant::now();
                    wal.file
                        .sync_data()
                        .map_err(|e| io_err("cannot sync the WAL", &e))?;
                    fsync_ns = duration_ns(sync_start.elapsed());
                    self.telemetry.fsync.record_ns(fsync_ns);
                    wal.pending_sync = 0;
                }
            }
        }
        self.telemetry
            .append_bytes
            .fetch_add(block.len() as u64, Ordering::Relaxed);
        self.telemetry
            .append
            .record_ns(duration_ns(start.elapsed()).saturating_sub(fsync_ns));
        Ok(AppendOutcome {
            wants_snapshot: wal.bytes + wal.staged.len() as u64 >= self.config.segment_bytes,
            fsync_ns,
            ticket,
        })
    }

    fn wait_durable(&self, shard: usize, ticket: u64) -> Result<u64, ServiceError> {
        if ticket == 0 || self.config.fsync_every != 1 {
            return Ok(0);
        }
        let start = Instant::now();
        let group = &self.groups[shard];
        let mut state = group.state.lock().expect("commit group lock poisoned");
        loop {
            if state.synced >= ticket {
                return Ok(duration_ns(start.elapsed()));
            }
            if state.leader {
                // follower: a leader fsync is in flight; park until it
                // lands (or fails and a new leader is needed)
                state = group
                    .arrivals
                    .wait(state)
                    .expect("commit group lock poisoned");
                continue;
            }
            state.leader = true;
            drop(state);
            // leader: flush every staged record with one write, capture the
            // high-water mark and a second handle to the active segment
            // under the WAL mutex, then fsync with NO lock held — appends
            // keep staging into the next group while the disk works. The
            // leader then *keeps leading* while fresh records are staged
            // (bounded rounds): starting the follow-up fsync directly keeps
            // the disk pipeline full instead of waiting for a parked
            // follower to be scheduled and elect itself — on a loaded
            // machine that scheduling gap, not the fsync, caps throughput.
            let mut own_round_error: Option<ServiceError> = None;
            for round in 0.. {
                // adaptive commit delay: while fresh records keep being
                // staged, hold the fsync so one flush covers them all —
                // deferred-durability pipelines can stage many records per
                // waiter, so a short wait multiplies the batch. A solo
                // mutator pays one probe (~50–100µs against a ~0.5ms
                // fsync) and the round cap bounds the added latency.
                let mut seen = self.shards[shard].lock().staged.len();
                for _ in 0..16 {
                    std::thread::sleep(Duration::from_micros(50));
                    let now = self.shards[shard].lock().staged.len();
                    if now <= seen {
                        break;
                    }
                    seen = now;
                }
                let synced_to = (|| {
                    let (file, high) = {
                        let mut wal = self.shards[shard].lock();
                        flush_staged(&mut wal)?;
                        let file = wal
                            .file
                            .try_clone()
                            .map_err(|e| io_err("cannot clone the WAL handle", &e))?;
                        (file, wal.appended)
                    };
                    let sync_start = Instant::now();
                    file.sync_data()
                        .map_err(|e| io_err("cannot sync the WAL", &e))?;
                    self.telemetry
                        .fsync
                        .record_ns(duration_ns(sync_start.elapsed()));
                    Ok(high)
                })();
                match synced_to {
                    Ok(high) => {
                        let mut state = group.state.lock().expect("commit group lock poisoned");
                        let batch = high.saturating_sub(state.synced);
                        if batch > 0 {
                            self.telemetry.group_batch.record_ns(batch);
                            self.telemetry
                                .group_absorbed
                                .fetch_add(batch - 1, Ordering::Relaxed);
                        }
                        state.synced = state.synced.max(high);
                        group.arrivals.notify_all();
                    }
                    Err(e) => {
                        // round 0 covered our own ticket; a failure in a
                        // later continuation round belongs to the records
                        // staged since — their waiters re-elect a leader
                        // (staged bytes were kept) and see their own error
                        if round == 0 {
                            own_round_error = Some(e);
                        }
                        break;
                    }
                }
                // continuation: more records staged while we fsynced? The
                // round cap bounds how long our own (already-durable)
                // request is held up syncing for others.
                if round >= 8 || self.shards[shard].lock().staged.is_empty() {
                    break;
                }
            }
            {
                let mut state = group.state.lock().expect("commit group lock poisoned");
                state.leader = false;
                // wake any waiter that arrived after our last staged-empty
                // check (or whose round failed) so it elects itself leader
                // instead of parking behind a stale flag
                group.arrivals.notify_all();
            }
            return match own_round_error {
                // the first round's `high` was read after our own append,
                // so our ticket is covered
                None => Ok(duration_ns(start.elapsed())),
                // our own covering fsync failed: the record may be written
                // but is not yet power-loss durable
                Some(e) => Err(e),
            };
        }
    }

    fn write_snapshot(&self, shard: usize, entries: &[SnapshotEntry]) -> Result<(), ServiceError> {
        let start = Instant::now();
        let mut wal = self.shards[shard].lock();
        let old_generation = wal.generation;
        let generation = old_generation + 1;
        let content = render_snapshot(generation, entries);
        let final_path = ShardWal::snapshot_path(&wal.dir, generation);
        let tmp_path = final_path.with_extension("txt.tmp");
        {
            let mut tmp =
                File::create(&tmp_path).map_err(|e| io_err("cannot write a snapshot", &e))?;
            tmp.write_all(content.as_bytes())
                .map_err(|e| io_err("cannot write a snapshot", &e))?;
            tmp.sync_data()
                .map_err(|e| io_err("cannot sync a snapshot", &e))?;
        }
        fs::rename(&tmp_path, &final_path).map_err(|e| io_err("cannot activate a snapshot", &e))?;
        let file = File::create(ShardWal::wal_path(&wal.dir, generation))
            .map_err(|e| io_err("cannot start a fresh WAL segment", &e))?;
        sync_dir(&wal.dir);
        // compaction: the previous generation is now unreachable
        let _ = fs::remove_file(ShardWal::snapshot_path(&wal.dir, old_generation));
        let _ = fs::remove_file(ShardWal::wal_path(&wal.dir, old_generation));
        wal.generation = generation;
        wal.file = file;
        wal.bytes = 0;
        wal.pending_sync = 0;
        // staged strict-mode records' effects are already captured by the
        // snapshot entries (staging happens under the same store mutator
        // mutex, in order), and the snapshot is fsynced — drop them
        wal.staged.clear();
        // the fsynced snapshot now covers every record of the old segment:
        // advance the durability watermark so group-commit waiters whose
        // records were compacted away stop waiting for a WAL fsync
        {
            let mut state = self.groups[shard]
                .state
                .lock()
                .expect("commit group lock poisoned");
            state.synced = state.synced.max(wal.appended);
        }
        self.groups[shard].arrivals.notify_all();
        self.telemetry.rotations.fetch_add(1, Ordering::Relaxed);
        self.telemetry
            .compaction
            .record_ns(duration_ns(start.elapsed()));
        Ok(())
    }

    fn take_journal(&self) -> Result<Vec<ShardJournal>, ServiceError> {
        let taken = self.journal.lock().take();
        Ok(taken.unwrap_or_else(|| {
            (0..self.config.shards)
                .map(|_| ShardJournal::default())
                .collect()
        }))
    }

    fn sync(&self) -> Result<(), ServiceError> {
        for (index, shard) in self.shards.iter().enumerate() {
            let mut wal = shard.lock();
            flush_staged(&mut wal)?;
            let start = Instant::now();
            wal.file
                .sync_data()
                .map_err(|e| io_err("cannot sync the WAL", &e))?;
            self.telemetry.fsync.record(start.elapsed());
            wal.pending_sync = 0;
            // a full sync is a (degenerate) group commit: release any
            // parked group-commit waiters on this shard
            {
                let mut state = self.groups[index]
                    .state
                    .lock()
                    .expect("commit group lock poisoned");
                state.synced = state.synced.max(wal.appended);
            }
            self.groups[index].arrivals.notify_all();
        }
        Ok(())
    }

    fn observe(&self) -> StorageObservation {
        StorageObservation {
            append_bytes: self.telemetry.append_bytes.load(Ordering::Relaxed),
            rotations: self.telemetry.rotations.load(Ordering::Relaxed),
            append: self.telemetry.append.snapshot(),
            fsync: self.telemetry.fsync.snapshot(),
            compaction: self.telemetry.compaction.snapshot(),
            group_commit_batch: self.telemetry.group_batch.snapshot(),
            group_commit_absorbed: self.telemetry.group_absorbed.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::MutateOp;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_root(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("wolves-wal-{tag}-{}-{unique}", std::process::id()))
    }

    fn mutate_record(id: u64, epoch: u64) -> WalRecord {
        WalRecord::Mutate {
            id,
            epoch,
            op: MutateOp::AddTask {
                name: format!("task-{epoch}"),
            },
            deltas: Vec::new(),
        }
    }

    #[test]
    fn fresh_dir_initialises_and_appends_survive_reopen() {
        let root = temp_root("fresh");
        let config = PersistConfig {
            shards: 2,
            ..PersistConfig::new(&root)
        };
        let backend = FileBackend::open(config.clone()).unwrap();
        assert!(backend.durable());
        assert_eq!(backend.shard_count(), 2);
        // the fresh journal is empty
        let journal = backend.take_journal().unwrap();
        assert_eq!(journal.len(), 2);
        assert!(journal
            .iter()
            .all(|j| j.entries.is_empty() && j.records.is_empty()));
        // a second take is empty too (the journal is consumed once)
        assert!(backend.take_journal().unwrap()[0].records.is_empty());

        backend.append(0, &mutate_record(1, 1)).unwrap();
        backend.append(0, &mutate_record(1, 2)).unwrap();
        backend.append(1, &mutate_record(2, 1)).unwrap();
        backend.sync().unwrap();
        drop(backend);

        let reopened = FileBackend::open(config).unwrap();
        let journal = reopened.take_journal().unwrap();
        assert_eq!(journal[0].records.len(), 2);
        assert_eq!(journal[1].records.len(), 1);
        assert_eq!(journal[0].records[1], mutate_record(1, 2));
        assert_eq!(journal[0].torn_bytes, 0);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn torn_tails_are_truncated_but_mid_log_corruption_is_fatal() {
        let root = temp_root("torn");
        let config = PersistConfig {
            shards: 1,
            ..PersistConfig::new(&root)
        };
        let backend = FileBackend::open(config.clone()).unwrap();
        backend.append(0, &mutate_record(1, 1)).unwrap();
        backend.append(0, &mutate_record(1, 2)).unwrap();
        backend.sync().unwrap();
        drop(backend);

        // simulate a crash mid-append: garbage without a frame at the tail
        let wal_path = root.join("shard-0").join("wal-0.log");
        let mut file = OpenOptions::new().append(true).open(&wal_path).unwrap();
        file.write_all(b"rec\tmutate\t1\t3\t1\nmutate\t1\tadd-ta")
            .unwrap();
        drop(file);
        let clean_len = {
            let backend = FileBackend::open(config.clone()).unwrap();
            let journal = backend.take_journal().unwrap();
            assert_eq!(journal[0].records.len(), 2, "the torn record is dropped");
            assert!(journal[0].torn_bytes > 0);
            drop(backend);
            fs::metadata(&wal_path).unwrap().len()
        };
        // the torn tail was truncated away on open
        let reopened = FileBackend::open(config.clone()).unwrap();
        assert_eq!(fs::metadata(&wal_path).unwrap().len(), clean_len);
        assert_eq!(reopened.take_journal().unwrap()[0].torn_bytes, 0);
        drop(reopened);

        // corrupt the FIRST record while a later one is intact: fatal
        let content = fs::read_to_string(&wal_path).unwrap();
        let corrupted = content.replacen("task-1", "task-X", 1);
        fs::write(&wal_path, corrupted).unwrap();
        let err = FileBackend::open(config).unwrap_err();
        assert!(matches!(err, ServiceError::Recovery(_)), "{err}");
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn non_utf8_damage_mid_log_is_corruption_not_a_torn_tail() {
        let root = temp_root("non-utf8");
        let config = PersistConfig {
            shards: 1,
            ..PersistConfig::new(&root)
        };
        let backend = FileBackend::open(config.clone()).unwrap();
        backend.append(0, &mutate_record(1, 1)).unwrap();
        backend.append(0, &mutate_record(1, 2)).unwrap();
        backend.sync().unwrap();
        drop(backend);

        let wal_path = root.join("shard-0").join("wal-0.log");
        let mut data = fs::read(&wal_path).unwrap();
        // flip a byte of the FIRST record to an invalid UTF-8 value; the
        // intact second record behind it proves the damage is mid-log, so
        // recovery must refuse instead of truncating acknowledged records
        let offset = data
            .windows(6)
            .position(|w| w == b"task-1")
            .expect("first record payload");
        data[offset] = 0xFF;
        fs::write(&wal_path, &data).unwrap();
        let err = FileBackend::open(config.clone()).unwrap_err();
        assert!(matches!(err, ServiceError::Recovery(_)), "{err}");

        // the same invalid byte in the FINAL record is a torn tail
        let backend = {
            let mut data = fs::read(&wal_path).unwrap();
            let offset = data
                .windows(5)
                .position(|w| w == b"ask-1")
                .expect("damaged first record payload");
            data[offset - 1] = b't'; // heal record 1
            let offset = data
                .windows(6)
                .position(|w| w == b"task-2")
                .expect("second record payload");
            data[offset] = 0xFF;
            fs::write(&wal_path, &data).unwrap();
            FileBackend::open(config).unwrap()
        };
        let journal = backend.take_journal().unwrap();
        assert_eq!(journal[0].records.len(), 1);
        assert!(journal[0].torn_bytes > 0);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn rotation_compacts_to_a_snapshot_and_reopen_reads_it() {
        let root = temp_root("rotate");
        let config = PersistConfig {
            shards: 1,
            segment_bytes: 1, // every append asks for a snapshot
            ..PersistConfig::new(&root)
        };
        let backend = FileBackend::open(config.clone()).unwrap();
        let outcome = backend.append(0, &mutate_record(1, 1)).unwrap();
        assert!(outcome.wants_snapshot);
        let fixture = wolves_repo::figure1();
        let entry = SnapshotEntry {
            id: 1,
            epoch: 1,
            current: 0,
            seq: 1,
            spec_lines: wolves_workflow::persist::spec_to_lines(&fixture.spec),
            views: vec![wolves_workflow::persist::view_to_lines(&fixture.view)],
        };
        backend
            .write_snapshot(0, std::slice::from_ref(&entry))
            .unwrap();
        // the old generation is gone, the new one is live and empty
        let shard_dir = root.join("shard-0");
        assert!(!shard_dir.join("wal-0.log").exists());
        assert!(shard_dir.join("wal-1.log").exists());
        assert!(shard_dir.join("snapshot-1.txt").exists());
        backend.append(0, &mutate_record(1, 2)).unwrap();
        backend.sync().unwrap();
        drop(backend);

        let reopened = FileBackend::open(config.clone()).unwrap();
        let journal = reopened.take_journal().unwrap();
        assert_eq!(journal[0].entries, vec![entry]);
        assert_eq!(journal[0].records, vec![mutate_record(1, 2)]);
        drop(reopened);

        // a snapshot with a flipped byte refuses to load
        let snapshot_path = shard_dir.join("snapshot-1.txt");
        let content = fs::read_to_string(&snapshot_path).unwrap();
        fs::write(
            &snapshot_path,
            content.replacen("figure-1b", "figure-XX", 1),
        )
        .unwrap();
        assert!(matches!(
            FileBackend::open(config).unwrap_err(),
            ServiceError::Recovery(_)
        ));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn shard_count_mismatch_is_refused_and_recorded_count_is_readable() {
        let root = temp_root("meta");
        assert_eq!(FileBackend::recorded_shard_count(&root).unwrap(), None);
        let backend = FileBackend::open(PersistConfig {
            shards: 3,
            ..PersistConfig::new(&root)
        })
        .unwrap();
        drop(backend);
        assert_eq!(FileBackend::recorded_shard_count(&root).unwrap(), Some(3));
        let err = FileBackend::open(PersistConfig {
            shards: 5,
            ..PersistConfig::new(&root)
        })
        .unwrap_err();
        assert!(err.to_string().contains("--shards 3"), "{err}");
        fs::remove_dir_all(&root).unwrap();
    }
}
