//! Server-side telemetry: lock-free latency histograms, commit-stage
//! spans, storage observation and the bounded slow-request ring.
//!
//! The recording primitive is a log₂-bucketed [`Histogram`]: 65 relaxed
//! `AtomicU64` buckets (one per power of two of nanoseconds, plus a zero
//! bucket), a running sum and an exact max. Recording is three relaxed
//! atomic operations — no locks, no allocation — so it can sit on the
//! validate hot path. Bucket `i ≥ 1` holds durations in
//! `[2^(i-1), 2^i - 1]` ns, so any quantile read back from the buckets is
//! the upper bound of the bucket holding the exact sample: it brackets the
//! true value within one bucket's relative error (`exact ≤ estimate <
//! 2·exact`). Histograms are mergeable — per-shard recorders are summed
//! into one [`HistogramSnapshot`] at scrape time, never on the hot path.
//!
//! On top of the primitive sit the store's three registries:
//!
//! * per-verb request latency ([`VerbTimers`], one per shard, merged at
//!   scrape time) over the [`Verb`] taxonomy;
//! * per-commit-stage latency ([`StageTimers`], store-global) over the
//!   [`Stage`] taxonomy — where a mutation spends its time, answerable
//!   from a running server;
//! * the [`SlowRing`] keeping the worst-N requests with their stage
//!   breakdown (dumped by the `metrics slow` protocol verb).
//!
//! [`StorageObservation`] is the storage backend's side of the picture
//! (WAL append bytes and durations, fsync timings, segment rotations,
//! compaction wall time), surfaced through
//! [`crate::storage::StorageBackend::observe`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use parking_lot::Mutex;

/// Number of log₂ buckets of a [`Histogram`]: bucket 0 holds exact zeros,
/// bucket `i ≥ 1` holds `[2^(i-1), 2^i - 1]` nanoseconds, up to bucket 64
/// (which tops out at `u64::MAX`).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Capacity of the slow-request ring: the worst `N` requests by total
/// duration are retained with their stage breakdown.
pub const SLOW_RING_CAP: usize = 16;

/// Saturating nanosecond count of a [`Duration`].
#[must_use]
pub fn duration_ns(elapsed: Duration) -> u64 {
    u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX)
}

/// Bucket index of a nanosecond duration: `0` for zero, otherwise the bit
/// length of the value (`64 - leading_zeros`).
#[inline]
fn bucket_of(ns: u64) -> usize {
    (64 - ns.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `index`, in nanoseconds.
#[must_use]
pub fn bucket_upper(index: usize) -> u64 {
    match index {
        0 => 0,
        64.. => u64::MAX,
        _ => (1u64 << index) - 1,
    }
}

/// Formats a nanosecond count as a seconds decimal (the unit Prometheus
/// exposition uses), trimmed of trailing zeros.
#[must_use]
pub(crate) fn seconds(ns: u64) -> String {
    let mut text = format!("{}.{:09}", ns / 1_000_000_000, ns % 1_000_000_000);
    while text.ends_with('0') {
        text.pop();
    }
    if text.ends_with('.') {
        text.push('0');
    }
    text
}

/// A lock-free log₂-bucketed latency histogram.
///
/// All counters are relaxed atomics: they are statistics, not
/// synchronisation. Recording never allocates and never takes a lock;
/// reading produces a consistent-enough [`HistogramSnapshot`] (bucket
/// counts may trail the sum by in-flight recordings, which quantile
/// derivation tolerates).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one duration in nanoseconds — three relaxed atomic
    /// operations, no allocation.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        self.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(ns, Ordering::Relaxed);
        self.max.fetch_max(ns, Ordering::Relaxed);
    }

    /// Records one elapsed [`Duration`].
    #[inline]
    pub fn record(&self, elapsed: Duration) {
        self.record_ns(duration_ns(elapsed));
    }

    /// A point-in-time copy of the counters, suitable for merging and
    /// quantile derivation.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: std::array::from_fn(|index| self.buckets[index].load(Ordering::Relaxed)),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time, mergeable copy of a [`Histogram`]'s counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`bucket_upper`] for bucket bounds).
    pub counts: [u64; HISTOGRAM_BUCKETS],
    /// Sum of all recorded durations, in nanoseconds.
    pub sum: u64,
    /// Largest recorded duration, in nanoseconds (exact, not bucketed).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            counts: [0; HISTOGRAM_BUCKETS],
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Total number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// `true` when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Folds another snapshot into this one (shard merge).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The `q`-quantile (`0 < q ≤ 1`) in nanoseconds: the upper bound of
    /// the bucket holding the sample of rank `ceil(q · count)`. Brackets
    /// the exact sorted-reference quantile within one bucket's relative
    /// error. Returns 0 on an empty histogram.
    #[must_use]
    #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
    #[allow(clippy::cast_sign_loss)]
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (index, &bucket) in self.counts.iter().enumerate() {
            seen += bucket;
            if seen >= rank {
                return bucket_upper(index);
            }
        }
        self.max
    }

    /// The median, in nanoseconds.
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// The 90th percentile, in nanoseconds.
    #[must_use]
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// The 99th percentile, in nanoseconds.
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Appends this histogram as a Prometheus-style cumulative-bucket
    /// series (`name_bucket{…,le="…"}`, `name_sum`, `name_count`) to
    /// `out`. `le` bounds and the sum are in seconds, per exposition
    /// convention; empty buckets are elided (the series stays cumulative).
    pub fn write_exposition(&self, out: &mut String, name: &str, labels: &[(&str, &str)]) {
        use std::fmt::Write as _;
        let mut cumulative = 0u64;
        for (index, &bucket) in self.counts.iter().enumerate() {
            if bucket == 0 {
                continue;
            }
            cumulative += bucket;
            let _ = writeln!(
                out,
                "{name}_bucket{} {cumulative}",
                label_block(labels, Some(&seconds(bucket_upper(index))))
            );
        }
        let _ = writeln!(
            out,
            "{name}_bucket{} {}",
            label_block(labels, Some("+Inf")),
            self.count()
        );
        let plain = label_block(labels, None);
        let _ = writeln!(out, "{name}_sum{plain} {}", seconds(self.sum));
        let _ = writeln!(out, "{name}_count{plain} {}", self.count());
    }

    /// [`HistogramSnapshot::write_exposition`] for histograms whose samples
    /// are plain values, not nanoseconds (e.g. group-commit batch sizes):
    /// `le` bounds and the sum stay raw integers instead of being scaled to
    /// seconds.
    pub fn write_exposition_raw(&self, out: &mut String, name: &str, labels: &[(&str, &str)]) {
        use std::fmt::Write as _;
        let mut cumulative = 0u64;
        for (index, &bucket) in self.counts.iter().enumerate() {
            if bucket == 0 {
                continue;
            }
            cumulative += bucket;
            let _ = writeln!(
                out,
                "{name}_bucket{} {cumulative}",
                label_block(labels, Some(&bucket_upper(index).to_string()))
            );
        }
        let _ = writeln!(
            out,
            "{name}_bucket{} {}",
            label_block(labels, Some("+Inf")),
            self.count()
        );
        let plain = label_block(labels, None);
        let _ = writeln!(out, "{name}_sum{plain} {}", self.sum);
        let _ = writeln!(out, "{name}_count{plain} {}", self.count());
    }
}

/// Renders a `{k="v",…}` label block, optionally with a trailing `le`
/// label; empty when there are no labels at all.
fn label_block(labels: &[(&str, &str)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut block = String::from("{");
    for (index, (key, value)) in labels.iter().enumerate() {
        if index > 0 {
            block.push(',');
        }
        block.push_str(key);
        block.push_str("=\"");
        block.push_str(value);
        block.push('"');
    }
    if let Some(le) = le {
        if !labels.is_empty() {
            block.push(',');
        }
        block.push_str("le=\"");
        block.push_str(le);
        block.push('"');
    }
    block.push('}');
    block
}

/// Appends one plain counter/gauge sample line to a Prometheus exposition.
pub fn write_sample(out: &mut String, name: &str, labels: &[(&str, &str)], value: u64) {
    use std::fmt::Write as _;
    let _ = writeln!(out, "{name}{} {value}", label_block(labels, None));
}

/// The request-verb taxonomy every request latency is recorded under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verb {
    /// `register` — workflow registration.
    Register,
    /// `validate` — view-soundness checks (the read hot path).
    Validate,
    /// `correct` — view corrections.
    Correct,
    /// `provenance` — provenance queries.
    Provenance,
    /// `mutate` — spec/view edits (the write path).
    Mutate,
    /// `export` — textfmt export.
    Export,
    /// watch fan-out of one committed event to a shard's subscribers.
    WatchFanout,
}

/// Every [`Verb`], in display order.
pub const VERBS: [Verb; 7] = [
    Verb::Register,
    Verb::Validate,
    Verb::Correct,
    Verb::Provenance,
    Verb::Mutate,
    Verb::Export,
    Verb::WatchFanout,
];

impl Verb {
    /// The verb's exposition label.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Verb::Register => "register",
            Verb::Validate => "validate",
            Verb::Correct => "correct",
            Verb::Provenance => "provenance",
            Verb::Mutate => "mutate",
            Verb::Export => "export",
            Verb::WatchFanout => "watch_fanout",
        }
    }

    const fn index(self) -> usize {
        self as usize
    }
}

/// The commit-stage taxonomy of the write path (plus the read path's
/// cache-lookup/compute split): where a request spends its time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Payload/frame parsing (register payloads, request frames).
    Parse,
    /// Verdict-cache lookup, re-tagging and invalidation scans.
    CacheLookup,
    /// Soundness/reachability computation and spec/view edits.
    Compute,
    /// WAL append (excluding any fsync it triggered).
    WalAppend,
    /// fsync of WAL data, when the policy triggered one.
    Fsync,
    /// Atomic snapshot publish (the commit point).
    SnapshotPublish,
    /// Watch fan-out to subscribers after the commit.
    WatchFanout,
}

/// Every [`Stage`], in pipeline order.
pub const STAGES: [Stage; 7] = [
    Stage::Parse,
    Stage::CacheLookup,
    Stage::Compute,
    Stage::WalAppend,
    Stage::Fsync,
    Stage::SnapshotPublish,
    Stage::WatchFanout,
];

impl Stage {
    /// The stage's exposition label.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::CacheLookup => "cache_lookup",
            Stage::Compute => "compute",
            Stage::WalAppend => "wal_append",
            Stage::Fsync => "fsync",
            Stage::SnapshotPublish => "snapshot_publish",
            Stage::WatchFanout => "watch_fanout",
        }
    }

    const fn index(self) -> usize {
        self as usize
    }
}

/// Per-verb latency histograms — one set per shard, merged at scrape time.
#[derive(Debug, Default)]
pub struct VerbTimers {
    timers: [Histogram; VERBS.len()],
}

impl VerbTimers {
    /// Records one request duration under its verb.
    #[inline]
    pub fn record(&self, verb: Verb, ns: u64) {
        self.timers[verb.index()].record_ns(ns);
    }

    /// Snapshot of one verb's histogram.
    #[must_use]
    pub fn snapshot(&self, verb: Verb) -> HistogramSnapshot {
        self.timers[verb.index()].snapshot()
    }
}

/// Per-commit-stage latency histograms (store-global).
#[derive(Debug, Default)]
pub struct StageTimers {
    timers: [Histogram; STAGES.len()],
}

impl StageTimers {
    /// Records one stage duration.
    #[inline]
    pub fn record(&self, stage: Stage, ns: u64) {
        self.timers[stage.index()].record_ns(ns);
    }

    /// Snapshot of one stage's histogram.
    #[must_use]
    pub fn snapshot(&self, stage: Stage) -> HistogramSnapshot {
        self.timers[stage.index()].snapshot()
    }
}

/// One retained slow request: the verb, total duration and per-stage
/// breakdown.
#[derive(Debug, Clone)]
pub struct SlowRequest {
    /// The request verb (exposition label).
    pub verb: &'static str,
    /// The workflow the request addressed, when it addressed one.
    pub workflow: Option<u64>,
    /// End-to-end duration, in nanoseconds.
    pub total_ns: u64,
    /// Stage breakdown `(stage label, nanoseconds)`, in pipeline order.
    pub spans: Vec<(&'static str, u64)>,
    /// Admission order (monotone): breaks duration ties, newest wins.
    pub seq: u64,
}

/// Bounded worst-N request ring. The hot path pays one relaxed atomic load
/// (the admission floor — the smallest retained total once the ring is
/// full); only requests slower than the floor take the lock.
#[derive(Debug)]
pub struct SlowRing {
    capacity: usize,
    floor: AtomicU64,
    seq: AtomicU64,
    entries: Mutex<Vec<SlowRequest>>,
}

impl SlowRing {
    /// Creates a ring retaining the worst `capacity` requests.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        SlowRing {
            capacity: capacity.max(1),
            floor: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            entries: Mutex::new(Vec::new()),
        }
    }

    /// Offers one finished request; it is retained iff it beats the
    /// current worst-N floor. `spans` is borrowed — the ring allocates
    /// only when the request is actually admitted.
    pub fn offer(&self, verb: Verb, workflow: Option<u64>, total_ns: u64, spans: &[(Stage, u64)]) {
        if total_ns <= self.floor.load(Ordering::Relaxed) {
            return;
        }
        let mut entries = self.entries.lock();
        let request = SlowRequest {
            verb: verb.name(),
            workflow,
            total_ns,
            spans: spans
                .iter()
                .map(|&(stage, ns)| (stage.name(), ns))
                .collect(),
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
        };
        if entries.len() < self.capacity {
            entries.push(request);
        } else if let Some(index) = entries
            .iter()
            .enumerate()
            .min_by_key(|(_, entry)| (entry.total_ns, entry.seq))
            .map(|(index, _)| index)
        {
            if entries[index].total_ns < total_ns {
                entries[index] = request;
            }
        }
        let floor = if entries.len() == self.capacity {
            entries
                .iter()
                .map(|entry| entry.total_ns)
                .min()
                .unwrap_or(0)
        } else {
            0
        };
        self.floor.store(floor, Ordering::Relaxed);
    }

    /// The retained requests, worst first (ties broken newest first).
    #[must_use]
    pub fn worst(&self) -> Vec<SlowRequest> {
        let mut entries = self.entries.lock().clone();
        entries.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then_with(|| b.seq.cmp(&a.seq)));
        entries
    }

    /// The ring's capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// Error counters keyed by the typed wire kind (`degraded`,
/// `overloaded`, `unknown-workflow`, …) — the `wolves_errors_total{kind}`
/// series. Keys are the `&'static str` kinds from
/// [`crate::error::ServiceError::wire_kind`], so recording never
/// allocates a key; the map only grows to the number of distinct kinds.
#[derive(Debug, Default)]
pub struct ErrorCounters {
    counts: Mutex<std::collections::BTreeMap<&'static str, u64>>,
}

impl ErrorCounters {
    /// Bumps the counter for one error kind.
    pub fn record(&self, kind: &'static str) {
        *self.counts.lock().entry(kind).or_insert(0) += 1;
    }

    /// A point-in-time copy of all counters, sorted by kind.
    #[must_use]
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        self.counts
            .lock()
            .iter()
            .map(|(&kind, &count)| (kind, count))
            .collect()
    }

    /// Total errors recorded across all kinds.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.lock().values().sum()
    }
}

/// Store-global telemetry: the commit-stage histograms, the slow-request
/// ring, error counters and recovery timing. Per-verb histograms live per
/// shard (in the shard metrics) and are merged at scrape time.
#[derive(Debug)]
pub struct Telemetry {
    stages: StageTimers,
    slow: SlowRing,
    errors: ErrorCounters,
    recovery_replay_ns: AtomicU64,
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl Telemetry {
    /// Creates an empty telemetry set with the default slow-ring capacity.
    #[must_use]
    pub fn new() -> Self {
        Telemetry {
            stages: StageTimers::default(),
            slow: SlowRing::new(SLOW_RING_CAP),
            errors: ErrorCounters::default(),
            recovery_replay_ns: AtomicU64::new(0),
        }
    }

    /// The error counters (the `wolves_errors_total{kind}` series).
    #[must_use]
    pub fn errors(&self) -> &ErrorCounters {
        &self.errors
    }

    /// Records one commit-stage duration.
    #[inline]
    pub fn stage(&self, stage: Stage, ns: u64) {
        self.stages.record(stage, ns);
    }

    /// Records a whole stage breakdown (skipping zero spans keeps the
    /// stage histograms meaningful — a stage that did not run is absent,
    /// not a zero sample).
    pub fn record_spans(&self, spans: &[(Stage, u64)]) {
        for &(stage, ns) in spans {
            if ns > 0 {
                self.stages.record(stage, ns);
            }
        }
    }

    /// Snapshot of one commit stage's histogram.
    #[must_use]
    pub fn stage_snapshot(&self, stage: Stage) -> HistogramSnapshot {
        self.stages.snapshot(stage)
    }

    /// Offers one finished request to the slow-request ring.
    pub fn offer_slow(
        &self,
        verb: Verb,
        workflow: Option<u64>,
        total_ns: u64,
        spans: &[(Stage, u64)],
    ) {
        self.slow.offer(verb, workflow, total_ns, spans);
    }

    /// The slow-request ring.
    #[must_use]
    pub fn slow(&self) -> &SlowRing {
        &self.slow
    }

    /// Records the recovery-replay wall time observed at store open.
    pub fn set_recovery_replay_ns(&self, ns: u64) {
        self.recovery_replay_ns.store(ns, Ordering::Relaxed);
    }

    /// Recovery-replay wall time of the last store open, in nanoseconds
    /// (0 when the store opened on an empty or in-memory backend).
    #[must_use]
    pub fn recovery_replay_ns(&self) -> u64 {
        self.recovery_replay_ns.load(Ordering::Relaxed)
    }

    /// Renders the slow-request ring as the `metrics slow` dump: a header
    /// line, then one TAB-separated line per retained request, worst
    /// first, with `stage=ns` spans separated by `;`.
    #[must_use]
    pub fn slow_text(&self) -> String {
        use std::fmt::Write as _;
        let worst = self.slow.worst();
        let mut out = format!("slow-requests\t{}\t{}\n", worst.len(), self.slow.capacity());
        for request in worst {
            let spans: Vec<String> = request
                .spans
                .iter()
                .map(|(stage, ns)| format!("{stage}={ns}"))
                .collect();
            let workflow = request
                .workflow
                .map_or_else(|| "-".to_owned(), |id| id.to_string());
            let _ = writeln!(
                out,
                "slow\t{}\t{}\t{workflow}\t{}",
                request.verb,
                request.total_ns,
                spans.join(";")
            );
        }
        out
    }
}

/// What a storage backend has observed since it was opened: WAL append
/// volume and latency, fsync latency, segment rotations, compaction
/// (snapshot-write) wall time and group-commit behaviour. The default
/// (memory backend) is all-empty.
#[derive(Debug, Clone, Default)]
pub struct StorageObservation {
    /// Total bytes appended to write-ahead logs.
    pub append_bytes: u64,
    /// Segment rotations (snapshot writes that truncated a log).
    pub rotations: u64,
    /// WAL append durations (excluding triggered fsyncs).
    pub append: HistogramSnapshot,
    /// fsync durations.
    pub fsync: HistogramSnapshot,
    /// Compaction (snapshot write + rotation) durations.
    pub compaction: HistogramSnapshot,
    /// Group-commit batch sizes: how many appended records each leader
    /// fsync covered (raw counts, not nanoseconds — expose with
    /// [`HistogramSnapshot::write_exposition_raw`]). Empty outside strict
    /// (`fsync_every=1`) mode.
    pub group_commit_batch: HistogramSnapshot,
    /// fsyncs the group-commit protocol absorbed: appends that rode a
    /// leader's fsync instead of issuing their own (`sum(batch - 1)`).
    pub group_commit_absorbed: u64,
}

/// Gauges and counters owned by the serving layer (not the store): open
/// connections and event-loop wakeups. The server updates them from its
/// accept/event paths; the store stitches them into the `metrics`
/// exposition when a server attaches them via
/// [`crate::store::WorkflowStore::attach_server_gauges`]. All counters are
/// relaxed atomics — statistics, not synchronisation.
#[derive(Debug, Default)]
pub struct ServerGauges {
    open_connections: AtomicU64,
    accepted_total: AtomicU64,
    wakeups: AtomicU64,
    pipelined_batches: AtomicU64,
}

impl ServerGauges {
    /// Notes one accepted connection.
    pub fn connection_opened(&self) {
        self.open_connections.fetch_add(1, Ordering::Relaxed);
        self.accepted_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Notes one closed connection.
    pub fn connection_closed(&self) {
        self.open_connections.fetch_sub(1, Ordering::Relaxed);
    }

    /// Notes one event-loop wakeup (a completed `epoll_wait`).
    pub fn wakeup(&self) {
        self.wakeups.fetch_add(1, Ordering::Relaxed);
    }

    /// Notes one multi-frame (pipelined) dispatch batch.
    pub fn pipelined_batch(&self) {
        self.pipelined_batches.fetch_add(1, Ordering::Relaxed);
    }

    /// Currently open connections.
    #[must_use]
    pub fn open_connections(&self) -> u64 {
        self.open_connections.load(Ordering::Relaxed)
    }

    /// Connections accepted since the server started.
    #[must_use]
    pub fn accepted_total(&self) -> u64 {
        self.accepted_total.load(Ordering::Relaxed)
    }

    /// Event-loop wakeups since the server started.
    #[must_use]
    pub fn wakeups(&self) -> u64 {
        self.wakeups.load(Ordering::Relaxed)
    }

    /// Dispatch batches that carried more than one pipelined frame.
    #[must_use]
    pub fn pipelined_batches(&self) -> u64 {
        self.pipelined_batches.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indexing_covers_the_edges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
        // every value lands in the bucket whose bounds contain it
        for ns in [1u64, 2, 3, 7, 8, 1023, 1024, 123_456_789] {
            let bucket = bucket_of(ns);
            assert!(ns <= bucket_upper(bucket));
            assert!(bucket == 1 || ns > bucket_upper(bucket - 1));
        }
    }

    #[test]
    fn quantiles_bracket_the_exact_reference() {
        let histogram = Histogram::new();
        let samples: Vec<u64> = (1..=1000).map(|i| i * 37).collect();
        for &sample in &samples {
            histogram.record_ns(sample);
        }
        let snapshot = histogram.snapshot();
        assert_eq!(snapshot.count(), 1000);
        assert_eq!(snapshot.sum, samples.iter().sum::<u64>());
        assert_eq!(snapshot.max, 37_000);
        let mut sorted = samples;
        sorted.sort_unstable();
        for q in [0.5, 0.9, 0.99, 1.0] {
            #[allow(clippy::cast_precision_loss, clippy::cast_sign_loss)]
            #[allow(clippy::cast_possible_truncation)]
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            let estimate = snapshot.quantile(q);
            assert!(estimate >= exact, "q={q}: {estimate} < exact {exact}");
            assert!(
                estimate < exact * 2,
                "q={q}: {estimate} not within one bucket of {exact}"
            );
        }
    }

    #[test]
    fn snapshots_merge_by_summation() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record_ns(10);
        a.record_ns(1000);
        b.record_ns(100);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.count(), 3);
        assert_eq!(merged.sum, 1110);
        assert_eq!(merged.max, 1000);
        assert_eq!(merged.p50(), bucket_upper(bucket_of(100)));
    }

    #[test]
    fn exposition_buckets_are_cumulative_and_labelled_in_seconds() {
        let histogram = Histogram::new();
        histogram.record_ns(1_000); // bucket upper 1023 ns
        histogram.record_ns(1_000);
        histogram.record_ns(2_000_000); // bucket upper ~2.097 ms
        let mut out = String::new();
        histogram
            .snapshot()
            .write_exposition(&mut out, "x", &[("verb", "validate")]);
        assert!(out.contains("x_bucket{verb=\"validate\",le=\"0.000001023\"} 2"));
        assert!(out.contains("x_bucket{verb=\"validate\",le=\"0.002097151\"} 3"));
        assert!(out.contains("x_bucket{verb=\"validate\",le=\"+Inf\"} 3"));
        assert!(out.contains("x_sum{verb=\"validate\"} 0.002002"));
        assert!(out.contains("x_count{verb=\"validate\"} 3"));
        // unlabelled series carry no label block at all
        let mut plain = String::new();
        histogram.snapshot().write_exposition(&mut plain, "y", &[]);
        assert!(plain.contains("y_count 3"));
        let mut sample = String::new();
        write_sample(&mut sample, "z_total", &[], 7);
        assert_eq!(sample, "z_total 7\n");
    }

    #[test]
    fn slow_ring_retains_the_worst_n() {
        let ring = SlowRing::new(3);
        for ns in [10u64, 50, 20, 40, 30, 60] {
            ring.offer(Verb::Validate, Some(1), ns, &[(Stage::Compute, ns)]);
        }
        let worst: Vec<u64> = ring.worst().iter().map(|r| r.total_ns).collect();
        assert_eq!(worst, vec![60, 50, 40]);
        // the floor filters anything at or below the retained minimum
        ring.offer(Verb::Validate, None, 40, &[]);
        assert_eq!(ring.worst().len(), 3);
        assert_eq!(ring.worst()[2].total_ns, 40);
        // spans and verb labels survive into the retained entry
        let top = &ring.worst()[0];
        assert_eq!(top.verb, "validate");
        assert_eq!(top.spans, vec![("compute", 60)]);
    }

    #[test]
    fn slow_text_lists_worst_first_with_stage_breakdown() {
        let telemetry = Telemetry::new();
        telemetry.offer_slow(
            Verb::Mutate,
            Some(3),
            5_000,
            &[(Stage::Compute, 1_000), (Stage::WalAppend, 4_000)],
        );
        telemetry.offer_slow(Verb::Validate, None, 9_000, &[(Stage::Compute, 9_000)]);
        let text = telemetry.slow_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], format!("slow-requests\t2\t{SLOW_RING_CAP}"));
        assert_eq!(lines[1], "slow\tvalidate\t9000\t-\tcompute=9000");
        assert_eq!(
            lines[2],
            "slow\tmutate\t5000\t3\tcompute=1000;wal_append=4000"
        );
    }

    #[test]
    fn verb_and_stage_labels_are_unique() {
        let verb_names: std::collections::BTreeSet<_> = VERBS.iter().map(|v| v.name()).collect();
        assert_eq!(verb_names.len(), VERBS.len());
        let stage_names: std::collections::BTreeSet<_> = STAGES.iter().map(|s| s.name()).collect();
        assert_eq!(stage_names.len(), STAGES.len());
    }

    #[test]
    fn error_counters_accumulate_per_kind() {
        let counters = ErrorCounters::default();
        counters.record("degraded");
        counters.record("overloaded");
        counters.record("degraded");
        assert_eq!(
            counters.snapshot(),
            vec![("degraded", 2), ("overloaded", 1)]
        );
        assert_eq!(counters.total(), 3);
    }

    #[test]
    fn seconds_formatting_trims_trailing_zeros() {
        assert_eq!(seconds(0), "0.0");
        assert_eq!(seconds(1), "0.000000001");
        assert_eq!(seconds(1_500_000_000), "1.5");
        assert_eq!(seconds(2_000_000_000), "2.0");
    }
}
