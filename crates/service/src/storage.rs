//! The storage backend abstraction of the serving layer.
//!
//! [`crate::store::WorkflowStore`] talks to durable storage exclusively
//! through the [`StorageBackend`] trait:
//!
//! * [`MemoryBackend`] — the zero-cost default: every call is a no-op, the
//!   store behaves exactly as the purely in-memory store always has.
//! * [`crate::wal::FileBackend`] — a per-shard **snapshot + write-ahead
//!   log**: every registration, mutation and correction is appended as one
//!   framed [`WalRecord`] before the request is acknowledged; when a shard's
//!   log grows past the segment threshold the store writes a full
//!   [`SnapshotEntry`] dump of the shard and the log restarts empty
//!   (compaction by rotation).
//!
//! Recovery replays a [`ShardJournal`] — the newest complete snapshot plus
//! the records of the active log segment — through the exact same
//! `WorkflowSpec::apply` / view-edit paths live requests use, so a recovered
//! store serves bit-identical answers (same epochs, same composite-id and
//! task-id assignment, same cache keying) as the store that crashed.
//!
//! All on-disk formats are line-based: payload lines come from
//! `wolves_workflow::persist` (slot-exact spec/view serialisation) and
//! `crate::proto` (mutation ops), framed with explicit line counts and an
//! FNV-1a checksum so a torn tail is distinguishable from mid-log
//! corruption.

use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use wolves_workflow::persist::{delta_from_line, delta_to_line};
use wolves_workflow::SpecDelta;

use crate::error::ServiceError;
use crate::proto::{MutateOp, Request};
use crate::store::WorkflowId;

/// FNV-1a 64-bit hash of a string — the checksum of WAL records and
/// snapshot files (no external dependency, stable across platforms).
#[must_use]
pub fn fnv64(text: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in text.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn corrupt(message: impl Into<String>) -> ServiceError {
    ServiceError::Recovery(message.into())
}

/// One workflow's full durable state: what a snapshot stores per entry and
/// what a `register` WAL record carries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotEntry {
    /// The workflow id (preserved across restarts).
    pub id: u64,
    /// The store-level mutation epoch of the entry.
    pub epoch: u64,
    /// Index of the current view version.
    pub current: usize,
    /// Change-sequence number (mutations and corrections); watch streams
    /// resume gap-free from it after recovery.
    pub seq: u64,
    /// Slot-exact spec serialisation (`wolves_workflow::persist`).
    pub spec_lines: Vec<String>,
    /// Slot-exact serialisation of every retained view version, in version
    /// order.
    pub views: Vec<Vec<String>>,
}

impl SnapshotEntry {
    /// Flattens the entry into framed lines (`entry` header, spec lines,
    /// one `view-block` header per view).
    #[must_use]
    pub fn to_lines(&self) -> Vec<String> {
        let mut lines = Vec::with_capacity(1 + self.spec_lines.len());
        lines.push(format!(
            "entry\t{}\t{}\t{}\t{}\t{}\t{}",
            self.id,
            self.epoch,
            self.current,
            self.seq,
            self.spec_lines.len(),
            self.views.len()
        ));
        lines.extend(self.spec_lines.iter().cloned());
        for view in &self.views {
            lines.push(format!("view-block\t{}", view.len()));
            lines.extend(view.iter().cloned());
        }
        lines
    }

    /// Parses one entry starting at `lines[*pos]`, advancing the cursor.
    ///
    /// # Errors
    /// Reports malformed headers and truncated blocks.
    pub fn from_lines(lines: &[String], pos: &mut usize) -> Result<Self, ServiceError> {
        let header = lines
            .get(*pos)
            .ok_or_else(|| corrupt("missing entry header"))?;
        let fields: Vec<&str> = header.split('\t').collect();
        if fields.first() != Some(&"entry") || fields.len() != 7 {
            return Err(corrupt(format!("malformed entry header '{header}'")));
        }
        let number = |index: usize, what: &str| -> Result<u64, ServiceError> {
            fields[index]
                .parse::<u64>()
                .map_err(|_| corrupt(format!("invalid {what} '{}'", fields[index])))
        };
        let id = number(1, "workflow id")?;
        let epoch = number(2, "epoch")?;
        let current = number(3, "current version")? as usize;
        let seq = number(4, "sequence number")?;
        let spec_count = number(5, "spec line count")? as usize;
        let view_count = number(6, "view count")? as usize;
        *pos += 1;
        let take = |pos: &mut usize, count: usize| -> Result<Vec<String>, ServiceError> {
            let slice = lines
                .get(*pos..*pos + count)
                .ok_or_else(|| corrupt("entry block truncated"))?;
            *pos += count;
            Ok(slice.to_vec())
        };
        let spec_lines = take(pos, spec_count)?;
        let mut views = Vec::with_capacity(view_count);
        for _ in 0..view_count {
            let header = lines
                .get(*pos)
                .ok_or_else(|| corrupt("missing view-block header"))?;
            let count = header
                .strip_prefix("view-block\t")
                .and_then(|n| n.parse::<usize>().ok())
                .ok_or_else(|| corrupt(format!("malformed view-block header '{header}'")))?;
            *pos += 1;
            views.push(take(pos, count)?);
        }
        Ok(SnapshotEntry {
            id,
            epoch,
            current,
            seq,
            spec_lines,
            views,
        })
    }
}

/// One durable operation appended to a shard's write-ahead log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A workflow was registered; the payload is its full snapshot entry
    /// (so replay installs exactly the registered state, preserved ids
    /// included).
    Register {
        /// The assigned workflow id.
        id: u64,
        /// The registered state.
        entry: SnapshotEntry,
    },
    /// A mutation was applied. Replay routes the op through the live
    /// `mutate` path and cross-checks the resulting epoch and spec deltas
    /// against the logged ones.
    Mutate {
        /// The mutated workflow.
        id: u64,
        /// The entry's epoch *after* the mutation.
        epoch: u64,
        /// The applied op (serialised through the wire grammar of
        /// [`crate::proto`]).
        op: MutateOp,
        /// The typed spec deltas the op produced, consumed from the spec's
        /// bounded delta log before eviction could drop them.
        deltas: Vec<SpecDelta>,
    },
    /// A correction appended a new view version and made it current.
    Correct {
        /// The corrected workflow.
        id: u64,
        /// The index the corrected view was appended at.
        version: usize,
        /// Slot-exact serialisation of the corrected view.
        view_lines: Vec<String>,
    },
}

impl WalRecord {
    /// The workflow the record concerns.
    #[must_use]
    pub fn workflow(&self) -> u64 {
        match self {
            WalRecord::Register { id, .. }
            | WalRecord::Mutate { id, .. }
            | WalRecord::Correct { id, .. } => *id,
        }
    }

    /// Serialises the record as a framed block: a `rec` header, the payload
    /// lines, and an `end` line carrying the FNV-1a checksum of everything
    /// before it.
    #[must_use]
    pub fn to_lines(&self) -> Vec<String> {
        let (header, payload) = match self {
            WalRecord::Register { id, entry } => {
                let payload = entry.to_lines();
                (format!("rec\tregister\t{id}\t{}", payload.len()), payload)
            }
            WalRecord::Mutate {
                id,
                epoch,
                op,
                deltas,
            } => {
                let mut payload = Request::Mutate {
                    workflow: WorkflowId(*id),
                    op: op.clone(),
                    // CAS guards are request-time only: the logged record is
                    // the committed outcome, so the WAL format is unchanged
                    expect: None,
                }
                .to_lines();
                payload.extend(deltas.iter().map(delta_to_line));
                (
                    format!("rec\tmutate\t{id}\t{epoch}\t{}", payload.len()),
                    payload,
                )
            }
            WalRecord::Correct {
                id,
                version,
                view_lines,
            } => (
                format!("rec\tcorrect\t{id}\t{version}\t{}", view_lines.len()),
                view_lines.clone(),
            ),
        };
        let mut lines = Vec::with_capacity(payload.len() + 2);
        lines.push(header);
        lines.extend(payload);
        let checksum = fnv64(&lines.join("\n"));
        lines.push(format!("end\t{checksum:016x}"));
        lines
    }

    /// Parses one record starting at `lines[*pos]`, advancing the cursor.
    ///
    /// # Errors
    /// Reports malformed headers, truncated payloads and checksum
    /// mismatches — the caller decides whether a failure at the tail of a
    /// log is a torn write or corruption.
    pub fn from_lines(lines: &[String], pos: &mut usize) -> Result<Self, ServiceError> {
        let start = *pos;
        let header = lines
            .get(start)
            .ok_or_else(|| corrupt("missing record header"))?;
        let fields: Vec<&str> = header.split('\t').collect();
        if fields.first() != Some(&"rec") || fields.len() < 4 {
            return Err(corrupt(format!("malformed record header '{header}'")));
        }
        let count: usize = fields[fields.len() - 1]
            .parse()
            .map_err(|_| corrupt(format!("invalid line count in '{header}'")))?;
        let payload = lines
            .get(start + 1..start + 1 + count)
            .ok_or_else(|| corrupt("record payload truncated"))?;
        let end = lines
            .get(start + 1 + count)
            .ok_or_else(|| corrupt("record missing its end line"))?;
        let recorded = end
            .strip_prefix("end\t")
            .and_then(|sum| u64::from_str_radix(sum, 16).ok())
            .ok_or_else(|| corrupt(format!("malformed end line '{end}'")))?;
        let framed = lines[start..start + 1 + count].join("\n");
        if fnv64(&framed) != recorded {
            return Err(corrupt("record checksum mismatch"));
        }
        let parse_u64 = |field: &str, what: &str| -> Result<u64, ServiceError> {
            field
                .parse::<u64>()
                .map_err(|_| corrupt(format!("invalid {what} '{field}'")))
        };
        let record = match fields[1] {
            "register" => {
                let id = parse_u64(fields[2], "workflow id")?;
                let mut inner = 0usize;
                let entry = SnapshotEntry::from_lines(payload, &mut inner)?;
                if inner != payload.len() || entry.id != id {
                    return Err(corrupt("register record payload inconsistent"));
                }
                WalRecord::Register { id, entry }
            }
            "mutate" => {
                if fields.len() != 5 {
                    return Err(corrupt(format!("malformed mutate header '{header}'")));
                }
                let id = parse_u64(fields[2], "workflow id")?;
                let epoch = parse_u64(fields[3], "epoch")?;
                let op_line = payload
                    .first()
                    .ok_or_else(|| corrupt("mutate record missing its op line"))?;
                let request = Request::from_lines(std::slice::from_ref(op_line))
                    .map_err(|e| corrupt(format!("bad mutate op: {e}")))?;
                let Request::Mutate {
                    workflow,
                    op,
                    expect: _,
                } = request
                else {
                    return Err(corrupt(format!("not a mutate op: '{op_line}'")));
                };
                if workflow.0 != id {
                    return Err(corrupt("mutate record id mismatch"));
                }
                let deltas = payload[1..]
                    .iter()
                    .map(|line| {
                        delta_from_line(line).map_err(|e| corrupt(format!("bad delta: {e}")))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                WalRecord::Mutate {
                    id,
                    epoch,
                    op,
                    deltas,
                }
            }
            "correct" => {
                if fields.len() != 5 {
                    return Err(corrupt(format!("malformed correct header '{header}'")));
                }
                WalRecord::Correct {
                    id: parse_u64(fields[2], "workflow id")?,
                    version: parse_u64(fields[3], "version")? as usize,
                    view_lines: payload.to_vec(),
                }
            }
            other => return Err(corrupt(format!("unknown record kind '{other}'"))),
        };
        *pos = start + 2 + count;
        Ok(record)
    }
}

/// What [`StorageBackend::append`] tells the store about the shard's log.
#[derive(Debug, Clone, Copy, Default)]
pub struct AppendOutcome {
    /// The active segment crossed the size threshold: the store should take
    /// a snapshot of the shard (which rotates the segment and truncates the
    /// log).
    pub wants_snapshot: bool,
    /// Nanoseconds this append spent in fsync (0 when the fsync policy did
    /// not trigger one) — lets the store split the commit-stage span into
    /// its WAL-append and fsync parts.
    pub fsync_ns: u64,
    /// Group-commit ticket: a per-shard monotone sequence number of this
    /// append when the backend defers durability to
    /// [`StorageBackend::wait_durable`] (strict `fsync_every=1` mode on the
    /// file backend). 0 means the append needs no durability wait — it was
    /// already synced inline, or the policy leaves syncing to the OS.
    pub ticket: u64,
}

/// The recovered state of one shard: the newest complete snapshot plus the
/// records of the active log segment, in append order.
#[derive(Debug, Default)]
pub struct ShardJournal {
    /// Entries of the newest complete snapshot.
    pub entries: Vec<SnapshotEntry>,
    /// WAL records appended after that snapshot.
    pub records: Vec<WalRecord>,
    /// Bytes of torn trailing garbage that were discarded (a crash mid
    /// append); 0 for a cleanly closed log.
    pub torn_bytes: u64,
}

/// Summary of a completed recovery, surfaced by `wolves recover` and the
/// `--data-dir` server start-up banner.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Shards recovered.
    pub shards: usize,
    /// Workflows restored (snapshot entries + replayed registrations).
    pub workflows: usize,
    /// Workflows restored from snapshots.
    pub snapshot_entries: usize,
    /// WAL records replayed.
    pub replayed_records: usize,
    /// Shards whose log ended in a torn record (discarded tail).
    pub torn_tails: usize,
    /// Human-readable per-shard lines for the CLI report.
    pub notes: Vec<String>,
}

impl fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "recovered {} workflow(s) over {} shard(s): {} from snapshots, \
             {} WAL record(s) replayed, {} torn tail(s) discarded",
            self.workflows,
            self.shards,
            self.snapshot_entries,
            self.replayed_records,
            self.torn_tails
        )?;
        for note in &self.notes {
            writeln!(f, "  {note}")?;
        }
        Ok(())
    }
}

/// The storage backend the sharded store writes through and recovers from.
///
/// Implementations must serialise appends *per shard* (the store calls them
/// under the shard's mutator mutex, so per-shard ordering is already
/// guaranteed; the backend only needs interior mutability).
pub trait StorageBackend: Send + Sync + fmt::Debug {
    /// `true` when records actually hit stable storage (enables the store's
    /// serialisability pre-checks on registration).
    fn durable(&self) -> bool;

    /// Number of shards the backend is laid out for.
    fn shard_count(&self) -> usize;

    /// Appends one record to the shard's active log segment.
    ///
    /// # Errors
    /// Reports I/O failures; the store surfaces them as
    /// [`ServiceError::Persistence`].
    fn append(&self, shard: usize, record: &WalRecord) -> Result<AppendOutcome, ServiceError>;

    /// Blocks until the append identified by `ticket` (from
    /// [`AppendOutcome::ticket`]) is on stable storage, returning the
    /// nanoseconds spent waiting. This is the follower half of **group
    /// commit**: the store calls it *after* releasing the shard's mutator
    /// mutex, so concurrent mutators pile onto one leader fsync instead of
    /// paying one each. The default (and a 0 ticket) is an immediate no-op
    /// — backends that sync inline or not at all need nothing here.
    ///
    /// # Errors
    /// Reports fsync failures; the record is written but its durability is
    /// not yet guaranteed against power loss.
    fn wait_durable(&self, shard: usize, ticket: u64) -> Result<u64, ServiceError> {
        let _ = (shard, ticket);
        Ok(0)
    }

    /// Writes a full snapshot of the shard and rotates its log segment: the
    /// snapshot becomes the new recovery base and the old segment (plus the
    /// previous snapshot) is deleted — this is the compaction step.
    ///
    /// # Errors
    /// Reports I/O failures.
    fn write_snapshot(&self, shard: usize, entries: &[SnapshotEntry]) -> Result<(), ServiceError>;

    /// Hands over the journal found on open, once. The store replays it in
    /// [`crate::store::WorkflowStore::open`]; subsequent calls return empty
    /// journals.
    ///
    /// # Errors
    /// Reports corruption discovered while decoding the journal.
    fn take_journal(&self) -> Result<Vec<ShardJournal>, ServiceError>;

    /// Forces buffered records to stable storage (used on graceful
    /// shutdown; fsync batching may leave a tail unsynced otherwise).
    ///
    /// # Errors
    /// Reports I/O failures.
    fn sync(&self) -> Result<(), ServiceError>;

    /// What the backend has observed since it was opened: WAL append
    /// volume/latency, fsync latency, rotations and compaction wall time.
    /// The default (for backends that persist nothing) is all-empty.
    fn observe(&self) -> crate::obs::StorageObservation {
        crate::obs::StorageObservation::default()
    }
}

/// The default backend: nothing is persisted, every call is a no-op. A
/// store on this backend behaves exactly like the historical in-memory
/// store.
#[derive(Debug)]
pub struct MemoryBackend {
    shards: usize,
}

impl MemoryBackend {
    /// Creates a memory backend for `shards` shards.
    #[must_use]
    pub fn new(shards: usize) -> Self {
        MemoryBackend {
            shards: shards.max(1),
        }
    }
}

impl StorageBackend for MemoryBackend {
    fn durable(&self) -> bool {
        false
    }

    fn shard_count(&self) -> usize {
        self.shards
    }

    fn append(&self, _shard: usize, _record: &WalRecord) -> Result<AppendOutcome, ServiceError> {
        Ok(AppendOutcome::default())
    }

    fn write_snapshot(
        &self,
        _shard: usize,
        _entries: &[SnapshotEntry],
    ) -> Result<(), ServiceError> {
        Ok(())
    }

    fn take_journal(&self) -> Result<Vec<ShardJournal>, ServiceError> {
        Ok((0..self.shards).map(|_| ShardJournal::default()).collect())
    }

    fn sync(&self) -> Result<(), ServiceError> {
        Ok(())
    }
}

/// One scripted fault of a [`FaultPlan`]. Operation indices are 1-based:
/// appends count per shard, snapshot writes and syncs count backend-wide —
/// both are serialised by the store's per-shard mutator locks, so for a
/// given workload the counts (and therefore the injected faults) are fully
/// deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDirective {
    /// Appends `from .. from + count` fail with an injected I/O error.
    AppendErr {
        /// First failing append (1-based, per shard).
        from: u64,
        /// How many consecutive appends fail.
        count: u64,
    },
    /// Append number `at` tears: a short garbage fragment is left at the
    /// tail of the shard's active log (when the injector knows the data
    /// directory) and the append fails — the reproducible version of a
    /// power cut mid-`write(2)`.
    Torn {
        /// The torn append (1-based, per shard).
        at: u64,
    },
    /// Syncs `from .. from + count` fail with an injected `EIO`.
    SyncErr {
        /// First failing sync (1-based, backend-wide).
        from: u64,
        /// How many consecutive syncs fail.
        count: u64,
    },
    /// Snapshot writes `from .. from + count` fail with an injected I/O
    /// error — combined with [`FaultDirective::AppendErr`] this forces the
    /// store's double failure (append + rescue snapshot) and degrades the
    /// shard.
    SnapErr {
        /// First failing snapshot write (1-based, backend-wide).
        from: u64,
        /// How many consecutive snapshot writes fail.
        count: u64,
    },
    /// The virtual disk is full: once `bytes` of records have been
    /// appended, every further append and snapshot write fails with an
    /// injected `ENOSPC`.
    DiskFull {
        /// Append budget in bytes.
        bytes: u64,
    },
    /// Appends `from .. from + count` stall for `millis` milliseconds
    /// (plus a small seed-derived jitter) before executing — a latency
    /// spike, not a failure.
    Slow {
        /// First slow append (1-based, per shard).
        from: u64,
        /// How many consecutive appends stall.
        count: u64,
        /// Base stall in milliseconds.
        millis: u64,
    },
}

/// A deterministic, seeded fault script for a [`FaultInjector`].
///
/// The text grammar (the `--fault-plan` CLI flag) is a comma-separated list
/// of directives:
///
/// ```text
/// append-err=N[xC]   fail appends N..N+C (C defaults to 1)
/// torn=N             tear append N (garbage tail + failure)
/// sync-err=N[xC]     fail syncs N..N+C
/// snap-err=N[xC]     fail snapshot writes N..N+C
/// full=K             disk full after K appended bytes
/// slow=N:MS[xC]      stall appends N..N+C by MS milliseconds
/// seed=S             seed for the jitter of slow directives
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed deriving the deterministic jitter of [`FaultDirective::Slow`]
    /// stalls.
    pub seed: u64,
    /// The scripted faults, all active at once.
    pub directives: Vec<FaultDirective>,
}

impl FaultPlan {
    /// Parses the comma-separated plan grammar documented on the type.
    ///
    /// # Errors
    /// Reports unknown directives and malformed numbers as
    /// [`ServiceError::Parse`].
    pub fn parse(text: &str) -> Result<Self, ServiceError> {
        let bad = |part: &str| ServiceError::Parse(format!("bad fault-plan directive '{part}'"));
        let mut plan = FaultPlan::default();
        for part in text.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part.split_once('=').ok_or_else(|| bad(part))?;
            let number = |text: &str| text.parse::<u64>().map_err(|_| bad(part));
            // trailing `xC` repetition count, defaulting to 1
            let windowed = |text: &str| -> Result<(u64, u64), ServiceError> {
                match text.split_once('x') {
                    Some((from, count)) => Ok((number(from)?, number(count)?.max(1))),
                    None => Ok((number(text)?, 1)),
                }
            };
            let directive = match key {
                "append-err" => {
                    let (from, count) = windowed(value)?;
                    FaultDirective::AppendErr { from, count }
                }
                "torn" => FaultDirective::Torn { at: number(value)? },
                "sync-err" => {
                    let (from, count) = windowed(value)?;
                    FaultDirective::SyncErr { from, count }
                }
                "snap-err" => {
                    let (from, count) = windowed(value)?;
                    FaultDirective::SnapErr { from, count }
                }
                "full" => FaultDirective::DiskFull {
                    bytes: number(value)?,
                },
                "slow" => {
                    let (at, rest) = value.split_once(':').ok_or_else(|| bad(part))?;
                    let (millis, count) = windowed(rest)?;
                    FaultDirective::Slow {
                        from: number(at)?,
                        count,
                        millis,
                    }
                }
                "seed" => {
                    plan.seed = number(value)?;
                    continue;
                }
                _ => return Err(bad(part)),
            };
            plan.directives.push(directive);
        }
        Ok(plan)
    }
}

fn injected(what: impl fmt::Display) -> ServiceError {
    ServiceError::Persistence(format!("injected fault: {what}"))
}

/// SplitMix64 — derives the deterministic jitter of slow directives (and
/// of the client-side retry backoff in [`crate::client::RequestPolicy`]).
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic fault-injecting wrapper around any [`StorageBackend`]:
/// it counts the operations flowing through and executes the faults a
/// [`FaultPlan`] scripts for them, so every failure path — torn writes,
/// fsync `EIO`, a full disk, latency spikes — is reproducible in tests and
/// smoke runs. Operations outside the scripted windows pass straight
/// through to the wrapped backend.
#[derive(Debug)]
pub struct FaultInjector {
    inner: Arc<dyn StorageBackend>,
    plan: FaultPlan,
    /// Data directory of the wrapped backend; lets [`FaultDirective::Torn`]
    /// damage the real log tail. Without it a torn directive is a plain
    /// append failure.
    root: Option<PathBuf>,
    appends: Vec<AtomicU64>,
    syncs: AtomicU64,
    snapshots: AtomicU64,
    appended_bytes: AtomicU64,
}

impl FaultInjector {
    /// Wraps `inner` with the given plan. Torn directives degrade to plain
    /// append failures (no on-disk layout to damage); use
    /// [`Self::with_root`] for a file-backed inner backend.
    #[must_use]
    pub fn new(inner: Arc<dyn StorageBackend>, plan: FaultPlan) -> Self {
        let shards = inner.shard_count();
        FaultInjector {
            inner,
            plan,
            root: None,
            appends: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            syncs: AtomicU64::new(0),
            snapshots: AtomicU64::new(0),
            appended_bytes: AtomicU64::new(0),
        }
    }

    /// Wraps a file-backed backend whose data directory is `root`, enabling
    /// [`FaultDirective::Torn`] to leave real garbage at the active log's
    /// tail.
    #[must_use]
    pub fn with_root(
        inner: Arc<dyn StorageBackend>,
        plan: FaultPlan,
        root: impl Into<PathBuf>,
    ) -> Self {
        let mut injector = FaultInjector::new(inner, plan);
        injector.root = Some(root.into());
        injector
    }

    /// The active fault plan.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Appends a short garbage fragment (shorter than any real record, so a
    /// later successful append fully overwrites it) to the shard's newest
    /// active log segment.
    fn tear_tail(&self, shard: usize) {
        use std::io::Write as _;
        let Some(root) = &self.root else { return };
        let dir = root.join(format!("shard-{shard}"));
        let mut best: Option<(u64, PathBuf)> = None;
        let Ok(listing) = std::fs::read_dir(&dir) else {
            return;
        };
        for entry in listing.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            if let Some(gen) = name
                .strip_prefix("wal-")
                .and_then(|rest| rest.strip_suffix(".log"))
                .and_then(|g| g.parse::<u64>().ok())
            {
                if best.as_ref().map_or(true, |(newest, _)| gen > *newest) {
                    best = Some((gen, entry.path()));
                }
            }
        }
        if let Some((_, path)) = best {
            if let Ok(mut file) = std::fs::OpenOptions::new().append(true).open(path) {
                let _ = file.write_all(b"rec\tmut");
            }
        }
    }

    fn full_after(&self) -> Option<u64> {
        self.plan.directives.iter().find_map(|d| match d {
            FaultDirective::DiskFull { bytes } => Some(*bytes),
            _ => None,
        })
    }
}

impl StorageBackend for FaultInjector {
    fn durable(&self) -> bool {
        self.inner.durable()
    }

    fn shard_count(&self) -> usize {
        self.inner.shard_count()
    }

    fn append(&self, shard: usize, record: &WalRecord) -> Result<AppendOutcome, ServiceError> {
        let n = self.appends[shard].fetch_add(1, Ordering::SeqCst) + 1;
        for directive in &self.plan.directives {
            match *directive {
                FaultDirective::Slow {
                    from,
                    count,
                    millis,
                } if n >= from && n < from + count => {
                    let jitter = mix64(self.plan.seed ^ n) % (millis / 2 + 1);
                    std::thread::sleep(std::time::Duration::from_millis(millis + jitter));
                }
                FaultDirective::Torn { at } if n == at => {
                    self.tear_tail(shard);
                    return Err(injected(format_args!("torn write on append {n}")));
                }
                FaultDirective::AppendErr { from, count } if n >= from && n < from + count => {
                    return Err(injected(format_args!("append {n} failed")));
                }
                _ => {}
            }
        }
        if let Some(limit) = self.full_after() {
            let block: usize = record.to_lines().iter().map(|l| l.len() + 1).sum();
            let before = self
                .appended_bytes
                .fetch_add(block as u64, Ordering::SeqCst);
            if before + block as u64 > limit {
                return Err(injected("disk full"));
            }
        }
        self.inner.append(shard, record)
    }

    fn wait_durable(&self, shard: usize, ticket: u64) -> Result<u64, ServiceError> {
        // group-commit waits ride the sync-err directive: counting them as
        // syncs keeps the plan grammar unchanged while letting chaos tests
        // fail a leader fsync deterministically
        if ticket > 0
            && self
                .plan
                .directives
                .iter()
                .any(|d| matches!(d, FaultDirective::SyncErr { .. }))
        {
            let n = self.syncs.fetch_add(1, Ordering::SeqCst) + 1;
            for directive in &self.plan.directives {
                if let FaultDirective::SyncErr { from, count } = *directive {
                    if n >= from && n < from + count {
                        return Err(injected(format_args!("sync {n} failed (EIO)")));
                    }
                }
            }
        }
        self.inner.wait_durable(shard, ticket)
    }

    fn write_snapshot(&self, shard: usize, entries: &[SnapshotEntry]) -> Result<(), ServiceError> {
        let n = self.snapshots.fetch_add(1, Ordering::SeqCst) + 1;
        for directive in &self.plan.directives {
            if let FaultDirective::SnapErr { from, count } = *directive {
                if n >= from && n < from + count {
                    return Err(injected(format_args!("snapshot write {n} failed")));
                }
            }
        }
        if let Some(limit) = self.full_after() {
            if self.appended_bytes.load(Ordering::SeqCst) > limit {
                return Err(injected("disk full"));
            }
        }
        self.inner.write_snapshot(shard, entries)
    }

    fn take_journal(&self) -> Result<Vec<ShardJournal>, ServiceError> {
        self.inner.take_journal()
    }

    fn sync(&self) -> Result<(), ServiceError> {
        let n = self.syncs.fetch_add(1, Ordering::SeqCst) + 1;
        for directive in &self.plan.directives {
            if let FaultDirective::SyncErr { from, count } = *directive {
                if n >= from && n < from + count {
                    return Err(injected(format_args!("sync {n} failed (EIO)")));
                }
            }
        }
        self.inner.sync()
    }

    fn observe(&self) -> crate::obs::StorageObservation {
        self.inner.observe()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wolves_workflow::persist::{spec_to_lines, view_to_lines};
    use wolves_workflow::{SpecDeltaKind, TaskId};

    fn sample_entry() -> SnapshotEntry {
        let fixture = wolves_repo::figure1();
        SnapshotEntry {
            id: 7,
            epoch: 3,
            current: 0,
            seq: 5,
            spec_lines: spec_to_lines(&fixture.spec),
            views: vec![view_to_lines(&fixture.view)],
        }
    }

    #[test]
    fn snapshot_entries_round_trip() {
        let entry = sample_entry();
        let lines = entry.to_lines();
        let mut pos = 0;
        let parsed = SnapshotEntry::from_lines(&lines, &mut pos).unwrap();
        assert_eq!(pos, lines.len());
        assert_eq!(parsed, entry);
        // truncation is detected
        let mut pos = 0;
        assert!(SnapshotEntry::from_lines(&lines[..lines.len() - 2], &mut pos).is_err());
    }

    #[test]
    fn wal_records_round_trip_with_checksums() {
        let records = [
            WalRecord::Register {
                id: 7,
                entry: sample_entry(),
            },
            WalRecord::Mutate {
                id: 7,
                epoch: 4,
                op: MutateOp::AddEdge {
                    from: "a".to_owned(),
                    to: "b".to_owned(),
                },
                deltas: vec![SpecDelta {
                    epoch: 25,
                    kind: SpecDeltaKind::DependencyAdded(
                        TaskId::from_index(0),
                        TaskId::from_index(1),
                    ),
                }],
            },
            WalRecord::Correct {
                id: 7,
                version: 1,
                view_lines: view_to_lines(&wolves_repo::figure1().view),
            },
        ];
        let mut stream: Vec<String> = Vec::new();
        for record in &records {
            stream.extend(record.to_lines());
        }
        let mut pos = 0;
        for record in &records {
            let parsed = WalRecord::from_lines(&stream, &mut pos).unwrap();
            assert_eq!(&parsed, record);
            assert_eq!(parsed.workflow(), 7);
        }
        assert_eq!(pos, stream.len());
    }

    #[test]
    fn corrupted_records_fail_the_checksum() {
        let record = WalRecord::Mutate {
            id: 1,
            epoch: 2,
            op: MutateOp::AddTask {
                name: "x".to_owned(),
            },
            deltas: Vec::new(),
        };
        let mut lines = record.to_lines();
        // flip a payload byte: the checksum in the end line no longer holds
        lines[1] = lines[1].replace('x', "y");
        let mut pos = 0;
        let err = WalRecord::from_lines(&lines, &mut pos).unwrap_err();
        assert!(matches!(err, ServiceError::Recovery(_)));
        // a truncated record is an error too (the caller classifies it)
        let lines = record.to_lines();
        let mut pos = 0;
        assert!(WalRecord::from_lines(&lines[..lines.len() - 1], &mut pos).is_err());
    }

    #[test]
    fn memory_backend_is_a_no_op() {
        let backend = MemoryBackend::new(3);
        assert!(!backend.durable());
        assert_eq!(backend.shard_count(), 3);
        let outcome = backend
            .append(
                0,
                &WalRecord::Correct {
                    id: 1,
                    version: 0,
                    view_lines: Vec::new(),
                },
            )
            .unwrap();
        assert!(!outcome.wants_snapshot);
        assert_eq!(outcome.fsync_ns, 0);
        let observed = backend.observe();
        assert_eq!(observed.append_bytes, 0);
        assert_eq!(observed.rotations, 0);
        assert!(observed.append.is_empty());
        assert!(observed.fsync.is_empty());
        backend.write_snapshot(2, &[]).unwrap();
        assert_eq!(backend.take_journal().unwrap().len(), 3);
        backend.sync().unwrap();
    }

    #[test]
    fn fnv64_is_stable() {
        assert_eq!(fnv64(""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv64("a"), fnv64("b"));
    }

    #[test]
    fn fault_plans_parse_the_cli_grammar() {
        let plan = FaultPlan::parse(
            "append-err=2x3, torn=5,sync-err=1,snap-err=4x2,full=4096,slow=3:20x2,seed=9",
        )
        .unwrap();
        assert_eq!(plan.seed, 9);
        assert_eq!(
            plan.directives,
            vec![
                FaultDirective::AppendErr { from: 2, count: 3 },
                FaultDirective::Torn { at: 5 },
                FaultDirective::SyncErr { from: 1, count: 1 },
                FaultDirective::SnapErr { from: 4, count: 2 },
                FaultDirective::DiskFull { bytes: 4096 },
                FaultDirective::Slow {
                    from: 3,
                    count: 2,
                    millis: 20
                },
            ]
        );
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::default());
        for bad in [
            "gremlins=1",
            "append-err",
            "append-err=x",
            "slow=3",
            "torn=huge",
        ] {
            assert!(
                matches!(FaultPlan::parse(bad), Err(ServiceError::Parse(_))),
                "'{bad}' should be rejected"
            );
        }
    }

    #[test]
    fn fault_injector_scripts_deterministic_failures() {
        let plan = FaultPlan::parse("append-err=2x2,snap-err=1,sync-err=2").unwrap();
        let injector = FaultInjector::new(Arc::new(MemoryBackend::new(2)), plan);
        assert!(!injector.durable());
        assert_eq!(injector.shard_count(), 2);
        let record = WalRecord::Correct {
            id: 1,
            version: 0,
            view_lines: Vec::new(),
        };
        // appends 2 and 3 fail, counted per shard
        for shard in 0..2 {
            assert!(injector.append(shard, &record).is_ok());
            assert!(injector.append(shard, &record).is_err());
            assert!(injector.append(shard, &record).is_err());
            assert!(injector.append(shard, &record).is_ok());
        }
        // the first snapshot write fails, the second passes
        assert!(injector.write_snapshot(0, &[]).is_err());
        assert!(injector.write_snapshot(0, &[]).is_ok());
        // the second sync fails
        assert!(injector.sync().is_ok());
        assert!(injector.sync().is_err());
        assert!(injector.sync().is_ok());
        assert_eq!(injector.take_journal().unwrap().len(), 2);
    }

    #[test]
    fn a_full_disk_fails_appends_and_snapshots_beyond_the_budget() {
        let record = WalRecord::Correct {
            id: 1,
            version: 0,
            view_lines: vec!["view\tdemo".to_owned()],
        };
        let block: usize = record.to_lines().iter().map(|l| l.len() + 1).sum();
        let plan = FaultPlan::parse(&format!("full={}", block * 2)).unwrap();
        let injector = FaultInjector::new(Arc::new(MemoryBackend::new(1)), plan);
        assert!(injector.append(0, &record).is_ok());
        assert!(injector.append(0, &record).is_ok());
        let err = injector.append(0, &record).unwrap_err();
        assert!(err.to_string().contains("disk full"), "{err}");
        assert!(injector.write_snapshot(0, &[]).is_err());
    }
}
