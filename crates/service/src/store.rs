//! The sharded, cached workflow store.
//!
//! Workflows are spread over `N` shards by hashing their id; each shard is an
//! independently `RwLock`-guarded map, so requests for workflows on different
//! shards never contend. Caching is **composite-granular and keyed by
//! mutation epoch**:
//!
//! * **Reachability reuse** — a registered [`WorkflowSpec`] is stored behind
//!   an `Arc` and its lazily built `ReachMatrix` is primed at registration
//!   time. Mutations maintain the matrix *in place* where the delta class
//!   allows (see `wolves_workflow::mutation`), so edits don't pay a rebuild
//!   either.
//! * **Verdict caching** — every stored view carries one cached soundness
//!   verdict *per composite task*, tagged with the workflow's mutation
//!   epoch. A `mutate` request invalidates only the composites whose
//!   reachability rows the edit dirtied (plus the edit's endpoints, whose
//!   boundaries may have moved); every other cached verdict is re-tagged to
//!   the new epoch and keeps serving hits.
//! * **Provenance index caching** — the per-view [`ViewProvenanceIndex`] is
//!   epoch-tagged too and survives mutations that cannot change the induced
//!   view graph (e.g. edges added inside one composite).
//!
//! Corrections still append the corrected view as a new immutable version.
//! Mutations edit the registered workflow in place under the shard write
//! lock, using copy-on-write (`Arc::make_mut`) so in-flight readers keep a
//! consistent pre-mutation snapshot. Task additions/removals rebase the
//! workflow: older view versions would no longer partition the task set, so
//! the version history is truncated to the (updated) current view.
//!
//! **Durability** is layered behind [`StorageBackend`]: the default
//! [`MemoryBackend`] keeps today's in-memory behaviour at zero cost, while
//! a [`crate::wal::FileBackend`] appends every register/mutate/correct to a
//! per-shard write-ahead log (under the same shard write lock, so log order
//! is store order) and periodically compacts it into full snapshots.
//! [`WorkflowStore::open`] recovers a backend's journal by replaying it
//! through the live request paths, restoring epochs, versions, ids and
//! cache keying exactly.

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use parking_lot::RwLock;
use wolves_graph::DirtyRows;

use wolves_core::correct::{correct_view, Strategy};
use wolves_core::estimate::{CorrectionSample, EstimationRegistry, WorkloadClass};
use wolves_core::soundness::soundness_verdict;
use wolves_moml::{read_text_format, write_text_format};
use wolves_provenance::ViewProvenanceIndex;
use wolves_workflow::persist::{
    check_spec_serialisable, check_view_serialisable, spec_from_lines, spec_to_lines,
    view_from_lines, view_to_lines,
};
use wolves_workflow::{
    CompositeTaskId, SpecDelta, SpecMutation, TaskId, WorkflowSpec, WorkflowView,
};

use crate::error::ServiceError;
use crate::proto::{Corrected, MutateOp, Mutated, ShardStat, StatsReport, Verdict};
use crate::storage::{
    MemoryBackend, RecoveryReport, ShardJournal, SnapshotEntry, StorageBackend, WalRecord,
};

/// Identifier of a registered workflow, assigned by the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WorkflowId(pub u64);

impl fmt::Display for WorkflowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The cached soundness verdict of one composite task.
#[derive(Debug, Clone)]
struct CompositeSummary {
    sound: bool,
    name: String,
}

/// One composite's cache slot: the epoch it is valid for and a `OnceLock`
/// cell so exactly one racer computes per `(composite, epoch)` — everyone
/// else blocks on the cell and counts as a hit, keeping the counters
/// deterministic under concurrency.
#[derive(Debug, Clone)]
struct CachedVerdict {
    epoch: u64,
    cell: Arc<OnceLock<CompositeSummary>>,
}

/// One stored view plus its composite-granular caches.
#[derive(Debug)]
struct StoredView {
    view: Arc<WorkflowView>,
    verdicts: RwLock<HashMap<CompositeTaskId, CachedVerdict>>,
    /// Matrix-backed provenance index, built on first provenance query and
    /// reused until a mutation that can change the induced view graph.
    provenance: RwLock<Option<(u64, Arc<ViewProvenanceIndex>)>>,
}

impl Clone for StoredView {
    fn clone(&self) -> Self {
        StoredView {
            view: Arc::clone(&self.view),
            verdicts: RwLock::new(self.verdicts.read().clone()),
            provenance: RwLock::new(self.provenance.read().clone()),
        }
    }
}

impl StoredView {
    fn new(view: WorkflowView) -> Arc<Self> {
        Arc::new(StoredView {
            view: Arc::new(view),
            verdicts: RwLock::new(HashMap::new()),
            provenance: RwLock::new(None),
        })
    }
}

/// One registered workflow: the spec, its view versions and the mutation
/// epoch keying every cache entry.
#[derive(Debug)]
struct Entry {
    spec: Arc<WorkflowSpec>,
    views: Vec<Arc<StoredView>>,
    current: usize,
    epoch: u64,
    /// Spec epoch up to which the storage backend has consumed the typed
    /// delta log. Every mutation hands the deltas in
    /// `(logged_epoch, spec.epoch()]` to the write-ahead log *before* the
    /// bounded log could evict them (and errors loudly if it ever did).
    logged_epoch: u64,
}

impl Entry {
    /// The entry's full durable state, as stored in snapshots and
    /// `register` WAL records.
    fn snapshot(&self, id: u64) -> SnapshotEntry {
        SnapshotEntry {
            id,
            epoch: self.epoch,
            current: self.current,
            spec_lines: spec_to_lines(&self.spec),
            views: self
                .views
                .iter()
                .map(|stored| view_to_lines(&stored.view))
                .collect(),
        }
    }
}

/// Monotone serving counters of one shard. All counters are relaxed atomics:
/// they are statistics, not synchronisation.
#[derive(Debug, Default)]
struct ShardMetrics {
    validate_hits: AtomicU64,
    validate_misses: AtomicU64,
    composite_hits: AtomicU64,
    composite_misses: AtomicU64,
    validate_ns: AtomicU64,
    requests: AtomicU64,
}

#[derive(Debug)]
struct Shard {
    entries: RwLock<HashMap<u64, Entry>>,
    metrics: ShardMetrics,
}

/// Which cached composite verdicts a mutation invalidates.
enum Affected {
    /// Every cached verdict (structural deltas, task add/remove).
    All,
    /// Only the listed composites; everything else survives re-tagged.
    Composites(BTreeSet<CompositeTaskId>),
}

impl Affected {
    fn contains(&self, composite: CompositeTaskId) -> bool {
        match self {
            Affected::All => true,
            Affected::Composites(set) => set.contains(&composite),
        }
    }
}

/// The sharded workflow store described in the module docs.
#[derive(Debug)]
pub struct WorkflowStore {
    shards: Vec<Shard>,
    next_id: AtomicU64,
    registry: EstimationRegistry,
    backend: Arc<dyn StorageBackend>,
}

impl WorkflowStore {
    /// Creates a purely in-memory store with `shard_count` shards (at least
    /// one) — a [`MemoryBackend`] behind the scenes, with today's zero-cost
    /// behaviour.
    #[must_use]
    pub fn new(shard_count: usize) -> Self {
        Self::with_backend(Arc::new(MemoryBackend::new(shard_count)))
    }

    fn with_backend(backend: Arc<dyn StorageBackend>) -> Self {
        let shards = (0..backend.shard_count())
            .map(|_| Shard {
                entries: RwLock::new(HashMap::new()),
                metrics: ShardMetrics::default(),
            })
            .collect();
        WorkflowStore {
            shards,
            next_id: AtomicU64::new(0),
            registry: EstimationRegistry::new(),
            backend,
        }
    }

    /// Opens a store on a storage backend, recovering whatever the backend
    /// journals: the newest snapshot of each shard is installed, then the
    /// write-ahead log is replayed **through the live request paths**
    /// (`WorkflowSpec::apply` for mutations, version append for
    /// corrections), so the recovered store serves bit-identical answers —
    /// same epochs, same task/composite-id assignment, same cache keying —
    /// as the store that crashed. Replayed epochs and spec deltas are
    /// cross-checked against the logged ones; a divergence aborts recovery.
    ///
    /// After a successful replay every shard is snapshotted once, which
    /// compacts the recovered log away and bounds the next start-up.
    ///
    /// # Errors
    /// Reports journal corruption, replay divergence and I/O failures.
    pub fn open(backend: Arc<dyn StorageBackend>) -> Result<(Self, RecoveryReport), ServiceError> {
        let store = Self::with_backend(Arc::clone(&backend));
        let journal = backend.take_journal()?;
        let mut report = RecoveryReport {
            shards: store.shards.len(),
            ..RecoveryReport::default()
        };
        for (index, shard) in journal.into_iter().enumerate() {
            store.replay_shard(index, shard, &mut report)?;
        }
        report.workflows = store
            .shards
            .iter()
            .map(|shard| shard.entries.read().len())
            .sum();
        if report.snapshot_entries + report.replayed_records > 0 {
            // compact: the replayed journal becomes the new snapshot base
            store.snapshot_all()?;
        }
        Ok((store, report))
    }

    /// Replays one shard's journal in append order.
    fn replay_shard(
        &self,
        index: usize,
        journal: ShardJournal,
        report: &mut RecoveryReport,
    ) -> Result<(), ServiceError> {
        let mut note_entries = 0usize;
        let mut note_records = 0usize;
        if journal.torn_bytes > 0 {
            report.torn_tails += 1;
            report.notes.push(format!(
                "shard {index}: discarded {} byte(s) of torn WAL tail",
                journal.torn_bytes
            ));
        }
        for entry in journal.entries {
            self.install_entry(entry)?;
            note_entries += 1;
        }
        for record in journal.records {
            note_records += 1;
            match record {
                WalRecord::Register { id, entry } => {
                    if entry.id != id {
                        return Err(ServiceError::Recovery(format!(
                            "register record for workflow {id} carries entry {}",
                            entry.id
                        )));
                    }
                    self.install_entry(entry)?;
                }
                WalRecord::Mutate {
                    id,
                    epoch,
                    op,
                    deltas,
                } => {
                    let (mutated, replayed_deltas) =
                        self.mutate_inner(WorkflowId(id), op, false)?;
                    if mutated.epoch != epoch || replayed_deltas != deltas {
                        return Err(ServiceError::Recovery(format!(
                            "replay diverged on workflow {id}: logged epoch {epoch}, \
                             replayed epoch {}",
                            mutated.epoch
                        )));
                    }
                }
                WalRecord::Correct {
                    id,
                    version,
                    view_lines,
                } => self.install_correction(id, version, &view_lines)?,
            }
        }
        report.snapshot_entries += note_entries;
        report.replayed_records += note_records;
        if note_entries + note_records > 0 {
            report.notes.push(format!(
                "shard {index}: {note_entries} snapshot entr(ies), \
                 {note_records} WAL record(s)"
            ));
        }
        Ok(())
    }

    /// Installs one recovered workflow entry (from a snapshot or a replayed
    /// `register` record).
    fn install_entry(&self, snapshot: SnapshotEntry) -> Result<(), ServiceError> {
        let recover = |e: wolves_workflow::WorkflowError| ServiceError::Recovery(e.to_string());
        let spec = spec_from_lines(&snapshot.spec_lines).map_err(recover)?;
        let mut views = Vec::with_capacity(snapshot.views.len());
        for lines in &snapshot.views {
            let view = view_from_lines(lines).map_err(recover)?;
            view.validate_against(&spec).map_err(recover)?;
            views.push(StoredView::new(view));
        }
        if !views.is_empty() && snapshot.current >= views.len() {
            return Err(ServiceError::Recovery(format!(
                "workflow {}: current version {} out of range ({} view(s))",
                snapshot.id,
                snapshot.current,
                views.len()
            )));
        }
        let _ = spec.reachability();
        let entry = Entry {
            logged_epoch: spec.epoch(),
            spec: Arc::new(spec),
            views,
            current: snapshot.current,
            epoch: snapshot.epoch,
        };
        let id = WorkflowId(snapshot.id);
        let shard = self.shard_of(id);
        let mut entries = shard.entries.write();
        if entries.insert(snapshot.id, entry).is_some() {
            return Err(ServiceError::Recovery(format!(
                "workflow {} recovered twice",
                snapshot.id
            )));
        }
        self.next_id.fetch_max(snapshot.id, Ordering::Relaxed);
        Ok(())
    }

    /// Replays a logged correction: appends the recorded view version and
    /// makes it current.
    fn install_correction(
        &self,
        id: u64,
        version: usize,
        view_lines: &[String],
    ) -> Result<(), ServiceError> {
        let recover = |e: wolves_workflow::WorkflowError| ServiceError::Recovery(e.to_string());
        let view = view_from_lines(view_lines).map_err(recover)?;
        let shard = self.shard_of(WorkflowId(id));
        let mut entries = shard.entries.write();
        let entry = entries
            .get_mut(&id)
            .ok_or(ServiceError::UnknownWorkflow(WorkflowId(id)))?;
        view.validate_against(&entry.spec).map_err(recover)?;
        if version != entry.views.len() {
            return Err(ServiceError::Recovery(format!(
                "correction replay diverged on workflow {id}: logged version {version}, \
                 next version {}",
                entry.views.len()
            )));
        }
        entry.views.push(StoredView::new(view));
        entry.current = version;
        Ok(())
    }

    /// The storage backend behind the store.
    #[must_use]
    pub fn backend(&self) -> &Arc<dyn StorageBackend> {
        &self.backend
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The estimation registry fed by correction requests.
    #[must_use]
    pub fn registry(&self) -> &EstimationRegistry {
        &self.registry
    }

    fn shard_index_of(&self, id: WorkflowId) -> usize {
        let mut hasher = DefaultHasher::new();
        id.0.hash(&mut hasher);
        (hasher.finish() as usize) % self.shards.len()
    }

    fn shard_of(&self, id: WorkflowId) -> &Shard {
        &self.shards[self.shard_index_of(id)]
    }

    /// Registers a workflow and optional view, returning the assigned id.
    ///
    /// The spec's reachability matrix is primed here, outside any lock, so
    /// every later request shares the already-built matrix.
    ///
    /// # Panics
    /// Panics if a durable backend fails to persist the registration; use
    /// [`WorkflowStore::try_register`] to handle persistence failures.
    pub fn register(&self, spec: WorkflowSpec, view: Option<WorkflowView>) -> WorkflowId {
        self.try_register(spec, view)
            .expect("workflow registration failed to persist")
    }

    /// Registers a workflow and optional view, returning the assigned id.
    ///
    /// # Errors
    /// Reports views that do not partition the spec's tasks and, on durable
    /// backends, serialisation and persistence failures (the registration
    /// is rolled back, so memory and disk stay consistent).
    pub fn try_register(
        &self,
        spec: WorkflowSpec,
        view: Option<WorkflowView>,
    ) -> Result<WorkflowId, ServiceError> {
        let persist = |e: wolves_workflow::WorkflowError| ServiceError::Persistence(e.to_string());
        if self.backend.durable() {
            // refuse names the line format cannot carry before anything is
            // allocated or written
            check_spec_serialisable(&spec).map_err(persist)?;
            if let Some(view) = &view {
                check_view_serialisable(view).map_err(persist)?;
            }
        }
        let _ = spec.reachability();
        let id = WorkflowId(self.next_id.fetch_add(1, Ordering::Relaxed) + 1);
        let entry = Entry {
            logged_epoch: spec.epoch(),
            spec: Arc::new(spec),
            views: view.map(StoredView::new).into_iter().collect(),
            current: 0,
            epoch: 0,
        };
        // the in-memory backend keeps its zero-cost contract: no snapshot
        // serialisation, no record building
        let record = self.backend.durable().then(|| WalRecord::Register {
            id: id.0,
            entry: entry.snapshot(id.0),
        });
        let index = self.shard_index_of(id);
        let shard = &self.shards[index];
        shard.metrics.requests.fetch_add(1, Ordering::Relaxed);
        let mut entries = shard.entries.write();
        entries.insert(id.0, entry);
        let Some(record) = record else {
            return Ok(id);
        };
        match self.backend.append(index, &record) {
            Ok(outcome) => {
                if outcome.wants_snapshot {
                    self.snapshot_shard(index, &entries)?;
                }
                Ok(id)
            }
            Err(e) => {
                // roll back: nothing else can reference the id yet
                entries.remove(&id.0);
                Err(e)
            }
        }
    }

    /// Registers a workflow from a native text-format payload.
    ///
    /// # Errors
    /// Reports payloads that do not parse as the text format, and
    /// persistence failures on durable backends.
    pub fn register_text(&self, payload: &str) -> Result<WorkflowId, ServiceError> {
        let imported = read_text_format(payload)?;
        self.try_register(imported.spec, imported.view)
    }

    /// Writes a snapshot of one shard through the backend (the caller holds
    /// the shard lock, so the dump is a consistent cut).
    fn snapshot_shard(
        &self,
        index: usize,
        entries: &HashMap<u64, Entry>,
    ) -> Result<(), ServiceError> {
        let mut ids: Vec<u64> = entries.keys().copied().collect();
        ids.sort_unstable();
        let dump: Vec<SnapshotEntry> = ids.iter().map(|id| entries[id].snapshot(*id)).collect();
        self.backend.write_snapshot(index, &dump)
    }

    /// Snapshots every shard through the backend, truncating each shard's
    /// write-ahead log (compaction). This is what the `snapshot` protocol
    /// verb runs; on the in-memory backend it is a no-op. Returns the
    /// number of shards snapshotted.
    ///
    /// # Errors
    /// Reports backend I/O failures.
    pub fn snapshot_all(&self) -> Result<usize, ServiceError> {
        for (index, shard) in self.shards.iter().enumerate() {
            let entries = shard.entries.write();
            self.snapshot_shard(index, &entries)?;
        }
        Ok(self.shards.len())
    }

    /// Exports a workflow's current state (spec + current view) in the
    /// registrable native text format — what a client needs to resync after
    /// server-side mutations and corrections.
    ///
    /// # Errors
    /// Reports unknown workflows.
    pub fn export(&self, id: WorkflowId) -> Result<String, ServiceError> {
        let shard = self.shard_of(id);
        shard.metrics.requests.fetch_add(1, Ordering::Relaxed);
        let entries = shard.entries.read();
        let entry = entries
            .get(&id.0)
            .ok_or(ServiceError::UnknownWorkflow(id))?;
        let view = entry.views.get(entry.current).map(|stored| &*stored.view);
        Ok(write_text_format(&entry.spec, view))
    }

    /// Snapshot of a workflow's spec, a view version (current when `version`
    /// is `None`) and the mutation epoch, taken under the shard read lock.
    /// The three are mutually consistent: mutations replace the `Arc`s
    /// copy-on-write under the write lock.
    fn snapshot(
        &self,
        id: WorkflowId,
        version: Option<usize>,
    ) -> Result<(Arc<WorkflowSpec>, Arc<StoredView>, usize, u64), ServiceError> {
        let shard = self.shard_of(id);
        shard.metrics.requests.fetch_add(1, Ordering::Relaxed);
        let entries = shard.entries.read();
        let entry = entries
            .get(&id.0)
            .ok_or(ServiceError::UnknownWorkflow(id))?;
        if entry.views.is_empty() {
            return Err(ServiceError::NoView(id));
        }
        let index = version.unwrap_or(entry.current);
        let stored = entry
            .views
            .get(index)
            .ok_or(ServiceError::UnknownView(id, index))?;
        Ok((
            Arc::clone(&entry.spec),
            Arc::clone(stored),
            index,
            entry.epoch,
        ))
    }

    /// Validates a view version composite by composite, serving every
    /// epoch-fresh cached verdict and computing only the rest. The response
    /// counts as a cache hit when *no* composite had to be computed.
    ///
    /// # Errors
    /// Reports unknown workflows and view versions.
    pub fn validate(
        &self,
        id: WorkflowId,
        version: Option<usize>,
    ) -> Result<Verdict, ServiceError> {
        let start = Instant::now();
        let (spec, stored, index, epoch) = self.snapshot(id, version)?;
        let view = Arc::clone(&stored.view);
        let mut computed = 0u64;
        let mut served = 0u64;
        let mut unsound = Vec::new();
        for (composite_id, composite) in view.composites() {
            let cell = {
                let map = stored.verdicts.read();
                map.get(&composite_id)
                    .filter(|cached| cached.epoch == epoch)
                    .map(|cached| Arc::clone(&cached.cell))
            };
            let cell = cell.unwrap_or_else(|| {
                let mut map = stored.verdicts.write();
                match map.get(&composite_id) {
                    Some(cached) if cached.epoch == epoch => Arc::clone(&cached.cell),
                    // the entry is fresher than our snapshot (a mutation won
                    // the race): compute one-off without disturbing the cache
                    Some(cached) if cached.epoch > epoch => Arc::new(OnceLock::new()),
                    _ => {
                        let cell = Arc::new(OnceLock::new());
                        map.insert(
                            composite_id,
                            CachedVerdict {
                                epoch,
                                cell: Arc::clone(&cell),
                            },
                        );
                        cell
                    }
                }
            });
            let mut ran = false;
            let summary = cell.get_or_init(|| {
                ran = true;
                CompositeSummary {
                    sound: soundness_verdict(&spec, composite.members()).is_sound(),
                    name: composite.name.clone(),
                }
            });
            if ran {
                computed += 1;
            } else {
                served += 1;
            }
            if !summary.sound {
                unsound.push(summary.name.clone());
            }
        }
        let cached = computed == 0;
        let metrics = &self.shard_of(id).metrics;
        if cached {
            metrics.validate_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            metrics.validate_misses.fetch_add(1, Ordering::Relaxed);
        }
        metrics.composite_hits.fetch_add(served, Ordering::Relaxed);
        metrics
            .composite_misses
            .fetch_add(computed, Ordering::Relaxed);
        metrics.validate_ns.fetch_add(
            u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX),
            Ordering::Relaxed,
        );
        Ok(Verdict {
            sound: unsound.is_empty(),
            version: index,
            cached,
            unsound,
        })
    }

    /// Applies one mutation to a registered workflow under the shard write
    /// lock, with composite-granular cache invalidation: only the cached
    /// verdicts whose composites the edit could have changed are dropped;
    /// the rest are re-tagged to the new epoch and keep serving hits.
    /// Copy-on-write keeps concurrently running reads on a consistent
    /// pre-mutation snapshot.
    ///
    /// On a durable backend the edit is appended to the shard's write-ahead
    /// log (op + consumed spec deltas) before the call returns, still under
    /// the shard write lock, so the log order is the store order.
    ///
    /// # Errors
    /// Reports unknown workflows, tasks and composites, edits the model
    /// layer rejects (duplicate names, missing dependencies, non-partition
    /// splits), and persistence failures.
    pub fn mutate(&self, id: WorkflowId, op: MutateOp) -> Result<Mutated, ServiceError> {
        self.mutate_inner(id, op, true).map(|(mutated, _)| mutated)
    }

    /// [`WorkflowStore::mutate`] with recording control: recovery replays
    /// logged ops through this path with `record` off (re-appending them
    /// would duplicate the log). Returns the consumed spec deltas alongside
    /// the outcome so replay can cross-check them against the record.
    fn mutate_inner(
        &self,
        id: WorkflowId,
        op: MutateOp,
        record: bool,
    ) -> Result<(Mutated, Vec<SpecDelta>), ServiceError> {
        let durable = self.backend.durable();
        if durable && record {
            // refuse names the single-line WAL/wire grammar cannot carry
            // before anything is applied (replayed ops were checked when
            // they were first logged)
            check_op_serialisable(&op)?;
        }
        // only durable recording needs the op after the apply-match consumes
        // it; the in-memory path skips the clone
        let logged_op = (durable && record).then(|| op.clone());
        let index = self.shard_index_of(id);
        let shard = &self.shards[index];
        shard.metrics.requests.fetch_add(1, Ordering::Relaxed);
        let mut entries = shard.entries.write();
        let entry = entries
            .get_mut(&id.0)
            .ok_or(ServiceError::UnknownWorkflow(id))?;
        if entry.views.is_empty() {
            return Err(ServiceError::NoView(id));
        }
        let old_epoch = entry.epoch;
        let new_epoch = old_epoch + 1;

        let mutation = |e: wolves_workflow::WorkflowError| ServiceError::Mutation(e.to_string());
        let resolve_task = |spec: &WorkflowSpec, name: &str| -> Result<TaskId, ServiceError> {
            spec.task_by_name(name)
                .ok_or_else(|| ServiceError::UnknownTask(name.to_owned()))
        };

        // `truncate`: task-set edits rebase the workflow — older view
        // versions would no longer partition the tasks, so only the updated
        // current view survives.
        let (class, affected, provenance_survives, truncate) = match op {
            MutateOp::AddTask { name } => {
                let spec = Arc::make_mut(&mut entry.spec);
                let report = spec
                    .apply(SpecMutation::AddTask { name: name.clone() })
                    .map_err(mutation)?;
                let task = report.task.expect("AddTask reports the created task");
                let stored = Arc::make_mut(&mut entry.views[entry.current]);
                let view = Arc::make_mut(&mut stored.view);
                let composite = view.add_composite(name, vec![task]).map_err(mutation)?;
                (
                    report.class.name(),
                    Affected::Composites([composite].into_iter().collect()),
                    false,
                    true,
                )
            }
            MutateOp::RemoveTask { name } => {
                let task = resolve_task(&entry.spec, &name)?;
                let stored = Arc::make_mut(&mut entry.views[entry.current]);
                let view = Arc::make_mut(&mut stored.view);
                view.remove_member(task).map_err(mutation)?;
                let spec = Arc::make_mut(&mut entry.spec);
                let report = spec
                    .apply(SpecMutation::RemoveTask { task })
                    .map_err(mutation)?;
                (report.class.name(), Affected::All, false, true)
            }
            MutateOp::AddEdge { from, to } => {
                let from = resolve_task(&entry.spec, &from)?;
                let to = resolve_task(&entry.spec, &to)?;
                let report = Arc::make_mut(&mut entry.spec)
                    .apply(SpecMutation::AddDependency { from, to })
                    .map_err(mutation)?;
                let (affected, internal) = edge_affected_composites(entry, from, to, &report.dirty);
                (report.class.name(), affected, internal, false)
            }
            MutateOp::RemoveEdge { from, to } => {
                let from = resolve_task(&entry.spec, &from)?;
                let to = resolve_task(&entry.spec, &to)?;
                let report = Arc::make_mut(&mut entry.spec)
                    .apply(SpecMutation::RemoveDependency { from, to })
                    .map_err(mutation)?;
                let (_, internal) = edge_affected_composites(entry, from, to, &report.dirty);
                // removals shrink reachability: every verdict may change,
                // but an intra-composite edge still cannot change the
                // induced view graph, so the provenance index survives
                (report.class.name(), Affected::All, internal, false)
            }
            MutateOp::Split { composite, parts } => {
                let stored = Arc::make_mut(&mut entry.views[entry.current]);
                let view = Arc::make_mut(&mut stored.view);
                let target = composite_by_name(view, &composite)?;
                let spec = &entry.spec;
                let part_ids: Vec<Vec<TaskId>> = parts
                    .iter()
                    .map(|part| {
                        part.iter()
                            .map(|name| resolve_task(spec, name))
                            .collect::<Result<Vec<_>, _>>()
                    })
                    .collect::<Result<_, _>>()?;
                view.split_composite(target, part_ids).map_err(mutation)?;
                (
                    "view-edit",
                    Affected::Composites([target].into_iter().collect()),
                    false,
                    false,
                )
            }
            MutateOp::Merge { name, composites } => {
                let stored = Arc::make_mut(&mut entry.views[entry.current]);
                let view = Arc::make_mut(&mut stored.view);
                let ids: Vec<CompositeTaskId> = composites
                    .iter()
                    .map(|c| composite_by_name(view, c))
                    .collect::<Result<_, _>>()?;
                view.merge_composites(&ids, name).map_err(mutation)?;
                (
                    "view-edit",
                    Affected::Composites(ids.into_iter().collect()),
                    false,
                    false,
                )
            }
        };

        let mutated = finish_mutation(
            entry,
            class,
            &affected,
            provenance_survives,
            truncate,
            new_epoch,
        );
        // hand the new spec deltas to the write-ahead log before the
        // bounded delta log could evict them (the in-memory backend keeps
        // its zero-cost contract: no delta collection, no record building)
        let deltas = if durable {
            consume_deltas(entry)?
        } else {
            Vec::new()
        };
        entry.logged_epoch = entry.spec.epoch();
        if durable && record {
            let wal_record = WalRecord::Mutate {
                id: id.0,
                epoch: mutated.epoch,
                op: logged_op.expect("cloned for the durable recording path"),
                deltas: deltas.clone(),
            };
            match self.backend.append(index, &wal_record) {
                Ok(outcome) => {
                    if outcome.wants_snapshot {
                        self.snapshot_shard(index, &entries)?;
                    }
                }
                // self-heal a failed append with a full snapshot (which
                // rotates the log past the gap); if that fails too, the
                // durable state is behind memory — report it
                Err(e) => self.snapshot_shard(index, &entries).map_err(|_| e)?,
            }
        }
        Ok((mutated, deltas))
    }

    /// Corrects the current view with `strategy`. When the view was unsound,
    /// the corrected view is appended as a new version and becomes current;
    /// observed per-composite timings are recorded in the estimation
    /// registry. The expensive correction runs outside the shard lock.
    ///
    /// # Errors
    /// Reports unknown workflows and corrector failures.
    pub fn correct(&self, id: WorkflowId, strategy: Strategy) -> Result<Corrected, ServiceError> {
        let (spec, stored, index, epoch) = self.snapshot(id, None)?;
        let corrector = strategy.corrector();
        let (corrected, report) = correct_view(&spec, &stored.view, corrector.as_ref())?;
        for correction in &report.corrections {
            if let Ok(original) = stored.view.composite(correction.original) {
                let class = WorkloadClass::classify(&spec, original.members());
                self.registry.record(
                    class,
                    CorrectionSample {
                        strategy,
                        elapsed: correction.elapsed,
                        // observed quality is unknown without running the
                        // exact corrector; record the neutral 1.0
                        quality: 1.0,
                    },
                );
            }
        }
        if report.was_already_sound() {
            return Ok(Corrected {
                version: index,
                composites_before: report.composites_before,
                composites_after: report.composites_after,
                payload: write_text_format(&spec, Some(&stored.view)),
            });
        }
        let payload = write_text_format(&spec, Some(&corrected));
        let new_view = StoredView::new(corrected);
        let shard_index = self.shard_index_of(id);
        let shard = &self.shards[shard_index];
        let mut entries = shard.entries.write();
        let entry = entries
            .get_mut(&id.0)
            .ok_or(ServiceError::UnknownWorkflow(id))?;
        if entry.current != index || entry.epoch != epoch {
            // a concurrent correction or mutation already replaced the
            // version we corrected; adopt the winner instead of appending
            let winner = &entry.views[entry.current];
            return Ok(Corrected {
                version: entry.current,
                composites_before: report.composites_before,
                composites_after: winner.view.composite_count(),
                payload: write_text_format(&entry.spec, Some(&winner.view)),
            });
        }
        let view_lines = self
            .backend
            .durable()
            .then(|| view_to_lines(&new_view.view));
        entry.views.push(new_view);
        entry.current = entry.views.len() - 1;
        let version = entry.current;
        if let Some(view_lines) = view_lines {
            let record = WalRecord::Correct {
                id: id.0,
                version,
                view_lines,
            };
            match self.backend.append(shard_index, &record) {
                Ok(outcome) => {
                    if outcome.wants_snapshot {
                        self.snapshot_shard(shard_index, &entries)?;
                    }
                }
                Err(e) => self.snapshot_shard(shard_index, &entries).map_err(|_| e)?,
            }
        }
        Ok(Corrected {
            version,
            composites_before: report.composites_before,
            composites_after: report.composites_after,
            payload,
        })
    }

    /// Answers a view-level provenance query for the named task through the
    /// workflow's current view, returning the provenance task names in
    /// deterministic (task-id) order.
    ///
    /// Served off the epoch-tagged per-view [`ViewProvenanceIndex`]: the
    /// induced view graph and its reachability matrix are built once and
    /// survive both repeated queries and mutations that cannot change the
    /// induced graph; every query is row lookups, no per-request graph
    /// construction.
    ///
    /// # Errors
    /// Reports unknown workflows and task names.
    pub fn provenance(&self, id: WorkflowId, subject: &str) -> Result<Vec<String>, ServiceError> {
        let (spec, stored, _, epoch) = self.snapshot(id, None)?;
        let task = spec
            .task_by_name(subject)
            .ok_or_else(|| ServiceError::UnknownTask(subject.to_owned()))?;
        let cached = stored
            .provenance
            .read()
            .as_ref()
            .filter(|(cached_epoch, _)| *cached_epoch == epoch)
            .map(|(_, index)| Arc::clone(index));
        let index = match cached {
            Some(index) => index,
            None => {
                let built = Arc::new(ViewProvenanceIndex::new(&spec, &stored.view));
                let mut slot = stored.provenance.write();
                match slot.as_ref() {
                    // don't clobber an index a fresher epoch already cached
                    Some((cached_epoch, _)) if *cached_epoch > epoch => {}
                    _ => *slot = Some((epoch, Arc::clone(&built))),
                }
                built
            }
        };
        let answer = index.provenance(&stored.view, task);
        Ok(answer
            .tasks
            .iter()
            .filter_map(|&t| spec.task(t).ok().map(|task| task.name.clone()))
            .collect())
    }

    /// Snapshot of the per-shard serving counters.
    #[must_use]
    pub fn stats(&self) -> StatsReport {
        let shards = self
            .shards
            .iter()
            .enumerate()
            .map(|(index, shard)| ShardStat {
                shard: index,
                workflows: shard.entries.read().len(),
                validate_hits: shard.metrics.validate_hits.load(Ordering::Relaxed),
                validate_misses: shard.metrics.validate_misses.load(Ordering::Relaxed),
                composite_hits: shard.metrics.composite_hits.load(Ordering::Relaxed),
                composite_misses: shard.metrics.composite_misses.load(Ordering::Relaxed),
                validate_ns: shard.metrics.validate_ns.load(Ordering::Relaxed),
                requests: shard.metrics.requests.load(Ordering::Relaxed),
            })
            .collect();
        StatsReport {
            shards,
            registry_samples: self.registry.len(),
        }
    }
}

/// Shared tail of [`WorkflowStore::mutate`]: version truncation, the
/// retag-or-drop pass over the cached verdicts, the provenance cache and the
/// epoch bump.
fn finish_mutation(
    entry: &mut Entry,
    class: &str,
    affected: &Affected,
    provenance_survives: bool,
    truncate: bool,
    new_epoch: u64,
) -> Mutated {
    let old_epoch = new_epoch - 1;
    if truncate && entry.views.len() > 1 {
        let kept = Arc::clone(&entry.views[entry.current]);
        entry.views = vec![kept];
        entry.current = 0;
    }
    let stored = &entry.views[entry.current];
    let live: BTreeSet<CompositeTaskId> = stored.view.composite_ids().collect();
    let mut invalidated = 0usize;
    let mut retained = 0usize;
    {
        let mut map = stored.verdicts.write();
        map.retain(|&composite, cached| {
            let survives = cached.epoch == old_epoch
                && !affected.contains(composite)
                && live.contains(&composite);
            if survives {
                cached.epoch = new_epoch;
                retained += 1;
            } else {
                invalidated += 1;
            }
            survives
        });
    }
    {
        let mut slot = stored.provenance.write();
        match slot.as_mut() {
            Some((epoch, _)) if provenance_survives && *epoch == old_epoch => {
                *epoch = new_epoch;
            }
            _ => *slot = None,
        }
    }
    entry.epoch = new_epoch;
    Mutated {
        epoch: new_epoch,
        class: class.to_owned(),
        invalidated,
        retained,
        version: entry.current,
    }
}

/// Refuses mutation ops whose names cannot survive the single-line,
/// TAB-separated wire/WAL grammar: a TAB or line break would corrupt the
/// frame — or worse, silently truncate the name on replay, recovering a
/// store that diverges from the one that crashed. Only durable backends
/// enforce this (the wire protocol cannot produce such names; this guards
/// in-process callers of [`WorkflowStore::mutate`]).
fn check_op_serialisable(op: &MutateOp) -> Result<(), ServiceError> {
    let check = |what: &str, text: &str, reserved: &[char]| -> Result<(), ServiceError> {
        if text.contains(['\t', '\n', '\r']) || text.contains(reserved) {
            return Err(ServiceError::Persistence(format!(
                "{what} {text:?} contains a TAB, line break or reserved separator; the \
                 write-ahead log's line grammar cannot carry it"
            )));
        }
        Ok(())
    };
    match op {
        MutateOp::AddTask { name } | MutateOp::RemoveTask { name } => check("task name", name, &[]),
        MutateOp::AddEdge { from, to } | MutateOp::RemoveEdge { from, to } => {
            check("task name", from, &[])?;
            check("task name", to, &[])
        }
        MutateOp::Split { composite, parts } => {
            check("composite name", composite, &[])?;
            for part in parts {
                for member in part {
                    // ';' and ',' are the wire grammar's list separators
                    check("task name", member, &[';', ','])?;
                }
            }
            Ok(())
        }
        MutateOp::Merge { name, composites } => {
            check("composite name", name, &[])?;
            for composite in composites {
                check("composite name", composite, &[';'])?;
            }
            Ok(())
        }
    }
}

/// Collects the spec deltas produced since the write-ahead log last
/// consumed the entry's delta log ([`Entry::logged_epoch`]). The delta log
/// is bounded ([`WorkflowSpec::set_delta_log_cap`]); because every mutation
/// consumes its deltas synchronously under the shard write lock the bound
/// can never evict an unconsumed delta — but if it ever did (a bug, or a
/// cap set to less than one mutation's worth of deltas), this errors loudly
/// instead of silently persisting a log with holes.
fn consume_deltas(entry: &Entry) -> Result<Vec<SpecDelta>, ServiceError> {
    let logged = entry.logged_epoch;
    let spec_epoch = entry.spec.epoch();
    if spec_epoch == logged {
        return Ok(Vec::new());
    }
    let fresh: Vec<SpecDelta> = entry
        .spec
        .delta_log()
        .iter()
        .filter(|delta| delta.epoch > logged)
        .cloned()
        .collect();
    let contiguous = fresh.first().map(|delta| delta.epoch) == Some(logged + 1)
        && fresh.len() as u64 == spec_epoch - logged;
    if !contiguous {
        return Err(ServiceError::Persistence(format!(
            "the spec delta log evicted epochs {}..={} before the write-ahead log consumed \
             them; raise the bound with WorkflowSpec::set_delta_log_cap",
            logged + 1,
            spec_epoch
        )));
    }
    Ok(fresh)
}

/// Computes which composites of the current view an edge mutation affects:
/// the composites holding the endpoints (their boundary sets can move even
/// when the reachability closure is unchanged) plus every composite with a
/// member in a dirty reachability row. The boolean reports whether the edge
/// is internal to one composite — the induced view graph is then unchanged
/// and the provenance index survives the edit.
fn edge_affected_composites(
    entry: &Entry,
    from: TaskId,
    to: TaskId,
    dirty: &DirtyRows,
) -> (Affected, bool) {
    let view = &entry.views[entry.current].view;
    let from_composite = view.composite_of(from);
    let to_composite = view.composite_of(to);
    let internal = from_composite.is_some() && from_composite == to_composite;
    if dirty.is_all() {
        return (Affected::All, internal);
    }
    let mut affected: BTreeSet<CompositeTaskId> =
        from_composite.into_iter().chain(to_composite).collect();
    if !dirty.is_clean() {
        let reach = entry.spec.reachability();
        for (id, composite) in view.composites() {
            if affected.contains(&id) {
                continue;
            }
            let touched = composite.members().iter().any(|&task| {
                reach
                    .component_of(task)
                    .map_or(true, |comp| dirty.contains(comp))
            });
            if touched {
                affected.insert(id);
            }
        }
    }
    (Affected::Composites(affected), internal)
}

/// Resolves a composite task of `view` by display name.
fn composite_by_name(view: &WorkflowView, name: &str) -> Result<CompositeTaskId, ServiceError> {
    view.composites()
        .find(|(_, composite)| composite.name == name)
        .map(|(id, _)| id)
        .ok_or_else(|| ServiceError::UnknownCompositeName(name.to_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::{FileBackend, PersistConfig};
    use wolves_repo::figure1;

    fn add_edge(from: &str, to: &str) -> MutateOp {
        MutateOp::AddEdge {
            from: from.to_owned(),
            to: to.to_owned(),
        }
    }

    fn temp_root(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::AtomicU64;
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "wolves-store-{tag}-{}-{unique}",
            std::process::id()
        ))
    }

    fn durable_config(root: &std::path::Path) -> PersistConfig {
        PersistConfig {
            shards: 2,
            ..PersistConfig::new(root)
        }
    }

    /// Drives a store through the full verb set and captures every served
    /// answer, so recovered state can be compared answer-for-answer.
    fn drive_and_observe(store: &WorkflowStore, id: WorkflowId) -> Vec<String> {
        let mut observed = Vec::new();
        let verdict = store.validate(id, None).unwrap();
        observed.push(format!(
            "validate v{} sound={} unsound={:?}",
            verdict.version, verdict.sound, verdict.unsound
        ));
        for subject in ["Format alignment", "Display tree"] {
            observed.push(format!(
                "provenance {subject}: {:?}",
                store.provenance(id, subject).unwrap()
            ));
        }
        observed.push(format!("export:\n{}", store.export(id).unwrap()));
        observed
    }

    #[test]
    fn durable_store_recovers_identical_answers_after_restart() {
        let root = temp_root("recover");
        let backend = Arc::new(FileBackend::open(durable_config(&root)).unwrap());
        let (store, report) = WorkflowStore::open(backend).unwrap();
        assert_eq!(report.workflows, 0);
        let fixture = figure1();
        let id = store
            .try_register(fixture.spec, Some(fixture.view))
            .unwrap();
        store.correct(id, Strategy::Strong).unwrap();
        let mutated = store
            .mutate(
                id,
                add_edge("Check additional annotations", "Build phylo tree"),
            )
            .unwrap();
        assert_eq!(mutated.epoch, 1);
        store
            .mutate(
                id,
                MutateOp::Merge {
                    name: "Front end".to_owned(),
                    composites: vec![
                        "Retrieve entries (13)".to_owned(),
                        "Annotations (14)".to_owned(),
                    ],
                },
            )
            .unwrap();
        let mutated = store
            .mutate(
                id,
                MutateOp::AddTask {
                    name: "Archive results".to_owned(),
                },
            )
            .unwrap();
        assert_eq!(mutated.epoch, 3);
        store
            .mutate(id, add_edge("Display tree", "Archive results"))
            .unwrap();
        let before = drive_and_observe(&store, id);
        drop(store);

        let backend = Arc::new(FileBackend::open(durable_config(&root)).unwrap());
        let (recovered, report) = WorkflowStore::open(backend).unwrap();
        assert_eq!(report.workflows, 1);
        assert!(report.replayed_records >= 5, "{report}");
        assert_eq!(drive_and_observe(&recovered, id), before);
        // the epoch counter resumes exactly where the crashed store stopped
        let mutated = recovered
            .mutate(id, add_edge("Curate annotations", "Archive results"))
            .unwrap();
        assert_eq!(mutated.epoch, 5);
        // recovery compacted: a third open replays the snapshot, not records
        drop(recovered);
        let backend = Arc::new(FileBackend::open(durable_config(&root)).unwrap());
        let (_again, report) = WorkflowStore::open(backend).unwrap();
        assert_eq!(report.workflows, 1);
        assert_eq!(report.snapshot_entries, 1);
        assert_eq!(report.replayed_records, 1, "only the post-compaction edit");
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn recovered_ids_and_versions_match_the_live_store() {
        let root = temp_root("ids");
        let backend = Arc::new(FileBackend::open(durable_config(&root)).unwrap());
        let (store, _) = WorkflowStore::open(backend).unwrap();
        let first = {
            let f = figure1();
            store.try_register(f.spec, Some(f.view)).unwrap()
        };
        let second = {
            let f = figure1();
            store.try_register(f.spec, Some(f.view)).unwrap()
        };
        store.correct(second, Strategy::Weak).unwrap();
        drop(store);
        let backend = Arc::new(FileBackend::open(durable_config(&root)).unwrap());
        let (recovered, _) = WorkflowStore::open(backend).unwrap();
        // old ids answer; a fresh registration continues the id sequence
        assert!(recovered.validate(first, None).is_ok());
        assert_eq!(recovered.validate(second, None).unwrap().version, 1);
        assert!(recovered.validate(second, Some(0)).is_ok());
        let f = figure1();
        let third = recovered.try_register(f.spec, Some(f.view)).unwrap();
        assert_eq!(third.0, second.0 + 1);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn consume_deltas_errors_loudly_on_eviction() {
        let mut spec = figure1().spec;
        spec.set_delta_log_cap(2);
        let epoch_before = spec.epoch();
        for i in 0..4 {
            spec.apply(SpecMutation::AddTask {
                name: format!("extra-{i}"),
            })
            .unwrap();
        }
        let entry = Entry {
            // pretend the WAL last consumed up to `epoch_before`: the four
            // deltas since were already evicted down to the cap of 2
            logged_epoch: epoch_before,
            epoch: 4,
            current: 0,
            views: Vec::new(),
            spec: Arc::new(spec),
        };
        let err = consume_deltas(&entry).unwrap_err();
        assert!(matches!(err, ServiceError::Persistence(_)));
        assert!(err.to_string().contains("set_delta_log_cap"), "{err}");
        // a caught-up entry consumes nothing
        let caught_up = Entry {
            logged_epoch: entry.spec.epoch(),
            spec: Arc::clone(&entry.spec),
            views: Vec::new(),
            current: 0,
            epoch: 4,
        };
        assert!(consume_deltas(&caught_up).unwrap().is_empty());
    }

    #[test]
    fn unserialisable_names_are_rejected_by_durable_registration() {
        let root = temp_root("names");
        let backend = Arc::new(FileBackend::open(durable_config(&root)).unwrap());
        let (store, _) = WorkflowStore::open(backend).unwrap();
        let mut spec = WorkflowSpec::new("bad");
        spec.add_task(wolves_workflow::AtomicTask::new("task\nwith newline"))
            .unwrap();
        assert!(matches!(
            store.try_register(spec, None),
            Err(ServiceError::Persistence(_))
        ));
        // the in-memory store accepts the same spec (nothing to serialise)
        let memory = WorkflowStore::new(1);
        let mut spec = WorkflowSpec::new("bad");
        spec.add_task(wolves_workflow::AtomicTask::new("task\nwith newline"))
            .unwrap();
        assert!(memory.try_register(spec, None).is_ok());
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn unserialisable_op_names_are_rejected_by_durable_mutation() {
        let root = temp_root("op-names");
        let backend = Arc::new(FileBackend::open(durable_config(&root)).unwrap());
        let (store, _) = WorkflowStore::open(backend).unwrap();
        let fixture = figure1();
        let id = store
            .try_register(fixture.spec, Some(fixture.view))
            .unwrap();
        let epoch_probe = |store: &WorkflowStore| {
            store
                .mutate(
                    id,
                    MutateOp::AddTask {
                        name: format!("probe-{}", store.stats().requests()),
                    },
                )
                .unwrap()
                .epoch
        };
        let before = epoch_probe(&store);
        for op in [
            MutateOp::AddTask {
                name: "a\nb".to_owned(),
            },
            MutateOp::AddTask {
                name: "a\tb".to_owned(),
            },
            MutateOp::Merge {
                name: "ok".to_owned(),
                composites: vec!["a;b".to_owned()],
            },
            MutateOp::Split {
                composite: "ok".to_owned(),
                parts: vec![vec!["a,b".to_owned()]],
            },
        ] {
            let err = store.mutate(id, op).unwrap_err();
            assert!(matches!(err, ServiceError::Persistence(_)), "{err}");
        }
        // the rejections applied nothing: the epoch advanced only by the
        // probes themselves
        assert_eq!(epoch_probe(&store), before + 1);
        // the in-memory store still accepts such names (nothing to log)
        let memory = WorkflowStore::new(1);
        let f = figure1();
        let mem_id = memory.try_register(f.spec, Some(f.view)).unwrap();
        assert!(memory
            .mutate(
                mem_id,
                MutateOp::AddTask {
                    name: "a\tb".to_owned(),
                },
            )
            .is_ok());
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn register_validate_and_cache() {
        let store = WorkflowStore::new(4);
        let fixture = figure1();
        let id = store.register(fixture.spec, Some(fixture.view));
        let first = store.validate(id, None).unwrap();
        assert!(!first.sound);
        assert!(!first.cached);
        assert_eq!(first.unsound, vec!["Curate & align (16)".to_owned()]);
        let second = store.validate(id, None).unwrap();
        assert!(second.cached);
        assert_eq!(second.unsound, first.unsound);
        let stats = store.stats();
        assert_eq!(stats.validate_hits(), 1);
        assert_eq!(stats.validate_misses(), 1);
        // composite granularity: 7 computed on the first request, 7 served
        // from cache on the second
        assert_eq!(stats.composite_misses(), 7);
        assert_eq!(stats.composite_hits(), 7);
        assert_eq!(stats.workflows(), 1);
    }

    #[test]
    fn correction_appends_a_sound_version() {
        let store = WorkflowStore::new(2);
        let fixture = figure1();
        let id = store.register(fixture.spec, Some(fixture.view));
        let corrected = store.correct(id, Strategy::Strong).unwrap();
        assert_eq!(corrected.version, 1);
        assert_eq!(corrected.composites_before, 7);
        assert_eq!(corrected.composites_after, 8);
        // the current view is now the corrected one and validates sound...
        let verdict = store.validate(id, None).unwrap();
        assert!(verdict.sound);
        assert_eq!(verdict.version, 1);
        // ...while the original version is still queryable and unsound
        let original = store.validate(id, Some(0)).unwrap();
        assert!(!original.sound);
        // the correction fed the estimation registry
        assert_eq!(store.registry().len(), 1);
        // correcting a sound view is a no-op that keeps the version
        let again = store.correct(id, Strategy::Strong).unwrap();
        assert_eq!(again.version, 1);
        assert_eq!(again.composites_before, again.composites_after);
    }

    #[test]
    fn provenance_is_exact_through_the_corrected_view() {
        let store = WorkflowStore::new(2);
        let fixture = figure1();
        let id = store.register(fixture.spec.clone(), Some(fixture.view));
        store.correct(id, Strategy::Strong).unwrap();
        let names = store.provenance(id, "Format alignment").unwrap();
        assert!(names.contains(&"Create alignment".to_owned()));
        assert!(names.contains(&"Extract sequences".to_owned()));
        assert!(!names.contains(&"Curate annotations".to_owned()));
        assert!(matches!(
            store.provenance(id, "No such task"),
            Err(ServiceError::UnknownTask(_))
        ));
    }

    #[test]
    fn repeated_provenance_queries_reuse_the_cached_index() {
        let store = WorkflowStore::new(2);
        let fixture = figure1();
        let id = store.register(fixture.spec.clone(), Some(fixture.view.clone()));
        let first = store.provenance(id, "Format alignment").unwrap();
        // second query (different subject) rides the already-built index
        let other = store.provenance(id, "Display tree").unwrap();
        assert!(other.len() > first.len());
        // answers are stable across repeated queries
        assert_eq!(store.provenance(id, "Format alignment").unwrap(), first);
        // the cached answers agree with a fresh traversal
        let task = fixture.spec.task_by_name("Format alignment").unwrap();
        let walked = wolves_provenance::view_level_provenance(&fixture.spec, &fixture.view, task);
        let walked_names: Vec<String> = walked
            .tasks
            .iter()
            .filter_map(|&t| fixture.spec.task(t).ok().map(|task| task.name.clone()))
            .collect();
        assert_eq!(first, walked_names);
    }

    #[test]
    fn text_registration_and_errors() {
        let store = WorkflowStore::new(3);
        let fixture = figure1();
        let payload = write_text_format(&fixture.spec, Some(&fixture.view));
        let id = store.register_text(&payload).unwrap();
        assert!(!store.validate(id, None).unwrap().sound);
        assert!(matches!(
            store.register_text("garbage\tline"),
            Err(ServiceError::Parse(_))
        ));
        assert!(matches!(
            store.validate(WorkflowId(999), None),
            Err(ServiceError::UnknownWorkflow(_))
        ));
        assert!(matches!(
            store.validate(id, Some(5)),
            Err(ServiceError::UnknownView(_, 5))
        ));
        let bare = store.register(figure1().spec, None);
        assert!(matches!(
            store.validate(bare, None),
            Err(ServiceError::NoView(_))
        ));
    }

    #[test]
    fn ids_spread_over_shards() {
        let store = WorkflowStore::new(4);
        for _ in 0..32 {
            let fixture = figure1();
            store.register(fixture.spec, Some(fixture.view));
        }
        let stats = store.stats();
        assert_eq!(stats.workflows(), 32);
        let populated = stats.shards.iter().filter(|s| s.workflows > 0).count();
        assert!(populated >= 2, "expected ≥2 shards in use, got {populated}");
    }

    #[test]
    fn mutate_preserves_unaffected_cached_verdicts() {
        let store = WorkflowStore::new(1);
        let fixture = figure1();
        let id = store.register(fixture.spec, Some(fixture.view));
        let first = store.validate(id, None).unwrap();
        assert!(!first.sound);
        let stats = store.stats();
        assert_eq!(stats.composite_misses(), 7);
        assert_eq!(stats.composite_hits(), 0);

        // an intra-composite edge whose endpoints were already connected:
        // the reachability closure is untouched (monotone-safe, empty dirty
        // set), so only the endpoint composite is invalidated — its boundary
        // could have moved
        let outcome = store
            .mutate(
                id,
                add_edge("Check additional annotations", "Build phylo tree"),
            )
            .unwrap();
        assert_eq!(outcome.epoch, 1);
        assert_eq!(outcome.class, "monotone-safe");
        assert_eq!(outcome.invalidated, 1);
        assert_eq!(outcome.retained, 6);

        let second = store.validate(id, None).unwrap();
        assert!(!second.sound);
        assert!(!second.cached);
        let stats = store.stats();
        assert_eq!(
            stats.composite_misses(),
            8,
            "only 'Build Phylo Tree (19)' recomputed"
        );
        assert_eq!(
            stats.composite_hits(),
            6,
            "six cached verdicts survived the edit"
        );
    }

    #[test]
    fn mutate_add_edge_dirties_ancestor_composites_only() {
        let store = WorkflowStore::new(1);
        let fixture = figure1();
        let id = store.register(fixture.spec, Some(fixture.view));
        store.validate(id, None).unwrap();
        // Curate annotations -> Create alignment extends the closure of the
        // ancestors whose rows actually change: 'Annotations (14)' (task 3)
        // and the endpoint composite 16. Tasks 1 and 2 already reached
        // Create alignment through the sequences branch, so 13 — and 15,
        // 17, 18, 19 — survive untouched.
        let outcome = store
            .mutate(id, add_edge("Curate annotations", "Create alignment"))
            .unwrap();
        assert_eq!(outcome.class, "monotone-safe");
        assert_eq!(outcome.invalidated, 2);
        assert_eq!(outcome.retained, 5);
        let verdict = store.validate(id, None).unwrap();
        // 16 is still unsound: Create alignment (also an input) cannot reach
        // Curate annotations (also an output)
        assert_eq!(verdict.unsound, vec!["Curate & align (16)".to_owned()]);
        let stats = store.stats();
        assert_eq!(stats.composite_misses(), 7 + 2);
        assert_eq!(stats.composite_hits(), 5);
    }

    #[test]
    fn mutate_split_repairs_and_merge_edits_in_place() {
        let store = WorkflowStore::new(1);
        let fixture = figure1();
        let id = store.register(fixture.spec, Some(fixture.view));
        assert!(!store.validate(id, None).unwrap().sound);
        // the user's own correction loop: split the unsound composite
        let outcome = store
            .mutate(
                id,
                MutateOp::Split {
                    composite: "Curate & align (16)".to_owned(),
                    parts: vec![
                        vec!["Curate annotations".to_owned()],
                        vec!["Create alignment".to_owned()],
                    ],
                },
            )
            .unwrap();
        assert_eq!(outcome.class, "view-edit");
        assert_eq!(outcome.invalidated, 1, "only the split composite dropped");
        assert_eq!(outcome.retained, 6);
        let verdict = store.validate(id, None).unwrap();
        assert!(verdict.sound);
        let stats = store.stats();
        // the two split parts computed fresh; the other six served cached
        assert_eq!(stats.composite_misses(), 7 + 2);
        assert_eq!(stats.composite_hits(), 6);

        // merge two sound composites back together
        let outcome = store
            .mutate(
                id,
                MutateOp::Merge {
                    name: "Front end".to_owned(),
                    composites: vec![
                        "Retrieve entries (13)".to_owned(),
                        "Annotations (14)".to_owned(),
                    ],
                },
            )
            .unwrap();
        assert_eq!(outcome.class, "view-edit");
        assert_eq!(outcome.invalidated, 2);
        assert!(store.validate(id, None).unwrap().sound);

        // error paths
        assert!(matches!(
            store.mutate(
                id,
                MutateOp::Merge {
                    name: "x".to_owned(),
                    composites: vec!["No such composite".to_owned()],
                }
            ),
            Err(ServiceError::UnknownCompositeName(_))
        ));
        assert!(matches!(
            store.mutate(id, add_edge("nope", "Display tree")),
            Err(ServiceError::UnknownTask(_))
        ));
        assert!(matches!(
            store.mutate(WorkflowId(999), add_edge("a", "b")),
            Err(ServiceError::UnknownWorkflow(_))
        ));
    }

    #[test]
    fn mutate_task_ops_rebase_the_version_history() {
        let store = WorkflowStore::new(2);
        let fixture = figure1();
        let id = store.register(fixture.spec, Some(fixture.view));
        store.correct(id, Strategy::Strong).unwrap();
        let outcome = store
            .mutate(
                id,
                MutateOp::AddTask {
                    name: "Archive results".to_owned(),
                },
            )
            .unwrap();
        assert_eq!(outcome.class, "monotone-safe");
        assert_eq!(outcome.version, 0, "history rebased to the mutated view");
        assert!(matches!(
            store.validate(id, Some(1)),
            Err(ServiceError::UnknownView(_, 1))
        ));
        // the new task joins the view as a singleton and is fully served
        store
            .mutate(id, add_edge("Display tree", "Archive results"))
            .unwrap();
        assert!(store.validate(id, None).unwrap().sound);
        let names = store.provenance(id, "Archive results").unwrap();
        assert!(names.contains(&"Display tree".to_owned()));
        // duplicate task names are rejected by the model layer
        assert!(matches!(
            store.mutate(
                id,
                MutateOp::AddTask {
                    name: "Archive results".to_owned(),
                }
            ),
            Err(ServiceError::Mutation(_))
        ));
        // removing the task again is structural and drops it from the view
        let outcome = store
            .mutate(
                id,
                MutateOp::RemoveTask {
                    name: "Archive results".to_owned(),
                },
            )
            .unwrap();
        assert_eq!(outcome.class, "structural");
        assert!(store.validate(id, None).unwrap().sound);
        assert!(matches!(
            store.provenance(id, "Archive results"),
            Err(ServiceError::UnknownTask(_))
        ));
    }

    #[test]
    fn mutate_remove_edge_is_structural_and_observed_by_validation() {
        let store = WorkflowStore::new(1);
        let fixture = figure1();
        let id = store.register(fixture.spec, Some(fixture.view));
        store.correct(id, Strategy::Strong).unwrap();
        assert!(store.validate(id, None).unwrap().sound);
        // removing Split entries -> Extract sequences severs the path that
        // kept 'Retrieve entries (13)' sound towards the sequences branch
        let outcome = store
            .mutate(
                id,
                MutateOp::RemoveEdge {
                    from: "Split entries".to_owned(),
                    to: "Extract sequences".to_owned(),
                },
            )
            .unwrap();
        assert_eq!(outcome.class, "structural");
        assert_eq!(
            outcome.retained, 0,
            "structural deltas invalidate everything"
        );
        // removing a dependency that does not exist is a model-layer error
        assert!(matches!(
            store.mutate(
                id,
                MutateOp::RemoveEdge {
                    from: "Split entries".to_owned(),
                    to: "Extract sequences".to_owned(),
                }
            ),
            Err(ServiceError::Mutation(_))
        ));
    }

    #[test]
    fn provenance_cache_survives_internal_edges_and_tracks_cross_edges() {
        let store = WorkflowStore::new(1);
        let fixture = figure1();
        let id = store.register(fixture.spec, Some(fixture.view));
        let before = store.provenance(id, "Create alignment").unwrap();
        assert!(!before.contains(&"Check additional annotations".to_owned()));

        // internal edge (both endpoints in 'Build Phylo Tree (19)', already
        // connected): the induced view graph is unchanged, the cached index
        // survives and the answers stay put
        store
            .mutate(id, add_edge("Check additional annotations", "Display tree"))
            .unwrap();
        assert_eq!(store.provenance(id, "Create alignment").unwrap(), before);

        // a cross-composite edge 19 -> 15 rewires the induced graph: the
        // index is rebuilt and the provenance answer gains 19's tasks
        store
            .mutate(
                id,
                add_edge("Process additional annotations", "Extract sequences"),
            )
            .unwrap();
        let after = store.provenance(id, "Create alignment").unwrap();
        assert!(after.contains(&"Check additional annotations".to_owned()));
    }
}
